//! # SIMBA — dependable user alert delivery
//!
//! Facade crate for the reproduction of *The SIMBA User Alert Service
//! Architecture for Dependable Alert Delivery* (Wang, Bahl, Russell —
//! MSR-TR-2000-117, DSN 2001).
//!
//! Re-exports every workspace crate under a stable namespace so examples
//! and downstream users need a single dependency:
//!
//! * [`xml`] — minimal XML subset used by SIMBA documents.
//! * [`sim`] — deterministic discrete-event simulation engine.
//! * [`net`] — simulated IM / email / SMS substrates with fault models.
//! * [`client`] — simulated client software + exception-handling automation.
//! * [`core`] — the SIMBA library and MyAlertBuddy.
//! * [`gateway`] — framed TCP alert-ingestion front door with admission
//!   control and load shedding.
//! * [`sources`] — the five alert services from the paper.
//! * [`baselines`] — comparison delivery strategies.
//! * [`runtime`] — tokio-based live runtime.
//! * [`ledger`] — durable delivery ledger: leased work queue with retry,
//!   backoff, and idempotency keys.
//! * [`rules`] — user-owned alert rules: predicate matching, streaming
//!   evaluation, and storm correlation into digest alerts.
//! * [`telemetry`] — structured events + metrics spine (see
//!   `README.md` § Observability).
//!
//! See the repository `README.md` for a quickstart and `DESIGN.md` for the
//! full system inventory.

#![forbid(unsafe_code)]

pub use simba_baselines as baselines;
pub use simba_client as client;
pub use simba_core as core;
pub use simba_gateway as gateway;
pub use simba_ledger as ledger;
pub use simba_net as net;
pub use simba_rules as rules;
pub use simba_runtime as runtime;
pub use simba_sim as sim;
pub use simba_sources as sources;
pub use simba_telemetry as telemetry;
pub use simba_xml as xml;
