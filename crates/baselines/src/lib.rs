//! `simba-baselines` — the delivery strategies SIMBA is compared against.
//!
//! The paper motivates delivery modes by contrast (§2.3, §3.1):
//!
//! * **email-only** — how most 2001 alert services delivered: cheap, one
//!   message, but unbounded latency and silent loss;
//! * **blind redundancy** — old Aladdin "by default sends all alerts as
//!   two emails and two cell phone SMS messages. However, such heavy use
//!   of redundancy has not worked well": still no guarantee, and four
//!   messages per alert are "irritating and cumbersome";
//! * **SIMBA** — IM-with-ack first, fall back only on failure: one message
//!   in the common case, bounded time to escalation.
//!
//! [`trial`] provides the single-alert evaluator used by the A1 ablation:
//! it plays one alert against a user-presence timeline and the channel
//! latency models and reports when a *human* first saw the alert and how
//! many messages it cost ("the irritability factor").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod trial;

pub use strategy::Strategy;
pub use trial::{TrialOutcome, TrialSetup};
