//! The delivery strategies under comparison.

use simba_sim::SimDuration;

/// A way of delivering one alert to one user.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// One email to the user's registered address. The 2001 default.
    EmailOnly,
    /// Blind redundancy: `emails` duplicate emails plus `sms` duplicate
    /// SMS messages, all fired at once (old Aladdin used 2 + 2).
    Blind {
        /// Number of duplicate emails.
        emails: u32,
        /// Number of duplicate SMS messages.
        sms: u32,
    },
    /// Direct single-channel delivery to the user's SMS address with no
    /// MyAlertBuddy in between — what a user gets when they hand their
    /// phone number straight to a service.
    DirectSms,
    /// SIMBA: IM with acknowledgement, falling back to SMS and then email
    /// when no ack arrives within the timeout.
    SimbaImFallback {
        /// Ack window per block.
        ack_timeout: SimDuration,
    },
}

impl Strategy {
    /// The old-Aladdin configuration from §2.3.
    pub fn aladdin_blind() -> Self {
        Strategy::Blind { emails: 2, sms: 2 }
    }

    /// The SIMBA flagship with the default 60 s ack window.
    pub fn simba_default() -> Self {
        Strategy::SimbaImFallback {
            ack_timeout: SimDuration::from_secs(60),
        }
    }

    /// Short display label for experiment tables.
    pub fn label(&self) -> String {
        match self {
            Strategy::EmailOnly => "email-only".to_string(),
            Strategy::Blind { emails, sms } => format!("blind-{emails}EM+{sms}SMS"),
            Strategy::DirectSms => "direct-sms".to_string(),
            Strategy::SimbaImFallback { ack_timeout } => {
                format!("simba-im-fallback({}s)", ack_timeout.as_secs())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_and_stable() {
        assert_eq!(Strategy::EmailOnly.label(), "email-only");
        assert_eq!(Strategy::aladdin_blind().label(), "blind-2EM+2SMS");
        assert_eq!(Strategy::DirectSms.label(), "direct-sms");
        assert_eq!(Strategy::simba_default().label(), "simba-im-fallback(60s)");
    }
}
