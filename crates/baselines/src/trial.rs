//! The single-alert delivery trial: plays one alert through a strategy
//! against a user-presence timeline and reports when a human first *saw*
//! it and how many messages were sent.
//!
//! This is the measurement core of ablation A1. End-to-end "seen by the
//! user" — not "accepted by a queue" — is the paper's definition of
//! dependable delivery (§1: "delivering alerts in a timely and reliable
//! fashion without being unduly intrusive or cumbersome").

use crate::strategy::Strategy;
use simba_net::latency::LatencyModel;
use simba_net::presence::{HumanModel, PresenceTimeline, UserContext};
use simba_sim::{SimDuration, SimRng, SimTime};

/// The channels and user model one trial runs against.
#[derive(Debug)]
pub struct TrialSetup {
    /// Where the user is over time.
    pub presence: PresenceTimeline,
    /// Human reaction model.
    pub human: HumanModel,
    /// IM transit latency.
    pub im_latency: LatencyModel,
    /// SMS transit latency.
    pub sms_latency: LatencyModel,
    /// Email transit latency.
    pub email_latency: LatencyModel,
    /// Probability an IM is silently lost.
    pub im_loss: f64,
    /// Probability an SMS is silently lost.
    pub sms_loss: f64,
    /// Probability an email is silently lost.
    pub email_loss: f64,
}

impl TrialSetup {
    /// Paper-calibrated channels over the given presence timeline.
    pub fn with_defaults(presence: PresenceTimeline) -> Self {
        TrialSetup {
            presence,
            human: HumanModel::default(),
            im_latency: LatencyModel::consumer_im(),
            sms_latency: LatencyModel::carrier_sms(),
            email_latency: LatencyModel::store_and_forward_email(),
            im_loss: 0.001,
            sms_loss: 0.01,
            email_loss: 0.005,
        }
    }
}

/// The outcome of one trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialOutcome {
    /// When a human first saw the alert (absolute), if ever within the
    /// timeline horizon.
    pub first_seen: Option<SimTime>,
    /// Messages sent (the irritability cost).
    pub messages_sent: u32,
    /// Whether an end-to-end acknowledgement confirmed delivery (IM only).
    pub acked: bool,
}

impl TrialOutcome {
    /// Time from alert to first sighting, if seen.
    pub fn latency_from(&self, alert_at: SimTime) -> Option<SimDuration> {
        self.first_seen.map(|s| s - alert_at)
    }
}

/// Runs one alert (fired at `at`) through `strategy`.
pub fn run_trial(
    setup: &TrialSetup,
    strategy: Strategy,
    at: SimTime,
    rng: &mut SimRng,
) -> TrialOutcome {
    match strategy {
        Strategy::EmailOnly => {
            let seen = email_path(setup, at, rng);
            TrialOutcome {
                first_seen: seen,
                messages_sent: 1,
                acked: false,
            }
        }
        Strategy::DirectSms => {
            let seen = sms_path(setup, at, rng);
            TrialOutcome {
                first_seen: seen,
                messages_sent: 1,
                acked: false,
            }
        }
        Strategy::Blind { emails, sms } => {
            let mut best: Option<SimTime> = None;
            for _ in 0..emails {
                best = min_opt(best, email_path(setup, at, rng));
            }
            for _ in 0..sms {
                best = min_opt(best, sms_path(setup, at, rng));
            }
            TrialOutcome {
                first_seen: best,
                messages_sent: emails + sms,
                acked: false,
            }
        }
        Strategy::SimbaImFallback { ack_timeout } => {
            let mut messages = 1u32;
            // Block 1: IM with ack window.
            let im_seen = im_path(setup, at, rng);
            if let Some(seen) = im_seen {
                if seen <= at + ack_timeout {
                    return TrialOutcome {
                        first_seen: Some(seen),
                        messages_sent: messages,
                        acked: true,
                    };
                }
            }
            // Block 2: SMS after the first window.
            let t1 = at + ack_timeout;
            messages += 1;
            let sms_seen = sms_path(setup, t1, rng);
            if let Some(seen) = sms_seen {
                if seen <= t1 + ack_timeout {
                    // SMS has no ack channel; escalation still proceeds,
                    // but the user has already seen the alert.
                    let t2 = t1 + ack_timeout;
                    messages += 1;
                    let email_seen = email_path(setup, t2, rng);
                    return TrialOutcome {
                        first_seen: min_opt(min_opt(Some(seen), im_seen), email_seen),
                        messages_sent: messages,
                        acked: false,
                    };
                }
            }
            // Block 3: email, the terminal fallback.
            let t2 = t1 + ack_timeout;
            messages += 1;
            let email_seen = email_path(setup, t2, rng);
            TrialOutcome {
                first_seen: min_opt(min_opt(im_seen, sms_seen), email_seen),
                messages_sent: messages,
                acked: false,
            }
        }
    }
}

fn min_opt(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// First instant at or after `from` when `pred` holds on the user context,
/// within the timeline horizon.
fn next_time_matching(
    tl: &PresenceTimeline,
    from: SimTime,
    pred: impl Fn(UserContext) -> bool,
) -> Option<SimTime> {
    if from >= tl.horizon() {
        return None;
    }
    if pred(tl.context_at(from)) {
        return Some(from);
    }
    let mut t = from;
    while let Some(change) = tl.next_change(t) {
        if change >= tl.horizon() {
            return None;
        }
        if pred(tl.context_at(change)) {
            return Some(change);
        }
        t = change;
    }
    None
}

/// One email: transit, then seen at the next desk session + poll delay.
fn email_path(setup: &TrialSetup, at: SimTime, rng: &mut SimRng) -> Option<SimTime> {
    if rng.chance(setup.email_loss) {
        return None;
    }
    let arrival = at + setup.email_latency.sample(rng);
    let at_desk = next_time_matching(&setup.presence, arrival, UserContext::sees_email)?;
    Some(at_desk + setup.human.email_poll(rng))
}

/// One SMS: transit, carrier holds it until the phone is reachable, then
/// the user reads after the reaction delay.
fn sms_path(setup: &TrialSetup, at: SimTime, rng: &mut SimRng) -> Option<SimTime> {
    if rng.chance(setup.sms_loss) {
        return None;
    }
    let arrival = at + setup.sms_latency.sample(rng);
    let reachable = next_time_matching(&setup.presence, arrival, UserContext::sees_sms)?;
    Some(reachable + setup.human.sms_reaction(rng))
}

/// One IM to the desktop: only seen if the user is at the desk when it
/// lands (2001 IM has no offline queue — the message toast expires).
fn im_path(setup: &TrialSetup, at: SimTime, rng: &mut SimRng) -> Option<SimTime> {
    if rng.chance(setup.im_loss) {
        return None;
    }
    let arrival = at + setup.im_latency.sample(rng);
    if setup.presence.context_at(arrival).sees_im() {
        Some(arrival + setup.human.im_reaction(rng))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> SimTime {
        SimTime::from_days(2)
    }

    fn at_desk() -> TrialSetup {
        TrialSetup::with_defaults(PresenceTimeline::constant(UserContext::AtDesk, horizon()))
    }

    fn away_then_desk(away_secs: u64) -> TrialSetup {
        TrialSetup::with_defaults(PresenceTimeline::from_segments(
            vec![
                (SimTime::ZERO, UserContext::Away),
                (SimTime::from_secs(away_secs), UserContext::AtDesk),
            ],
            horizon(),
        ))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn simba_at_desk_acks_with_one_message() {
        let setup = at_desk();
        let mut rng = SimRng::new(1);
        let mut acked = 0;
        for i in 0..100 {
            let out = run_trial(&setup, Strategy::simba_default(), t(i * 100), &mut rng);
            if out.acked {
                acked += 1;
                assert_eq!(out.messages_sent, 1);
            }
            assert!(out.first_seen.is_some());
        }
        assert!(acked >= 95, "acked {acked}/100");
    }

    #[test]
    fn simba_away_user_falls_back_and_costs_more_messages() {
        // Away for 2 hours: the IM toast is missed; SMS is unseeable too
        // (Away context); email waits for the desk return.
        let setup = away_then_desk(2 * 3600);
        let mut rng = SimRng::new(2);
        let out = run_trial(&setup, Strategy::simba_default(), t(0), &mut rng);
        assert!(!out.acked);
        assert_eq!(out.messages_sent, 3);
        // Seen only after returning to the desk.
        if let Some(seen) = out.first_seen {
            assert!(seen >= t(2 * 3600));
        }
    }

    #[test]
    fn email_only_is_cheap_but_slow_for_absent_user() {
        let setup = away_then_desk(4 * 3600);
        let mut rng = SimRng::new(3);
        let out = run_trial(&setup, Strategy::EmailOnly, t(0), &mut rng);
        assert_eq!(out.messages_sent, 1);
        if let Some(seen) = out.first_seen {
            assert!(seen >= t(4 * 3600), "email seen before desk return");
        }
    }

    #[test]
    fn blind_redundancy_always_costs_four_messages() {
        let setup = at_desk();
        let mut rng = SimRng::new(4);
        let out = run_trial(&setup, Strategy::aladdin_blind(), t(0), &mut rng);
        assert_eq!(out.messages_sent, 4);
        assert!(!out.acked);
        assert!(out.first_seen.is_some());
    }

    #[test]
    fn simba_beats_email_only_latency_at_desk() {
        let setup = at_desk();
        let mut rng = SimRng::new(5);
        let n = 200;
        let mut simba_sum = 0.0;
        let mut email_sum = 0.0;
        for i in 0..n {
            let at = t(i * 500);
            if let Some(d) = run_trial(&setup, Strategy::simba_default(), at, &mut rng).latency_from(at) {
                simba_sum += d.as_secs_f64();
            }
            if let Some(d) = run_trial(&setup, Strategy::EmailOnly, at, &mut rng).latency_from(at) {
                email_sum += d.as_secs_f64();
            }
        }
        // IM+ack lands in seconds; email-only waits for transit + poll.
        assert!(
            simba_sum * 5.0 < email_sum,
            "simba {simba_sum} vs email {email_sum}"
        );
    }

    #[test]
    fn mobile_user_sees_sms_not_im() {
        let setup = TrialSetup::with_defaults(PresenceTimeline::constant(
            UserContext::MobileCovered,
            horizon(),
        ));
        let mut rng = SimRng::new(6);
        let out = run_trial(&setup, Strategy::simba_default(), t(0), &mut rng);
        assert!(!out.acked); // IM toast missed
        let seen = out.first_seen.expect("SMS reaches mobile user");
        // Seen via the SMS block, which fires after the first ack window.
        assert!(seen >= t(60));
    }

    #[test]
    fn unreachable_user_never_sees_anything() {
        let setup = TrialSetup::with_defaults(PresenceTimeline::constant(
            UserContext::Away,
            SimTime::from_hours(1),
        ));
        let mut rng = SimRng::new(7);
        for strategy in [
            Strategy::EmailOnly,
            Strategy::DirectSms,
            Strategy::aladdin_blind(),
            Strategy::simba_default(),
        ] {
            let out = run_trial(&setup, strategy, t(0), &mut rng);
            assert_eq!(out.first_seen, None, "{}", strategy.label());
        }
    }

    #[test]
    fn trial_outcome_latency_helper() {
        let out = TrialOutcome {
            first_seen: Some(t(90)),
            messages_sent: 1,
            acked: true,
        };
        assert_eq!(out.latency_from(t(30)), Some(SimDuration::from_secs(60)));
        let never = TrialOutcome {
            first_seen: None,
            messages_sent: 2,
            acked: false,
        };
        assert_eq!(never.latency_from(t(0)), None);
    }
}
