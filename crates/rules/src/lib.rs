//! `simba-rules` — user-owned alert rules, streaming evaluation, and
//! storm correlation into digest alerts.
//!
//! The paper's MAB classifies, aggregates, and filters before delivery
//! (§4.2); this crate is that stage for the live stack, a three-part
//! pipeline sitting between gateway ingestion and routing:
//!
//! 1. **Definition** ([`rule`], [`log`]): per-user [`AlertRule`]s — a
//!    small predicate language over source/kind/body ([`predicate`]), a
//!    Deliver/Suppress/Digest action, optional severity override and
//!    dedupe-key template — bounded per user and persisted in a
//!    CRC-guarded versioned rules log (the `core::shardlog` idiom), so
//!    rules survive restart.
//! 2. **Evaluation** ([`engine`]): rules compile once into a per-user
//!    matcher index keyed by the exact source/kind values predicates
//!    pin; [`RuleEngine::evaluate`] is the allocation-light hot path
//!    emitting `rules.*` telemetry.
//! 3. **Correlation & digests** ([`engine`]): a windowed correlator
//!    collapses bursts sharing a correlation key into one
//!    [`simba_core::DigestAlert`] (count, first/last timestamps,
//!    exemplar payloads) with bounded per-user pending state,
//!    deterministic flush on deadline / count cap / severity
//!    escalation, and an unconditional critical-severity cut-through —
//!    a flapping source costs one delivery, not thousands.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod log;
pub mod predicate;
pub mod rule;

pub use engine::{view_of, Decision, RuleEngine, RulesConfig, SharedRuleEngine, SuppressReason};
pub use log::{RulesError, RulesLog, RulesLogConfig, DEFAULT_MAX_RULES_PER_USER, RULES_LOG_VERSION};
pub use predicate::{AlertView, ParseError, Predicate};
pub use rule::{
    default_correlation_key, expand_template, severity_from_name, severity_name, AlertRule,
    DigestConfig, RuleAction, RuleSpec,
};
