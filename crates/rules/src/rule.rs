//! Rule definitions: what a user-owned [`AlertRule`] is made of, and the
//! templates it may carry.
//!
//! A rule is a predicate (see [`crate::predicate`]) plus an action —
//! deliver, suppress, or digest — with optional severity override and a
//! dedupe-key template. Rules are owned by one user, bounded per user
//! (see `RulesConfig::max_rules_per_user`), and survive restart through
//! the CRC-guarded rules log (`crate::log`).

use std::fmt;

use simba_core::Urgency;

use crate::predicate::{AlertView, ParseError, Predicate};

/// What a matching rule does with the alert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleAction {
    /// Route the alert onward (optionally with the rule's severity).
    Deliver,
    /// Drop the alert before routing.
    Suppress,
    /// Absorb the alert into a windowed digest (storm correlation).
    Digest(DigestConfig),
}

impl RuleAction {
    /// Stable single-letter tag used on the wire and in the rules log.
    pub fn tag(&self) -> char {
        match self {
            RuleAction::Deliver => 'd',
            RuleAction::Suppress => 's',
            RuleAction::Digest(_) => 'g',
        }
    }

    /// Human label for CLI listings.
    pub fn label(&self) -> &'static str {
        match self {
            RuleAction::Deliver => "deliver",
            RuleAction::Suppress => "suppress",
            RuleAction::Digest(_) => "digest",
        }
    }
}

/// Storm-correlation knobs for a digest rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestConfig {
    /// Flush deadline, milliseconds after the first absorbed alert.
    pub window_ms: u64,
    /// Flush early once this many alerts are absorbed (0 = no count cap).
    pub max_count: u32,
    /// How many exemplar payloads the digest carries.
    pub max_exemplars: u8,
    /// Correlation-key template; `None` means the default
    /// `{user}/{source}/{kind}`.
    pub key: Option<String>,
}

impl Default for DigestConfig {
    fn default() -> Self {
        DigestConfig { window_ms: 60_000, max_count: 0, max_exemplars: 3, key: None }
    }
}

/// Everything a caller specifies when creating or updating a rule; the
/// engine adds the owner and id to make an [`AlertRule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSpec {
    /// Short human name, unique only in the owner's head.
    pub name: String,
    /// Disabled rules stay in the log but never match.
    pub enabled: bool,
    /// Optional severity override applied to matching alerts.
    pub severity: Option<Urgency>,
    /// Optional dedupe-key template: alerts expanding to a key seen
    /// recently (within the engine's dedupe window) are suppressed.
    pub dedupe: Option<String>,
    /// Predicate source text (the grammar in `predicate.rs`).
    pub predicate_src: String,
    /// What to do on match.
    pub action: RuleAction,
}

impl RuleSpec {
    /// A minimal enabled deliver-rule over `predicate_src`.
    pub fn deliver(name: &str, predicate_src: &str) -> Self {
        RuleSpec {
            name: name.into(),
            enabled: true,
            severity: None,
            dedupe: None,
            predicate_src: predicate_src.into(),
            action: RuleAction::Deliver,
        }
    }

    /// A minimal enabled suppress-rule over `predicate_src`.
    pub fn suppress(name: &str, predicate_src: &str) -> Self {
        RuleSpec { action: RuleAction::Suppress, ..RuleSpec::deliver(name, predicate_src) }
    }

    /// A minimal enabled digest-rule over `predicate_src`.
    pub fn digest(name: &str, predicate_src: &str, config: DigestConfig) -> Self {
        RuleSpec { action: RuleAction::Digest(config), ..RuleSpec::deliver(name, predicate_src) }
    }
}

/// One compiled, owned rule as the engine holds it.
#[derive(Debug, Clone)]
pub struct AlertRule {
    /// Engine-assigned id, unique per user, stable across restarts.
    pub id: u64,
    /// Owning user.
    pub user: String,
    /// The spec as last upserted (predicate text canonicalized).
    pub spec: RuleSpec,
    /// Compiled predicate.
    pub predicate: Predicate,
}

impl AlertRule {
    /// Compiles `spec` into a rule for `user` with the given id. The
    /// predicate text is canonicalized so log round-trips are stable.
    pub fn compile(id: u64, user: &str, mut spec: RuleSpec) -> Result<AlertRule, ParseError> {
        let predicate = Predicate::parse(&spec.predicate_src)?;
        spec.predicate_src = predicate.to_text();
        Ok(AlertRule { id, user: user.into(), spec, predicate })
    }

    /// True when the rule is enabled and its predicate matches.
    pub fn matches(&self, view: AlertView<'_>) -> bool {
        self.spec.enabled && self.predicate.eval(view)
    }
}

/// Expands a key template: `{user}`, `{source}`, `{kind}`, and `{body}`
/// placeholders are substituted; everything else is literal. Unknown
/// placeholders expand to themselves so typos stay visible in keys.
pub fn expand_template(template: &str, user: &str, view: AlertView<'_>) -> String {
    let mut out = String::with_capacity(template.len() + 16);
    let mut rest = template;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        let after = &rest[open + 1..];
        match after.find('}') {
            Some(close) => {
                let name = &after[..close];
                match name {
                    "user" => out.push_str(user),
                    "source" => out.push_str(view.source),
                    "kind" => out.push_str(view.kind),
                    "body" => out.push_str(view.body),
                    other => {
                        out.push('{');
                        out.push_str(other);
                        out.push('}');
                    }
                }
                rest = &after[close + 1..];
            }
            None => {
                out.push_str(&rest[open..]);
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out
}

/// The default correlation key: `user/source/kind`.
pub fn default_correlation_key(user: &str, view: AlertView<'_>) -> String {
    format!("{user}/{}/{}", view.source, view.kind)
}

/// Parses a severity name as used on the wire, in the log, and by the CLI.
pub fn severity_from_name(name: &str) -> Option<Urgency> {
    match name {
        "low" => Some(Urgency::Low),
        "normal" => Some(Urgency::Normal),
        "critical" => Some(Urgency::Critical),
        _ => None,
    }
}

/// Inverse of [`severity_from_name`].
pub fn severity_name(urgency: Urgency) -> &'static str {
    match urgency {
        Urgency::Low => "low",
        Urgency::Normal => "normal",
        Urgency::Critical => "critical",
    }
}

impl fmt::Display for AlertRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {} [{}] when {} then {}",
            self.id,
            self.spec.name,
            if self.spec.enabled { "on" } else { "off" },
            self.spec.predicate_src,
            self.spec.action.label(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(source: &'a str, kind: &'a str, body: &'a str) -> AlertView<'a> {
        AlertView { source, kind, body }
    }

    #[test]
    fn compile_canonicalizes_predicate_text() {
        let rule =
            AlertRule::compile(1, "ada", RuleSpec::deliver("n", "source==aladdin")).expect("compile");
        assert_eq!(rule.spec.predicate_src, "source == \"aladdin\"");
        assert!(rule.matches(view("aladdin", "k", "b")));
        assert!(!rule.matches(view("proxy", "k", "b")));
    }

    #[test]
    fn disabled_rules_never_match() {
        let mut spec = RuleSpec::deliver("n", "any");
        spec.enabled = false;
        let rule = AlertRule::compile(1, "ada", spec).expect("compile");
        assert!(!rule.matches(view("a", "b", "c")));
    }

    #[test]
    fn template_expansion() {
        let v = view("aladdin", "water", "leak in basement");
        assert_eq!(expand_template("{user}/{source}/{kind}", "ada", v), "ada/aladdin/water");
        assert_eq!(expand_template("fixed", "ada", v), "fixed");
        assert_eq!(expand_template("{typo} x {user}", "ada", v), "{typo} x ada");
        assert_eq!(expand_template("tail{", "ada", v), "tail{");
        assert_eq!(default_correlation_key("ada", v), "ada/aladdin/water");
    }

    #[test]
    fn severity_names_round_trip() {
        for u in [Urgency::Low, Urgency::Normal, Urgency::Critical] {
            assert_eq!(severity_from_name(severity_name(u)), Some(u));
        }
        assert_eq!(severity_from_name("urgent"), None);
    }
}
