//! The streaming rule engine: compiled per-user matching, Deliver /
//! Suppress / Digest decisions, and the windowed storm correlator.
//!
//! Rules compile once (at open and on every mutation) into a per-user
//! index keyed by the exact `source`/`kind` equality constraints their
//! predicates pin, so the hot path evaluates O(candidate rules), not
//! O(all rules). When several rules match, the lowest id wins — rule
//! order is creation order, which users can reason about.
//!
//! The correlator absorbs alerts matched by digest rules into
//! [`PendingDigest`] windows keyed per user and correlation key — the
//! owning user always scopes the window, so a custom key template
//! without `{user}` cannot collide two users' bursts. A window flushes
//! deterministically when
//! its deadline passes ([`RuleEngine::flush_due`], driven by the pump
//! tick or the shard timer wheel), when its count cap is reached, or
//! when a later alert escalates the window's severity. Critical alerts
//! never wait: they bypass digesting entirely and deliver immediately.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Mutex;

use simba_core::{DigestAlert, IncomingAlert, Urgency};
use simba_sim::SimTime;
use simba_telemetry::Telemetry;

use crate::log::{RulesError, RulesLog, RulesLogConfig};
use crate::predicate::AlertView;
use crate::rule::{default_correlation_key, expand_template, AlertRule, RuleAction, RuleSpec};

/// Engine construction knobs.
#[derive(Debug, Clone)]
pub struct RulesConfig {
    /// Where the rules live (see [`RulesLogConfig`]).
    pub log: RulesLogConfig,
    /// How long a dedupe-template key suppresses repeats, in ms.
    pub dedupe_window_ms: u64,
    /// Per-user bound on open digest windows; alerts that would open one
    /// beyond the bound deliver directly instead (never silently drop).
    pub max_pending_digests_per_user: usize,
    /// Per-user bound on remembered dedupe keys (oldest evicted first).
    pub max_dedupe_keys_per_user: usize,
}

impl Default for RulesConfig {
    fn default() -> Self {
        RulesConfig {
            log: RulesLogConfig::default(),
            dedupe_window_ms: 60_000,
            max_pending_digests_per_user: 32,
            max_dedupe_keys_per_user: 128,
        }
    }
}

impl RulesConfig {
    /// An in-memory engine (tests, benches, simulation).
    pub fn in_memory() -> Self {
        RulesConfig::default()
    }

    /// A file-backed engine persisting rules under `dir`.
    pub fn on_disk(dir: impl Into<std::path::PathBuf>) -> Self {
        RulesConfig { log: RulesLogConfig::on_disk(dir), ..RulesConfig::default() }
    }
}

/// Why an alert was suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuppressReason {
    /// A suppress-rule matched.
    Rule,
    /// The matching rule's dedupe-key template expanded to a recently
    /// seen key.
    Dedupe,
}

/// What the engine decided for one alert.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Route the alert onward. `rule` is `None` when no rule matched
    /// (the default path); `severity` is the rule's override, if any.
    Deliver {
        /// The deciding rule's id, if one matched.
        rule: Option<u64>,
        /// Severity override to apply before routing.
        severity: Option<Urgency>,
    },
    /// Drop the alert before routing.
    Suppress {
        /// The deciding rule.
        rule: u64,
        /// Rule action or dedupe-template repeat.
        reason: SuppressReason,
    },
    /// The alert was absorbed into a pending digest window.
    Digest {
        /// The deciding rule.
        rule: u64,
        /// The window's correlation key.
        key: String,
        /// When the window flushes (ms), absent an earlier escalation.
        deadline_ms: u64,
        /// A digest the absorption forced out early (count cap reached
        /// or severity escalated) — deliver it now.
        flushed: Option<Box<DigestAlert>>,
    },
}

impl Decision {
    /// True for the Deliver variant.
    pub fn is_deliver(&self) -> bool {
        matches!(self, Decision::Deliver { .. })
    }
}

/// A shareable engine handle: the engine is internally synchronized, so
/// gateway pumps, shard workers, and the CLI share one `Arc`.
pub type SharedRuleEngine = std::sync::Arc<RuleEngine>;

/// Builds the [`AlertView`] the predicate language evaluates: `kind` is
/// the subject line (email) or empty (IM).
pub fn view_of(alert: &IncomingAlert) -> AlertView<'_> {
    AlertView { source: &alert.source, kind: &alert.subject, body: &alert.body }
}

#[derive(Debug)]
struct PendingDigest {
    user: String,
    key: String,
    source: String,
    kind: String,
    count: u64,
    first: SimTime,
    last: SimTime,
    exemplars: Vec<String>,
    max_exemplars: usize,
    max_count: u32,
    urgency: Urgency,
    deadline_ms: u64,
    seq: u64,
}

impl PendingDigest {
    fn into_digest(self) -> DigestAlert {
        DigestAlert {
            user: self.user,
            key: self.key,
            source: self.source,
            kind: self.kind,
            count: self.count,
            first: self.first,
            last: self.last,
            exemplars: self.exemplars,
            urgency: self.urgency,
        }
    }
}

/// One user's compiled matcher program: candidate buckets keyed by the
/// exact source/kind values the predicates pin. Each bucket is sorted by
/// rule id; evaluation merges the four candidate buckets and picks the
/// lowest-id match.
#[derive(Debug, Default)]
struct UserIndex {
    /// Rules pinning both source and kind, nested so hot-path lookups
    /// need no allocation.
    exact: HashMap<String, HashMap<String, Vec<AlertRule>>>,
    by_source: HashMap<String, Vec<AlertRule>>,
    by_kind: HashMap<String, Vec<AlertRule>>,
    wildcard: Vec<AlertRule>,
}

impl UserIndex {
    fn insert(&mut self, rule: AlertRule) {
        let (source, kind) = rule.predicate.index_keys();
        let bucket = match (source, kind) {
            (Some(s), Some(k)) => {
                self.exact.entry(s.into()).or_default().entry(k.into()).or_default()
            }
            (Some(s), None) => self.by_source.entry(s.into()).or_default(),
            (None, Some(k)) => self.by_kind.entry(k.into()).or_default(),
            (None, None) => &mut self.wildcard,
        };
        bucket.push(rule);
    }

    fn buckets_mut(&mut self) -> impl Iterator<Item = &mut Vec<AlertRule>> {
        self.exact
            .values_mut()
            .flat_map(HashMap::values_mut)
            .chain(self.by_source.values_mut())
            .chain(self.by_kind.values_mut())
            .chain(std::iter::once(&mut self.wildcard))
    }

    /// The lowest-id enabled rule whose predicate matches `view`.
    fn best_match(&self, view: AlertView<'_>) -> Option<&AlertRule> {
        let mut best: Option<&AlertRule> = None;
        if let Some(bucket) = self.exact.get(view.source).and_then(|by_kind| by_kind.get(view.kind))
        {
            consider(&mut best, bucket, view);
        }
        if let Some(bucket) = self.by_source.get(view.source) {
            consider(&mut best, bucket, view);
        }
        if let Some(bucket) = self.by_kind.get(view.kind) {
            consider(&mut best, bucket, view);
        }
        consider(&mut best, &self.wildcard, view);
        best
    }
}

fn consider<'a>(best: &mut Option<&'a AlertRule>, bucket: &'a [AlertRule], view: AlertView<'_>) {
    for rule in bucket {
        if best.is_some_and(|b| b.id <= rule.id) {
            // Buckets are id-sorted: nothing later in this one can win.
            break;
        }
        if rule.matches(view) {
            *best = Some(rule);
            break;
        }
    }
}

#[derive(Debug)]
struct Inner {
    log: RulesLog,
    index: HashMap<String, UserIndex>,
    /// Open digest windows, user → correlation key → window. Nesting by
    /// user means a custom key template without `{user}` can never
    /// collide two users into one window (which would leak one user's
    /// exemplars into the other's digest and lose their alerts).
    pending: HashMap<String, HashMap<String, PendingDigest>>,
    /// Total open windows across users (the `pending` leaf count).
    pending_total: usize,
    /// Flush order: (deadline_ms, seq) → (user, correlation key). Stale
    /// entries (escalated windows) are dropped when popped.
    deadlines: BTreeMap<(u64, u64), (String, String)>,
    /// Per-user recently seen dedupe keys, oldest first.
    recent: HashMap<String, VecDeque<(u64, String)>>,
    seq: u64,
    dedupe_window_ms: u64,
    max_pending_per_user: usize,
    max_dedupe_keys_per_user: usize,
}

/// The rule engine. Internally synchronized; share via
/// [`SharedRuleEngine`].
#[derive(Debug)]
pub struct RuleEngine {
    telemetry: Telemetry,
    inner: Mutex<Inner>,
}

impl RuleEngine {
    /// Opens the engine, replaying persisted rules and compiling the
    /// matcher index.
    ///
    /// # Errors
    ///
    /// Fails when the rules log cannot be opened or is corrupt.
    pub fn open(config: RulesConfig) -> Result<RuleEngine, RulesError> {
        Self::open_with_telemetry(config, Telemetry::disabled())
    }

    /// [`RuleEngine::open`] with `rules.*` telemetry routed to `telemetry`.
    ///
    /// # Errors
    ///
    /// Fails when the rules log cannot be opened or is corrupt.
    pub fn open_with_telemetry(
        config: RulesConfig,
        telemetry: Telemetry,
    ) -> Result<RuleEngine, RulesError> {
        let log = RulesLog::open(config.log)?;
        let mut inner = Inner {
            log,
            index: HashMap::new(),
            pending: HashMap::new(),
            pending_total: 0,
            deadlines: BTreeMap::new(),
            recent: HashMap::new(),
            seq: 0,
            dedupe_window_ms: config.dedupe_window_ms.max(1),
            max_pending_per_user: config.max_pending_digests_per_user.max(1),
            max_dedupe_keys_per_user: config.max_dedupe_keys_per_user.max(1),
        };
        rebuild_index(&mut inner);
        let engine = RuleEngine { telemetry, inner: Mutex::new(inner) };
        let loaded = engine.with_inner(|i| i.log.len());
        if loaded > 0 {
            engine.add("rules.loaded", loaded as u64);
        }
        Ok(engine)
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> R {
        f(&mut self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    fn counter(&self, name: &str) {
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter(name).incr();
        }
    }

    fn add(&self, name: &str, n: u64) {
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter(name).add(n);
        }
    }

    fn gauge(&self, name: &str, value: u64) {
        if self.telemetry.enabled() {
            self.telemetry.metrics().gauge(name).set(value);
        }
    }

    /// Creates (`id: None`) or replaces (`id: Some`) a rule and commits
    /// it to the rules log before returning — a rule acknowledged is a
    /// rule that survives restart.
    ///
    /// # Errors
    ///
    /// See [`RulesLog::upsert`]; rejected mutations count `rules.rejected`.
    pub fn upsert(&self, user: &str, id: Option<u64>, spec: RuleSpec) -> Result<AlertRule, RulesError> {
        let result = self.with_inner(|inner| {
            let rule = inner.log.upsert(user, id, spec)?;
            // simba-analyze: allow(concurrency.blocking-under-guard): rule mutations are rare control-plane writes; the engine lock is the single-writer discipline and the commit must cover the index rebuild
            inner.log.commit()?;
            rebuild_index(inner);
            Ok(rule)
        });
        match &result {
            Ok(_) => self.counter("rules.upserts"),
            Err(_) => self.counter("rules.rejected"),
        }
        result
    }

    /// Deletes a rule (committed before returning). Returns whether it
    /// existed.
    ///
    /// # Errors
    ///
    /// Fails only on rules-log I/O errors.
    pub fn delete(&self, user: &str, id: u64) -> Result<bool, RulesError> {
        let existed = self.with_inner(|inner| {
            let existed = inner.log.delete(user, id);
            if existed {
                // simba-analyze: allow(concurrency.blocking-under-guard): rule mutations are rare control-plane writes; the engine lock is the single-writer discipline
                inner.log.commit()?;
                rebuild_index(inner);
            }
            Ok::<bool, RulesError>(existed)
        })?;
        if existed {
            self.counter("rules.deletes");
        }
        Ok(existed)
    }

    /// One user's rules, ordered by id.
    pub fn list(&self, user: &str) -> Vec<AlertRule> {
        self.with_inner(|inner| inner.log.list(user))
    }

    /// Total rules across all users.
    pub fn rule_count(&self) -> usize {
        self.with_inner(|inner| inner.log.len())
    }

    /// Open digest windows across all users.
    pub fn pending_digests(&self) -> usize {
        self.with_inner(|inner| inner.pending_total)
    }

    /// The hot path: decides what happens to one alert for `user` at
    /// `now_ms`. Digest absorption happens inside this call; a returned
    /// [`Decision::Digest`] means the alert must *not* be routed (its
    /// content lives in the pending window), except that any
    /// `flushed` digest it carries must be delivered now.
    pub fn evaluate(&self, user: &str, alert: &IncomingAlert, now_ms: u64) -> Decision {
        self.counter("rules.evaluated");
        let (decision, critical_bypass) = self.with_inner(|inner| {
            let view = view_of(alert);
            // Copy the deciding rule's fields out so the index borrow ends
            // before the correlator mutates `inner`.
            let Some((rule_id, severity, dedupe, action)) =
                inner.index.get(user).and_then(|idx| idx.best_match(view)).map(|rule| {
                    (rule.id, rule.spec.severity, rule.spec.dedupe.clone(), rule.spec.action.clone())
                })
            else {
                return (Decision::Deliver { rule: None, severity: None }, false);
            };
            let effective = severity.unwrap_or(alert.urgency);
            let critical = effective >= Urgency::Critical;

            // Dedupe-key template: a repeat within the window is noise —
            // but critical alerts always cut through, so they are never
            // suppressed as repeats (and do not charge the window).
            if let Some(template) = dedupe {
                if !critical {
                    let key = expand_template(&template, user, view);
                    if note_recent(inner, user, key, now_ms) {
                        return (
                            Decision::Suppress { rule: rule_id, reason: SuppressReason::Dedupe },
                            false,
                        );
                    }
                }
            }

            match action {
                RuleAction::Deliver => (Decision::Deliver { rule: Some(rule_id), severity }, false),
                RuleAction::Suppress => {
                    (Decision::Suppress { rule: rule_id, reason: SuppressReason::Rule }, false)
                }
                RuleAction::Digest(config) => {
                    if critical {
                        // Critical cuts through: never parked in a window.
                        return (Decision::Deliver { rule: Some(rule_id), severity }, true);
                    }
                    let key = match &config.key {
                        Some(template) => expand_template(template, user, view),
                        None => default_correlation_key(user, view),
                    };
                    (
                        absorb(inner, user, rule_id, &key, &config, view, severity, effective, now_ms),
                        false,
                    )
                }
            }
        });
        match &decision {
            Decision::Deliver { rule: Some(_), .. } => {
                self.counter("rules.matched");
                if critical_bypass {
                    self.counter("rules.critical_bypass");
                }
            }
            Decision::Deliver { rule: None, .. } => {}
            Decision::Suppress { reason, .. } => {
                self.counter("rules.matched");
                self.counter("rules.suppressed");
                if *reason == SuppressReason::Dedupe {
                    self.counter("rules.deduped");
                }
            }
            Decision::Digest { flushed, .. } => {
                self.counter("rules.matched");
                self.counter("rules.digest_absorbed");
                if flushed.is_some() {
                    self.counter("rules.digest_flushed");
                    self.counter("rules.digest_escalated");
                }
            }
        }
        self.gauge("rules.pending_digests", self.pending_digests() as u64);
        decision
    }

    /// Flushes every digest window whose deadline has passed. Callers
    /// (the gateway pump tick, the shard timer wheel) route the returned
    /// digests as deliveries.
    pub fn flush_due(&self, now_ms: u64) -> Vec<DigestAlert> {
        let flushed = self.with_inner(|inner| {
            let mut out = Vec::new();
            while let Some((&(deadline, seq), _)) = inner.deadlines.first_key_value() {
                if deadline > now_ms {
                    break;
                }
                let (user, key) = inner.deadlines.remove(&(deadline, seq)).expect("just observed");
                // Stale entries (escalated windows already flushed, or a
                // window re-opened under a later seq) are dropped.
                let Some(pending) = inner.pending.get(&user).and_then(|open| open.get(&key))
                else {
                    continue;
                };
                if pending.seq != seq {
                    continue;
                }
                out.push(remove_pending(inner, &user, &key).expect("pending just observed"));
            }
            out
        });
        if !flushed.is_empty() {
            self.add("rules.digest_flushed", flushed.len() as u64);
            self.gauge("rules.pending_digests", self.pending_digests() as u64);
        }
        flushed
    }

    /// Flushes one of `user`'s windows by key if its deadline has passed
    /// — the shard timer-wheel entry point, where each worker flushes
    /// only the keys it scheduled. Returns `None` for unknown keys
    /// (already escalated) or windows whose deadline moved later.
    pub fn flush_key(&self, user: &str, key: &str, now_ms: u64) -> Option<DigestAlert> {
        let flushed = self.with_inner(|inner| {
            let pending = inner.pending.get(user)?.get(key)?;
            if pending.deadline_ms > now_ms {
                return None;
            }
            remove_pending(inner, user, key)
        });
        if flushed.is_some() {
            self.counter("rules.digest_flushed");
            self.gauge("rules.pending_digests", self.pending_digests() as u64);
        }
        flushed
    }

    /// The earliest pending flush deadline, if any window is open.
    pub fn next_deadline(&self) -> Option<u64> {
        self.with_inner(|inner| inner.deadlines.first_key_value().map(|((d, _), _)| *d))
    }
}

fn rebuild_index(inner: &mut Inner) {
    let mut index: HashMap<String, UserIndex> = HashMap::new();
    for rule in inner.log.iter() {
        index.entry(rule.user.clone()).or_default().insert(rule.clone());
    }
    // Buckets id-sorted so best_match can stop at the first hit.
    for user_index in index.values_mut() {
        for bucket in user_index.buckets_mut() {
            bucket.sort_by_key(|r| r.id);
        }
    }
    inner.index = index;
}

/// Records `key` as recently seen; true when it was already live inside
/// the dedupe window.
fn note_recent(inner: &mut Inner, user: &str, key: String, now_ms: u64) -> bool {
    let window = inner.dedupe_window_ms;
    let max_keys = inner.max_dedupe_keys_per_user;
    let recent = inner.recent.entry(user.to_string()).or_default();
    while let Some((seen, _)) = recent.front() {
        if now_ms.saturating_sub(*seen) >= window {
            recent.pop_front();
        } else {
            break;
        }
    }
    if recent.iter().any(|(_, k)| *k == key) {
        return true;
    }
    recent.push_back((now_ms, key));
    while recent.len() > max_keys {
        recent.pop_front();
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn absorb(
    inner: &mut Inner,
    user: &str,
    rule_id: u64,
    key: &str,
    config: &crate::rule::DigestConfig,
    view: AlertView<'_>,
    severity: Option<Urgency>,
    urgency: Urgency,
    now_ms: u64,
) -> Decision {
    let open_for_user = inner.pending.get(user).map_or(0, HashMap::len);
    if !inner.pending.get(user).is_some_and(|open| open.contains_key(key)) {
        if open_for_user >= inner.max_pending_per_user {
            // Bounded correlator state: deliver directly (keeping the
            // rule's severity override, like the critical-bypass path)
            // rather than grow without bound or silently drop.
            return Decision::Deliver { rule: Some(rule_id), severity };
        }
        inner.seq += 1;
        let seq = inner.seq;
        let deadline_ms = now_ms + config.window_ms.max(1);
        inner.pending.entry(user.to_string()).or_default().insert(
            key.to_string(),
            PendingDigest {
                user: user.to_string(),
                key: key.to_string(),
                source: view.source.to_string(),
                kind: view.kind.to_string(),
                count: 0,
                first: SimTime::from_millis(now_ms),
                last: SimTime::from_millis(now_ms),
                exemplars: Vec::new(),
                max_exemplars: config.max_exemplars as usize,
                max_count: config.max_count,
                urgency: Urgency::Low,
                deadline_ms,
                seq,
            },
        );
        inner.pending_total += 1;
        inner.deadlines.insert((deadline_ms, seq), (user.to_string(), key.to_string()));
    }
    let pending = inner
        .pending
        .get_mut(user)
        .and_then(|open| open.get_mut(key))
        .expect("just inserted or present");
    let escalated = pending.count > 0 && urgency > pending.urgency;
    pending.count += 1;
    pending.last = SimTime::from_millis(now_ms);
    pending.urgency = pending.urgency.max(urgency);
    if pending.exemplars.len() < pending.max_exemplars {
        pending.exemplars.push(view.body.to_string());
    }
    let capped = pending.max_count > 0 && pending.count >= u64::from(pending.max_count);
    let deadline_ms = pending.deadline_ms;
    let flushed = if escalated || capped {
        remove_pending(inner, user, key).map(Box::new)
    } else {
        None
    };
    Decision::Digest { rule: rule_id, key: key.to_string(), deadline_ms, flushed }
}

fn remove_pending(inner: &mut Inner, user: &str, key: &str) -> Option<DigestAlert> {
    let open = inner.pending.get_mut(user)?;
    let pending = open.remove(key)?;
    if open.is_empty() {
        inner.pending.remove(user);
    }
    inner.pending_total -= 1;
    inner.deadlines.remove(&(pending.deadline_ms, pending.seq));
    Some(pending.into_digest())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::DigestConfig;

    fn im(source: &str, body: &str) -> IncomingAlert {
        IncomingAlert::from_im(source, body, SimTime::ZERO)
    }

    fn engine() -> RuleEngine {
        RuleEngine::open(RulesConfig::in_memory()).expect("open")
    }

    #[test]
    fn no_rules_means_default_deliver() {
        let e = engine();
        assert_eq!(
            e.evaluate("ada", &im("any", "x"), 0),
            Decision::Deliver { rule: None, severity: None }
        );
    }

    #[test]
    fn lowest_id_rule_wins_and_severity_overrides() {
        let e = engine();
        let mut first = RuleSpec::suppress("quiet", "source == noisy");
        first.severity = Some(Urgency::Low);
        let r1 = e.upsert("ada", None, first).unwrap();
        e.upsert("ada", None, RuleSpec::deliver("later", "source == noisy")).unwrap();
        assert_eq!(
            e.evaluate("ada", &im("noisy", "x"), 0),
            Decision::Suppress { rule: r1.id, reason: SuppressReason::Rule }
        );
        // Another user is untouched by ada's rules.
        assert!(e.evaluate("bob", &im("noisy", "x"), 0).is_deliver());

        let mut sev = RuleSpec::deliver("bump", "source == pager");
        sev.severity = Some(Urgency::Critical);
        let r3 = e.upsert("ada", None, sev).unwrap();
        assert_eq!(
            e.evaluate("ada", &im("pager", "x"), 0),
            Decision::Deliver { rule: Some(r3.id), severity: Some(Urgency::Critical) }
        );
    }

    #[test]
    fn dedupe_template_suppresses_repeats_within_window() {
        let e = RuleEngine::open(RulesConfig { dedupe_window_ms: 1000, ..RulesConfig::in_memory() })
            .expect("open");
        let mut spec = RuleSpec::deliver("once", "source == s");
        spec.dedupe = Some("{source}/{body}".into());
        let r = e.upsert("ada", None, spec).unwrap();
        assert!(e.evaluate("ada", &im("s", "same"), 0).is_deliver());
        assert_eq!(
            e.evaluate("ada", &im("s", "same"), 500),
            Decision::Suppress { rule: r.id, reason: SuppressReason::Dedupe }
        );
        // A different body is a different key; the old key expires.
        assert!(e.evaluate("ada", &im("s", "other"), 600).is_deliver());
        assert!(e.evaluate("ada", &im("s", "same"), 1500).is_deliver());
    }

    #[test]
    fn digest_window_collapses_a_burst_and_flushes_on_deadline() {
        let e = engine();
        let r = e
            .upsert(
                "ada",
                None,
                RuleSpec::digest(
                    "storm",
                    "source == flappy",
                    DigestConfig { window_ms: 1000, max_count: 0, max_exemplars: 2, key: None },
                ),
            )
            .unwrap();
        for i in 0..100u64 {
            let d = e.evaluate("ada", &im("flappy", &format!("alarm {i}")), i);
            match d {
                Decision::Digest { rule, flushed: None, .. } => assert_eq!(rule, r.id),
                other => panic!("expected absorption, got {other:?}"),
            }
        }
        assert_eq!(e.pending_digests(), 1);
        assert!(e.flush_due(500).is_empty(), "window not due yet");
        let flushed = e.flush_due(1000);
        assert_eq!(flushed.len(), 1);
        let digest = &flushed[0];
        assert_eq!(digest.count, 100);
        assert_eq!(digest.user, "ada");
        assert_eq!(digest.key, "ada/flappy/");
        assert_eq!(digest.exemplars, vec!["alarm 0".to_string(), "alarm 1".to_string()]);
        assert_eq!(digest.first, SimTime::from_millis(0));
        assert_eq!(digest.last, SimTime::from_millis(99));
        assert_eq!(e.pending_digests(), 0);
        assert!(e.flush_due(10_000).is_empty(), "flush is one-shot");

        // The digest renders as a deliverable alert.
        let incoming = digest.to_incoming();
        assert!(incoming.subject.contains("100x"));
        assert!(incoming.body.contains("alarm 0"));
    }

    #[test]
    fn critical_cuts_through_digesting() {
        let e = engine();
        let r = e
            .upsert(
                "ada",
                None,
                RuleSpec::digest(
                    "storm",
                    "source == flappy",
                    DigestConfig { window_ms: 1000, ..DigestConfig::default() },
                ),
            )
            .unwrap();
        e.evaluate("ada", &im("flappy", "noise"), 0);
        let critical = im("flappy", "FIRE").with_urgency(Urgency::Critical);
        assert_eq!(
            e.evaluate("ada", &critical, 10),
            Decision::Deliver { rule: Some(r.id), severity: None }
        );
        // The pending window is untouched by the cut-through.
        assert_eq!(e.pending_digests(), 1);
        assert_eq!(e.flush_due(1000)[0].count, 1);
    }

    #[test]
    fn severity_escalation_flushes_early() {
        let e = engine();
        e.upsert(
            "ada",
            None,
            RuleSpec::digest(
                "storm",
                "source == s",
                DigestConfig { window_ms: 60_000, ..DigestConfig::default() },
            ),
        )
        .unwrap();
        let low = im("s", "drip").with_urgency(Urgency::Low);
        e.evaluate("ada", &low, 0);
        e.evaluate("ada", &low, 1);
        let normal = im("s", "steady leak");
        match e.evaluate("ada", &normal, 2) {
            Decision::Digest { flushed: Some(digest), .. } => {
                assert_eq!(digest.count, 3);
                assert_eq!(digest.urgency, Urgency::Normal);
            }
            other => panic!("expected escalated flush, got {other:?}"),
        }
        assert_eq!(e.pending_digests(), 0);
        assert!(e.flush_due(100_000).is_empty(), "deadline entry went stale with the flush");
    }

    #[test]
    fn count_cap_flushes_early() {
        let e = engine();
        e.upsert(
            "ada",
            None,
            RuleSpec::digest(
                "storm",
                "source == s",
                DigestConfig { window_ms: 60_000, max_count: 3, ..DigestConfig::default() },
            ),
        )
        .unwrap();
        assert!(matches!(e.evaluate("ada", &im("s", "1"), 0), Decision::Digest { flushed: None, .. }));
        assert!(matches!(e.evaluate("ada", &im("s", "2"), 1), Decision::Digest { flushed: None, .. }));
        match e.evaluate("ada", &im("s", "3"), 2) {
            Decision::Digest { flushed: Some(digest), .. } => assert_eq!(digest.count, 3),
            other => panic!("expected capped flush, got {other:?}"),
        }
    }

    #[test]
    fn pending_windows_are_bounded_per_user() {
        let e = RuleEngine::open(RulesConfig {
            max_pending_digests_per_user: 2,
            ..RulesConfig::in_memory()
        })
        .expect("open");
        let r = e
            .upsert(
                "ada",
                None,
                RuleSpec::digest(
                    "per-body",
                    "source == s",
                    DigestConfig { window_ms: 60_000, key: Some("{user}/{body}".into()), ..DigestConfig::default() },
                ),
            )
            .unwrap();
        assert!(matches!(e.evaluate("ada", &im("s", "a"), 0), Decision::Digest { .. }));
        assert!(matches!(e.evaluate("ada", &im("s", "b"), 0), Decision::Digest { .. }));
        // A third distinct key would exceed the bound: deliver directly.
        assert_eq!(
            e.evaluate("ada", &im("s", "c"), 0),
            Decision::Deliver { rule: Some(r.id), severity: None }
        );
        assert_eq!(e.pending_digests(), 2);
    }

    #[test]
    fn flush_key_honors_deadline_and_unknown_keys() {
        let e = engine();
        e.upsert(
            "ada",
            None,
            RuleSpec::digest(
                "storm",
                "source == s",
                DigestConfig { window_ms: 1000, ..DigestConfig::default() },
            ),
        )
        .unwrap();
        let key = match e.evaluate("ada", &im("s", "x"), 0) {
            Decision::Digest { key, .. } => key,
            other => panic!("{other:?}"),
        };
        assert!(e.flush_key("ada", &key, 500).is_none(), "not due yet");
        assert_eq!(e.flush_key("ada", &key, 1000).map(|d| d.count), Some(1));
        assert!(e.flush_key("ada", &key, 2000).is_none(), "already flushed");
        assert!(e.flush_key("ada", "ada/other/", 2000).is_none());
        assert!(e.flush_key("bob", &key, 2000).is_none(), "wrong user never flushes");
    }

    #[test]
    fn custom_key_templates_never_collide_across_users() {
        // A key template without {user} must still scope windows per
        // user: bob's burst may not be absorbed into ada's window.
        let e = engine();
        for user in ["ada", "bob"] {
            e.upsert(
                user,
                None,
                RuleSpec::digest(
                    "storm",
                    "source == s",
                    DigestConfig { window_ms: 1000, key: Some("{source}".into()), ..DigestConfig::default() },
                ),
            )
            .unwrap();
        }
        assert!(matches!(e.evaluate("ada", &im("s", "from ada"), 0), Decision::Digest { .. }));
        assert!(matches!(e.evaluate("bob", &im("s", "from bob"), 1), Decision::Digest { .. }));
        assert_eq!(e.pending_digests(), 2, "one window per user despite identical keys");
        let mut flushed = e.flush_due(1000);
        flushed.sort_by(|a, b| a.user.cmp(&b.user));
        assert_eq!(flushed.len(), 2);
        assert_eq!((flushed[0].user.as_str(), flushed[0].count), ("ada", 1));
        assert_eq!(flushed[0].exemplars, vec!["from ada".to_string()]);
        assert_eq!((flushed[1].user.as_str(), flushed[1].count), ("bob", 1));
        assert_eq!(flushed[1].exemplars, vec!["from bob".to_string()]);
    }

    #[test]
    fn critical_is_never_dedupe_suppressed() {
        let e = engine();
        let mut spec = RuleSpec::deliver("once", "source == s");
        spec.dedupe = Some("{source}".into());
        let r = e.upsert("ada", None, spec).unwrap();
        assert!(e.evaluate("ada", &im("s", "first"), 0).is_deliver());
        // A normal repeat is noise, but a critical repeat cuts through.
        let critical = im("s", "FIRE").with_urgency(Urgency::Critical);
        assert_eq!(
            e.evaluate("ada", &critical, 10),
            Decision::Deliver { rule: Some(r.id), severity: None }
        );
        assert_eq!(
            e.evaluate("ada", &im("s", "repeat"), 20),
            Decision::Suppress { rule: r.id, reason: SuppressReason::Dedupe }
        );
    }

    #[test]
    fn bound_overflow_delivery_keeps_severity_override() {
        let e = RuleEngine::open(RulesConfig {
            max_pending_digests_per_user: 1,
            ..RulesConfig::in_memory()
        })
        .expect("open");
        let mut spec = RuleSpec::digest(
            "per-body",
            "source == s",
            DigestConfig { window_ms: 60_000, key: Some("{user}/{body}".into()), ..DigestConfig::default() },
        );
        spec.severity = Some(Urgency::Low);
        let r = e.upsert("ada", None, spec).unwrap();
        assert!(matches!(e.evaluate("ada", &im("s", "a"), 0), Decision::Digest { .. }));
        assert_eq!(
            e.evaluate("ada", &im("s", "b"), 0),
            Decision::Deliver { rule: Some(r.id), severity: Some(Urgency::Low) },
            "overflow delivery carries the rule's severity override"
        );
    }

    #[test]
    fn rules_and_engine_survive_reopen() {
        let dir = std::env::temp_dir()
            .join(format!("simba-rules-engine-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let e = RuleEngine::open(RulesConfig::on_disk(&dir)).expect("open");
            e.upsert("ada", None, RuleSpec::suppress("quiet", "source == noisy")).unwrap();
        }
        let e = RuleEngine::open(RulesConfig::on_disk(&dir)).expect("reopen");
        assert_eq!(e.rule_count(), 1);
        assert!(matches!(
            e.evaluate("ada", &im("noisy", "x"), 0),
            Decision::Suppress { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
