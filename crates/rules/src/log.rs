//! The CRC-guarded, versioned rules log: user-owned rules that survive
//! restart.
//!
//! Same idiom as `simba_core::shardlog` — tab-separated line records in
//! numbered segments, group commit (buffer + one write + one fsync),
//! torn-tail truncation on the last segment only, and rotation that
//! rewrites live state before deleting history — plus two hardenings the
//! shard log does not need: every line carries a CRC32 over its payload
//! (a rules log is read rarely and edited by operators, so silent
//! single-line corruption must be detected, not replayed), and every
//! line carries the record-format version so a future format can replay
//! old logs.
//!
//! Record shapes (fields escaped with `simba_core::wal::escape`):
//!
//! ```text
//! <crc32 hex> \t 1 \t U \t user \t id \t name \t enabled \t severity \t dedupe \t predicate \t action…
//! <crc32 hex> \t 1 \t D \t user \t id
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use simba_core::snapshot::crc32;
use simba_core::wal::{escape, unescape, WalError};

use crate::predicate::ParseError;
use crate::rule::{severity_from_name, severity_name, AlertRule, DigestConfig, RuleAction, RuleSpec};

/// Record-format version written on every line.
pub const RULES_LOG_VERSION: u32 = 1;

/// Default segment-rotation threshold.
pub const DEFAULT_SEGMENT_MAX_BYTES: u64 = 1024 * 1024;

/// Default per-user rule-set bound.
pub const DEFAULT_MAX_RULES_PER_USER: usize = 64;

/// How a [`RulesLog`] is stored and bounded.
#[derive(Debug, Clone)]
pub struct RulesLogConfig {
    /// Directory holding `rules-NNNNNN.log` segments; `None` keeps the
    /// log in memory (tests, benches, simulation).
    pub dir: Option<PathBuf>,
    /// Rotate once the active segment grows past this many bytes.
    pub segment_max_bytes: u64,
    /// Upserts that would grow a user past this many rules are rejected.
    pub max_rules_per_user: usize,
}

impl Default for RulesLogConfig {
    fn default() -> Self {
        RulesLogConfig {
            dir: None,
            segment_max_bytes: DEFAULT_SEGMENT_MAX_BYTES,
            max_rules_per_user: DEFAULT_MAX_RULES_PER_USER,
        }
    }
}

impl RulesLogConfig {
    /// An in-memory rules log.
    pub fn in_memory() -> Self {
        RulesLogConfig::default()
    }

    /// A file-backed rules log under `dir`.
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        RulesLogConfig { dir: Some(dir.into()), ..RulesLogConfig::default() }
    }
}

/// Why a rule mutation was rejected.
#[derive(Debug)]
pub enum RulesError {
    /// Storage failed (I/O or replay corruption).
    Wal(WalError),
    /// The rule's predicate does not parse.
    Parse(ParseError),
    /// The user is at their rule-set bound.
    Bound {
        /// The owning user.
        user: String,
        /// The configured per-user maximum.
        max: usize,
    },
    /// No such rule for that user.
    UnknownRule {
        /// The owning user.
        user: String,
        /// The missing id.
        id: u64,
    },
}

impl fmt::Display for RulesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RulesError::Wal(e) => write!(f, "rules log: {e}"),
            RulesError::Parse(e) => write!(f, "{e}"),
            RulesError::Bound { user, max } => {
                write!(f, "user {user:?} is at the {max}-rule bound")
            }
            RulesError::UnknownRule { user, id } => {
                write!(f, "user {user:?} has no rule #{id}")
            }
        }
    }
}

impl std::error::Error for RulesError {}

impl From<WalError> for RulesError {
    fn from(e: WalError) -> Self {
        RulesError::Wal(e)
    }
}

impl From<ParseError> for RulesError {
    fn from(e: ParseError) -> Self {
        RulesError::Parse(e)
    }
}

#[derive(Debug)]
struct FileBackend {
    dir: PathBuf,
    seg_index: u64,
    file: File,
    seg_bytes: u64,
    pending: String,
}

/// The persistent rule store. Not internally synchronized — the engine
/// wraps it in its own lock.
#[derive(Debug)]
pub struct RulesLog {
    backend: Option<FileBackend>,
    segment_max_bytes: u64,
    max_rules_per_user: usize,
    /// Live rules by user, each user's set ordered by id.
    rules: HashMap<String, BTreeMap<u64, AlertRule>>,
    next_id: u64,
    dirty: bool,
}

impl RulesLog {
    /// Opens (or creates) the log, replaying every segment in order. A
    /// torn tail on the last segment is truncated away; a CRC mismatch
    /// anywhere else is corruption.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or corruption before the tail.
    pub fn open(config: RulesLogConfig) -> Result<Self, WalError> {
        let mut log = RulesLog {
            backend: None,
            segment_max_bytes: config.segment_max_bytes.max(1),
            max_rules_per_user: config.max_rules_per_user.max(1),
            rules: HashMap::new(),
            next_id: 1,
            dirty: false,
        };
        let Some(dir) = config.dir else {
            return Ok(log);
        };
        std::fs::create_dir_all(&dir)?;
        let mut segments = list_segments(&dir)?;
        segments.sort_by_key(|(idx, _)| *idx);
        let last = segments.len().checked_sub(1);
        for (pos, (_, path)) in segments.iter().enumerate() {
            log.replay_segment(path, Some(pos) == last)?;
        }
        let seg_index = segments.last().map_or(0, |(idx, _)| *idx);
        let path = segment_path(&dir, seg_index);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let seg_bytes = file.metadata()?.len();
        log.backend = Some(FileBackend { dir, seg_index, file, seg_bytes, pending: String::new() });
        Ok(log)
    }

    fn replay_segment(&mut self, path: &Path, tolerate_tail: bool) -> Result<(), WalError> {
        let content = std::fs::read_to_string(path)?;
        let mut valid_len = 0usize;
        let mut lines = content.split_inclusive('\n').enumerate().peekable();
        while let Some((lineno, line)) = lines.next() {
            let is_last = lines.peek().is_none();
            let complete = line.ends_with('\n');
            let trimmed = line.trim_end_matches('\n');
            if trimmed.is_empty() {
                valid_len += line.len();
                continue;
            }
            if !complete {
                // Torn tail: even a record whose payload parses must not
                // touch in-memory state — it is about to be truncated
                // from disk, and memory must equal durable state.
                break;
            }
            match self.replay_line(trimmed, lineno + 1) {
                Ok(()) => valid_len += line.len(),
                Err(e) if is_last && tolerate_tail => {
                    let _ = e;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        if valid_len < content.len() {
            if !tolerate_tail {
                return Err(WalError::Corrupt {
                    line: content.lines().count(),
                    reason: "torn tail in non-final segment".to_string(),
                });
            }
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        Ok(())
    }

    fn replay_line(&mut self, line: &str, lineno: usize) -> Result<(), WalError> {
        let corrupt = |reason: &str| WalError::Corrupt { line: lineno, reason: reason.to_string() };
        // CRC guard: the first field covers everything after the first tab.
        let (crc_hex, payload) = line.split_once('\t').ok_or_else(|| corrupt("missing crc"))?;
        let recorded = u32::from_str_radix(crc_hex, 16).map_err(|_| corrupt("bad crc field"))?;
        if crc32(payload.as_bytes()) != recorded {
            return Err(corrupt("crc mismatch"));
        }
        let mut fields = payload.split('\t');
        let version: u32 = fields
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| corrupt("bad version"))?;
        if version != RULES_LOG_VERSION {
            return Err(corrupt("unknown record version"));
        }
        match fields.next() {
            Some("U") => {
                let mut next = || -> Result<String, WalError> {
                    fields.next().map(unescape).ok_or_else(|| corrupt("missing field"))
                };
                let user = next()?;
                let id: u64 = next()?.parse().map_err(|_| corrupt("bad id"))?;
                let name = next()?;
                let enabled = match next()?.as_str() {
                    "1" => true,
                    "0" => false,
                    _ => return Err(corrupt("bad enabled flag")),
                };
                let severity = match next()?.as_str() {
                    "-" => None,
                    s => Some(severity_from_name(s).ok_or_else(|| corrupt("bad severity"))?),
                };
                let dedupe = decode_opt(&next()?);
                let predicate_src = next()?;
                let action = match next()?.as_str() {
                    "d" => RuleAction::Deliver,
                    "s" => RuleAction::Suppress,
                    "g" => {
                        let window_ms: u64 = next()?.parse().map_err(|_| corrupt("bad window"))?;
                        let max_count: u32 = next()?.parse().map_err(|_| corrupt("bad max_count"))?;
                        let max_exemplars: u8 =
                            next()?.parse().map_err(|_| corrupt("bad max_exemplars"))?;
                        let key = decode_opt(&next()?);
                        RuleAction::Digest(DigestConfig { window_ms, max_count, max_exemplars, key })
                    }
                    _ => return Err(corrupt("bad action tag")),
                };
                let spec = RuleSpec { name, enabled, severity, dedupe, predicate_src, action };
                // The predicate was validated at upsert time; a canonical
                // text that no longer parses is corruption, not user error.
                let rule = AlertRule::compile(id, &user, spec)
                    .map_err(|e| corrupt(&format!("stored predicate: {e}")))?;
                self.next_id = self.next_id.max(id + 1);
                // Duplicate ids appear when a crash interrupted rotation
                // between writing the fresh segment and deleting the old
                // ones; the later record wins, idempotently.
                self.rules.entry(user).or_default().insert(id, rule);
                Ok(())
            }
            Some("D") => {
                let user = fields.next().map(unescape).ok_or_else(|| corrupt("missing user"))?;
                let id: u64 = fields
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt("bad id"))?;
                self.next_id = self.next_id.max(id + 1);
                // A delete for an already-compacted rule is tolerated.
                if let Some(per_user) = self.rules.get_mut(&user) {
                    per_user.remove(&id);
                    if per_user.is_empty() {
                        self.rules.remove(&user);
                    }
                }
                Ok(())
            }
            _ => Err(corrupt("unknown tag")),
        }
    }

    /// Creates (id `None`) or replaces (id `Some`) a rule for `user`,
    /// buffering the record; call [`RulesLog::commit`] to make it
    /// durable. Returns the stored rule with its assigned id.
    ///
    /// # Errors
    ///
    /// [`RulesError::Parse`] when the predicate does not compile,
    /// [`RulesError::Bound`] when a *new* rule would exceed the per-user
    /// bound, [`RulesError::UnknownRule`] when replacing an id the user
    /// does not own.
    pub fn upsert(
        &mut self,
        user: &str,
        id: Option<u64>,
        spec: RuleSpec,
    ) -> Result<AlertRule, RulesError> {
        let per_user_len = self.rules.get(user).map_or(0, BTreeMap::len);
        let id = match id {
            Some(id) => {
                if !self.rules.get(user).is_some_and(|m| m.contains_key(&id)) {
                    return Err(RulesError::UnknownRule { user: user.into(), id });
                }
                id
            }
            None => {
                if per_user_len >= self.max_rules_per_user {
                    return Err(RulesError::Bound { user: user.into(), max: self.max_rules_per_user });
                }
                let id = self.next_id;
                self.next_id += 1;
                id
            }
        };
        let rule = AlertRule::compile(id, user, spec)?;
        self.buffer_upsert(&rule);
        self.rules.entry(user.into()).or_default().insert(id, rule.clone());
        self.dirty = true;
        Ok(rule)
    }

    /// Deletes rule `id` for `user`, buffering the tombstone. Returns
    /// whether the rule existed.
    pub fn delete(&mut self, user: &str, id: u64) -> bool {
        let existed = self
            .rules
            .get_mut(user)
            .map(|per_user| per_user.remove(&id).is_some())
            .unwrap_or(false);
        if !existed {
            return false;
        }
        if self.rules.get(user).is_some_and(BTreeMap::is_empty) {
            self.rules.remove(user);
        }
        if let Some(backend) = &mut self.backend {
            let payload = format!("{RULES_LOG_VERSION}\tD\t{}\t{id}", escape(user));
            use std::fmt::Write as _;
            let _ = writeln!(backend.pending, "{:08x}\t{payload}", crc32(payload.as_bytes()));
        }
        self.dirty = true;
        true
    }

    fn buffer_upsert(&mut self, rule: &AlertRule) {
        let Some(backend) = &mut self.backend else { return };
        let payload = encode_upsert(rule);
        use std::fmt::Write as _;
        let _ = writeln!(backend.pending, "{:08x}\t{payload}", crc32(payload.as_bytes()));
    }

    /// Makes every buffered mutation durable with one write and one
    /// fsync, rotating the segment if it outgrew its cap. A no-op when
    /// nothing is buffered.
    ///
    /// # Errors
    ///
    /// I/O failure leaves the buffered tail unwritten; callers must not
    /// acknowledge the mutation.
    pub fn commit(&mut self) -> Result<(), WalError> {
        if !self.dirty {
            return Ok(());
        }
        if let Some(backend) = &mut self.backend {
            backend.file.write_all(backend.pending.as_bytes())?;
            backend.file.flush()?;
            backend.file.sync_data()?;
            backend.seg_bytes += backend.pending.len() as u64;
            backend.pending.clear();
        }
        self.dirty = false;
        if self
            .backend
            .as_ref()
            .is_some_and(|b| b.seg_bytes >= self.segment_max_bytes)
        {
            self.rotate()?;
        }
        Ok(())
    }

    /// Rewrites the live rules into a fresh segment and deletes every
    /// older one (upsert/delete churn is compacted away). The fresh
    /// segment is durable before old ones are unlinked; a crash between
    /// the steps leaves duplicate upserts, which replay idempotently.
    fn rotate(&mut self) -> Result<(), WalError> {
        let Some(backend) = &mut self.backend else { return Ok(()) };
        let old_index = backend.seg_index;
        let new_index = old_index + 1;
        let path = segment_path(&backend.dir, new_index);
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut carried = String::new();
        for per_user in self.rules.values() {
            for rule in per_user.values() {
                let payload = encode_upsert(rule);
                use std::fmt::Write as _;
                let _ = writeln!(carried, "{:08x}\t{payload}", crc32(payload.as_bytes()));
            }
        }
        file.write_all(carried.as_bytes())?;
        file.flush()?;
        file.sync_data()?;
        for (idx, old_path) in list_segments(&backend.dir)? {
            if idx < new_index {
                std::fs::remove_file(old_path)?;
            }
        }
        backend.seg_index = new_index;
        backend.seg_bytes = carried.len() as u64;
        backend.file = file;
        Ok(())
    }

    /// One user's rules, ordered by id.
    pub fn list(&self, user: &str) -> Vec<AlertRule> {
        self.rules
            .get(user)
            .map(|per_user| per_user.values().cloned().collect())
            .unwrap_or_default()
    }

    /// One rule, if the user owns it.
    pub fn get(&self, user: &str, id: u64) -> Option<&AlertRule> {
        self.rules.get(user).and_then(|per_user| per_user.get(&id))
    }

    /// Every live rule, for engine compilation.
    pub fn iter(&self) -> impl Iterator<Item = &AlertRule> {
        self.rules.values().flat_map(BTreeMap::values)
    }

    /// Total live rules.
    pub fn len(&self) -> usize {
        self.rules.values().map(BTreeMap::len).sum()
    }

    /// Whether the log holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Whether a commit is pending.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }
}

fn encode_upsert(rule: &AlertRule) -> String {
    let spec = &rule.spec;
    let mut payload = format!(
        "{RULES_LOG_VERSION}\tU\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        escape(&rule.user),
        rule.id,
        escape(&spec.name),
        if spec.enabled { "1" } else { "0" },
        spec.severity.map_or("-", severity_name),
        encode_opt(spec.dedupe.as_deref()),
        escape(&spec.predicate_src),
        spec.action.tag(),
    );
    if let RuleAction::Digest(d) = &spec.action {
        use std::fmt::Write as _;
        let _ = write!(
            payload,
            "\t{}\t{}\t{}\t{}",
            d.window_ms,
            d.max_count,
            d.max_exemplars,
            encode_opt(d.key.as_deref()),
        );
    }
    payload
}

/// `None` → `"0"`; `Some(v)` → `"1" + escape(v)` — unambiguous even for
/// values like `"0"` or the empty string.
fn encode_opt(value: Option<&str>) -> String {
    match value {
        None => "0".into(),
        Some(v) => format!("1{}", escape(v)),
    }
}

fn decode_opt(field: &str) -> Option<String> {
    field.strip_prefix('1').map(unescape).or(None)
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("rules-{index:06}.log"))
}

fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(idx) = name
            .strip_prefix("rules-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((idx, entry.path()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simba-ruleslog-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn upsert_delete_and_per_user_bounds() {
        let mut log = RulesLog::open(RulesLogConfig {
            max_rules_per_user: 2,
            ..RulesLogConfig::in_memory()
        })
        .unwrap();
        let r1 = log.upsert("ada", None, RuleSpec::deliver("a", "any")).unwrap();
        let r2 = log.upsert("ada", None, RuleSpec::suppress("b", "source == noisy")).unwrap();
        assert!(r2.id > r1.id);
        assert!(matches!(
            log.upsert("ada", None, RuleSpec::deliver("c", "any")),
            Err(RulesError::Bound { max: 2, .. })
        ));
        // Replacing an existing rule is allowed at the bound.
        let replaced = log.upsert("ada", Some(r1.id), RuleSpec::deliver("a2", "any")).unwrap();
        assert_eq!(replaced.id, r1.id);
        assert_eq!(log.list("ada").len(), 2);
        // Other users have their own budget.
        log.upsert("bob", None, RuleSpec::deliver("d", "any")).unwrap();

        assert!(log.delete("ada", r2.id));
        assert!(!log.delete("ada", r2.id), "double delete reports absent");
        assert_eq!(log.list("ada").len(), 1);
        assert!(matches!(
            log.upsert("ada", Some(999), RuleSpec::deliver("x", "any")),
            Err(RulesError::UnknownRule { id: 999, .. })
        ));
        assert!(matches!(
            log.upsert("ada", None, RuleSpec::deliver("bad", "nonsense ==")),
            Err(RulesError::Parse(_))
        ));
    }

    #[test]
    fn committed_rules_survive_reopen_uncommitted_do_not() {
        let dir = temp_dir("durability");
        let mut log = RulesLog::open(RulesLogConfig::on_disk(&dir)).unwrap();
        let mut spec = RuleSpec::digest(
            "storm",
            "source == flappy and kind prefix \"alarm\"",
            DigestConfig { window_ms: 5000, max_count: 100, max_exemplars: 2, key: Some("{user}/{source}".into()) },
        );
        spec.severity = Some(simba_core::Urgency::Low);
        spec.dedupe = Some("{source}:{kind}".into());
        let stored = log.upsert("ada", None, spec.clone()).unwrap();
        log.commit().unwrap();
        // A second rule is buffered but the process dies before commit.
        log.upsert("ada", None, RuleSpec::deliver("lost", "any")).unwrap();
        drop(log);

        let log = RulesLog::open(RulesLogConfig::on_disk(&dir)).unwrap();
        let rules = log.list("ada");
        assert_eq!(rules.len(), 1, "uncommitted rule vanished");
        let back = &rules[0];
        assert_eq!(back.id, stored.id);
        assert_eq!(back.spec, stored.spec, "full spec round-trips through the log");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_but_mid_file_corruption_fails() {
        let dir = temp_dir("crc");
        let mut log = RulesLog::open(RulesLogConfig::on_disk(&dir)).unwrap();
        log.upsert("ada", None, RuleSpec::deliver("keep", "any")).unwrap();
        log.commit().unwrap();
        drop(log);

        // Torn tail: a partial line with no newline is tolerated.
        {
            let mut f = OpenOptions::new().append(true).open(segment_path(&dir, 0)).unwrap();
            f.write_all(b"deadbeef\t1\tU\tada\t9").unwrap();
        }
        let log = RulesLog::open(RulesLogConfig::on_disk(&dir)).unwrap();
        assert_eq!(log.len(), 1);
        drop(log);

        // A bit-flip in a committed line is detected by the CRC guard.
        let path = segment_path(&dir, 0);
        let mut content = std::fs::read_to_string(&path).unwrap();
        let flip = content.find("keep").unwrap();
        content.replace_range(flip..flip + 4, "kelp");
        content.push_str("ffffffff\t1\tU\ttrailing\t1\tx\t1\t-\t0\tany\td\n");
        std::fs::write(&path, content).unwrap();
        let err = RulesLog::open(RulesLogConfig::on_disk(&dir)).unwrap_err();
        assert!(matches!(err, WalError::Corrupt { .. }), "got {err:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_but_parseable_tail_is_not_applied() {
        let dir = temp_dir("torn-parseable");
        let mut log = RulesLog::open(RulesLogConfig::on_disk(&dir)).unwrap();
        log.upsert("ada", None, RuleSpec::deliver("keep", "any")).unwrap();
        log.commit().unwrap();
        drop(log);

        // A record whose payload survived a crash intact but lost its
        // trailing newline: CRC-valid and parseable, still torn — it
        // must be truncated without ever reaching in-memory state.
        let payload = "1\tU\tada\t9\ttorn\t1\t-\t0\tany\td";
        let line = format!("{:08x}\t{payload}", crc32(payload.as_bytes()));
        let path = segment_path(&dir, 0);
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(line.as_bytes()).unwrap();
        }
        let log = RulesLog::open(RulesLogConfig::on_disk(&dir)).unwrap();
        assert_eq!(log.len(), 1, "torn record is not live in memory");
        assert!(log.get("ada", 9).is_none());
        drop(log);
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(!content.contains("torn"), "torn record truncated from disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_compacts_churn_and_state_survives() {
        let dir = temp_dir("rotate");
        let config = RulesLogConfig {
            dir: Some(dir.clone()),
            segment_max_bytes: 512,
            ..RulesLogConfig::default()
        };
        let mut log = RulesLog::open(config).unwrap();
        for i in 0..40 {
            let r = log.upsert("ada", None, RuleSpec::deliver(&format!("r{i}"), "any")).unwrap();
            log.commit().unwrap();
            if i % 2 == 0 {
                log.delete("ada", r.id);
                log.commit().unwrap();
            }
        }
        let keeper = log.upsert("bob", None, RuleSpec::suppress("quiet", "source == noisy")).unwrap();
        log.commit().unwrap();
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1, "old segments deleted: {segments:?}");
        drop(log);
        let log = RulesLog::open(RulesLogConfig::on_disk(&dir)).unwrap();
        assert_eq!(log.list("ada").len(), 20);
        assert_eq!(log.list("bob")[0].id, keeper.id);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ids_continue_after_reopen_and_deletes() {
        let dir = temp_dir("ids");
        let mut log = RulesLog::open(RulesLogConfig::on_disk(&dir)).unwrap();
        let a = log.upsert("ada", None, RuleSpec::deliver("a", "any")).unwrap();
        log.delete("ada", a.id);
        log.commit().unwrap();
        drop(log);
        let mut log = RulesLog::open(RulesLogConfig::on_disk(&dir)).unwrap();
        let b = log.upsert("ada", None, RuleSpec::deliver("b", "any")).unwrap();
        assert!(b.id > a.id, "ids never reused, even across deletes");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
