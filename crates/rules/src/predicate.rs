//! The rule predicate language: a small hand-rolled expression grammar
//! over an alert's `source`, `kind`, and `body` fields.
//!
//! ```text
//! expr    := or
//! or      := and ("or" and)*
//! and     := unary ("and" unary)*
//! unary   := "not" unary | primary
//! primary := "(" expr ")" | "any" | field op value
//! field   := "source" | "kind" | "body"
//! op      := "==" | "!=" | "contains" | "prefix"
//! value   := "\"…\"" (backslash escapes) | bareword
//! ```
//!
//! The language is deliberately tiny: three fields, four comparison
//! operators, boolean combinators, and parentheses. Parsing happens once
//! at rule-upsert time; evaluation is a straight AST walk with no
//! allocation, so the hot path stays cheap (see `engine.rs` for the
//! per-user source/kind index that keeps evaluation O(candidate rules)).

use std::fmt;

/// The alert fields a predicate may inspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// The originating alert service (`IncomingAlert::source`).
    Source,
    /// The alert kind — the subject line / category of the alert.
    Kind,
    /// The alert payload body.
    Body,
}

impl Field {
    fn name(self) -> &'static str {
        match self {
            Field::Source => "source",
            Field::Kind => "kind",
            Field::Body => "body",
        }
    }
}

/// Comparison operators over a field and a literal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Exact equality.
    Eq,
    /// Exact inequality.
    Ne,
    /// Substring containment.
    Contains,
    /// Prefix match.
    Prefix,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Eq => "==",
            Op::Ne => "!=",
            Op::Contains => "contains",
            Op::Prefix => "prefix",
        }
    }
}

/// A compiled predicate AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Matches every alert (`any`).
    Any,
    /// One field comparison.
    Cmp {
        /// Field under test.
        field: Field,
        /// Comparison operator.
        op: Op,
        /// Literal right-hand side.
        value: String,
    },
    /// All branches must match.
    And(Vec<Predicate>),
    /// At least one branch must match.
    Or(Vec<Predicate>),
    /// Inverts its operand.
    Not(Box<Predicate>),
}

/// A borrowed view of the alert fields a predicate evaluates against.
#[derive(Debug, Clone, Copy)]
pub struct AlertView<'a> {
    /// Originating service name.
    pub source: &'a str,
    /// Alert kind (subject / category).
    pub kind: &'a str,
    /// Payload body.
    pub body: &'a str,
}

/// A parse failure, with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong, with enough context to fix the rule text.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "predicate parse error: {}", self.reason)
    }
}

impl std::error::Error for ParseError {}

impl Predicate {
    /// Parses the predicate grammar above.
    pub fn parse(text: &str) -> Result<Predicate, ParseError> {
        let tokens = lex(text)?;
        let mut p = Parser { tokens, pos: 0 };
        let expr = p.expr()?;
        if p.pos != p.tokens.len() {
            return Err(ParseError {
                reason: format!("trailing input after expression: {:?}", p.tokens[p.pos]),
            });
        }
        Ok(expr)
    }

    /// Evaluates the predicate against one alert. No allocation.
    pub fn eval(&self, view: AlertView<'_>) -> bool {
        match self {
            Predicate::Any => true,
            Predicate::Cmp { field, op, value } => {
                let actual = match field {
                    Field::Source => view.source,
                    Field::Kind => view.kind,
                    Field::Body => view.body,
                };
                match op {
                    Op::Eq => actual == value,
                    Op::Ne => actual != value,
                    Op::Contains => actual.contains(value.as_str()),
                    Op::Prefix => actual.starts_with(value.as_str()),
                }
            }
            Predicate::And(parts) => parts.iter().all(|p| p.eval(view)),
            Predicate::Or(parts) => parts.iter().any(|p| p.eval(view)),
            Predicate::Not(inner) => !inner.eval(view),
        }
    }

    /// Canonical text form; `parse(to_text())` round-trips to an equal AST.
    pub fn to_text(&self) -> String {
        match self {
            Predicate::Any => "any".into(),
            Predicate::Cmp { field, op, value } => {
                format!("{} {} {}", field.name(), op.name(), quote(value))
            }
            Predicate::And(parts) => {
                let inner: Vec<String> = parts.iter().map(|p| p.to_text()).collect();
                format!("({})", inner.join(" and "))
            }
            Predicate::Or(parts) => {
                let inner: Vec<String> = parts.iter().map(|p| p.to_text()).collect();
                format!("({})", inner.join(" or "))
            }
            Predicate::Not(inner) => format!("not ({})", inner.to_text()),
        }
    }

    /// Exact-match constraints the predicate implies on `source` and
    /// `kind`: equality comparisons reachable through top-level `and`
    /// chains. The engine indexes rules by these keys so evaluation only
    /// touches candidate rules; `None` means "could match any value".
    pub fn index_keys(&self) -> (Option<&str>, Option<&str>) {
        let mut source = None;
        let mut kind = None;
        self.collect_keys(&mut source, &mut kind);
        (source, kind)
    }

    fn collect_keys<'a>(&'a self, source: &mut Option<&'a str>, kind: &mut Option<&'a str>) {
        match self {
            Predicate::Cmp { field: Field::Source, op: Op::Eq, value } => {
                source.get_or_insert(value.as_str());
            }
            Predicate::Cmp { field: Field::Kind, op: Op::Eq, value } => {
                kind.get_or_insert(value.as_str());
            }
            Predicate::And(parts) => {
                for p in parts {
                    p.collect_keys(source, kind);
                }
            }
            _ => {}
        }
    }
}

fn quote(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Word(String),
    Str(String),
    LParen,
    RParen,
    EqEq,
    NotEq,
}

fn lex(text: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '=' => {
                chars.next();
                if chars.next() != Some('=') {
                    return Err(ParseError { reason: "expected '==' (single '=' is not an operator)".into() });
                }
                tokens.push(Token::EqEq);
            }
            '!' => {
                chars.next();
                if chars.next() != Some('=') {
                    return Err(ParseError { reason: "expected '!=' after '!'".into() });
                }
                tokens.push(Token::NotEq);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('"') => s.push('"'),
                            Some('\\') => s.push('\\'),
                            Some(other) => {
                                s.push('\\');
                                s.push(other);
                            }
                            None => {
                                return Err(ParseError { reason: "unterminated string literal".into() })
                            }
                        },
                        Some(other) => s.push(other),
                        None => return Err(ParseError { reason: "unterminated string literal".into() }),
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '/' => {
                let mut w = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '/' {
                        w.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Word(w));
            }
            other => {
                return Err(ParseError { reason: format!("unexpected character {other:?}") });
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_word(&self) -> Option<&str> {
        match self.peek() {
            Some(Token::Word(w)) => Some(w.as_str()),
            _ => None,
        }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expr(&mut self) -> Result<Predicate, ParseError> {
        let first = self.and_chain()?;
        let mut parts = vec![first];
        while self.peek_word() == Some("or") {
            self.bump();
            parts.push(self.and_chain()?);
        }
        Ok(if parts.len() == 1 { parts.pop().expect("non-empty") } else { Predicate::Or(parts) })
    }

    fn and_chain(&mut self) -> Result<Predicate, ParseError> {
        let first = self.unary()?;
        let mut parts = vec![first];
        while self.peek_word() == Some("and") {
            self.bump();
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 { parts.pop().expect("non-empty") } else { Predicate::And(parts) })
    }

    fn unary(&mut self) -> Result<Predicate, ParseError> {
        if self.peek_word() == Some("not") {
            self.bump();
            return Ok(Predicate::Not(Box::new(self.unary()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Predicate, ParseError> {
        match self.bump() {
            Some(Token::LParen) => {
                let inner = self.expr()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    other => Err(ParseError { reason: format!("expected ')', got {other:?}") }),
                }
            }
            Some(Token::Word(w)) if w == "any" => Ok(Predicate::Any),
            Some(Token::Word(w)) => {
                let field = match w.as_str() {
                    "source" => Field::Source,
                    "kind" => Field::Kind,
                    "body" => Field::Body,
                    other => {
                        return Err(ParseError {
                            reason: format!("unknown field {other:?} (expected source, kind, or body)"),
                        })
                    }
                };
                let op = match self.bump() {
                    Some(Token::EqEq) => Op::Eq,
                    Some(Token::NotEq) => Op::Ne,
                    Some(Token::Word(w)) if w == "contains" => Op::Contains,
                    Some(Token::Word(w)) if w == "prefix" => Op::Prefix,
                    other => {
                        return Err(ParseError {
                            reason: format!("expected an operator (==, !=, contains, prefix), got {other:?}"),
                        })
                    }
                };
                let value = match self.bump() {
                    Some(Token::Str(s)) => s,
                    Some(Token::Word(w)) => w,
                    other => {
                        return Err(ParseError { reason: format!("expected a value, got {other:?}") })
                    }
                };
                Ok(Predicate::Cmp { field, op, value })
            }
            other => Err(ParseError { reason: format!("expected a predicate, got {other:?}") }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(source: &'a str, kind: &'a str, body: &'a str) -> AlertView<'a> {
        AlertView { source, kind, body }
    }

    #[test]
    fn comparisons_and_combinators() {
        let p = Predicate::parse("source == aladdin and kind prefix water").expect("parse");
        assert!(p.eval(view("aladdin", "water-leak", "basement sensor")));
        assert!(!p.eval(view("aladdin", "power", "x")));
        assert!(!p.eval(view("proxy", "water-leak", "x")));

        let p = Predicate::parse("body contains \"recount\" or body contains ps2").expect("parse");
        assert!(p.eval(view("proxy", "page", "florida recount news")));
        assert!(p.eval(view("proxy", "page", "ps2 in stock")));
        assert!(!p.eval(view("proxy", "page", "nothing")));

        let p = Predicate::parse("not (source == noisy)").expect("parse");
        assert!(p.eval(view("quiet", "k", "b")));
        assert!(!p.eval(view("noisy", "k", "b")));

        assert!(Predicate::parse("any").expect("parse").eval(view("a", "b", "c")));
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let p = Predicate::parse("source == a and kind == x or source == b").expect("parse");
        assert!(p.eval(view("a", "x", "")));
        assert!(p.eval(view("b", "anything", "")));
        assert!(!p.eval(view("a", "y", "")));
    }

    #[test]
    fn quoted_values_with_escapes() {
        let p = Predicate::parse(r#"body contains "say \"hi\" \\ there""#).expect("parse");
        assert!(p.eval(view("s", "k", r#"please say "hi" \ there now"#)));
    }

    #[test]
    fn to_text_round_trips() {
        for src in [
            "any",
            "source == aladdin",
            "kind prefix \"water\"",
            "(source == a and kind == b) or not (body contains x)",
            "not (not (body != \"a b\"))",
        ] {
            let p = Predicate::parse(src).expect("parse");
            let round = Predicate::parse(&p.to_text()).expect("re-parse");
            assert_eq!(p, round, "canonical text round-trips for {src:?}");
        }
    }

    #[test]
    fn index_keys_from_conjunctions() {
        let p = Predicate::parse("source == aladdin and kind == water and body contains leak")
            .expect("parse");
        assert_eq!(p.index_keys(), (Some("aladdin"), Some("water")));

        let p = Predicate::parse("source == a or source == b").expect("parse");
        assert_eq!(p.index_keys(), (None, None), "disjunctions pin nothing");

        let p = Predicate::parse("kind prefix water").expect("parse");
        assert_eq!(p.index_keys(), (None, None), "prefix is not an exact key");
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in ["source = a", "unknownfield == x", "source ==", "(source == a", "source == a extra", "!x"] {
            assert!(Predicate::parse(bad).is_err(), "{bad:?} must fail");
        }
    }
}
