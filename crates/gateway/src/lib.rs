//! `simba-gateway` — the alert ingestion gateway: a framed TCP front
//! door with admission control and load shedding.
//!
//! The paper's MyAlertBuddy sits "interposed between all alert sources
//! and the user" (§3), but everything upstream of [`simba_runtime::MabHost`]
//! in this reproduction was in-process until now. This crate is the wire:
//!
//! * [`proto`] — a versioned, length-prefixed, CRC-32-checked binary
//!   frame protocol carrying alert submissions, acks/nacks with reasons,
//!   health probes, soft-state facts, and user alert-rule management
//!   (see [`rulewire`] for the wire ↔ engine conversions);
//! * [`GatewayServer`] — a `std::net` TCP listener (thread-per-acceptor
//!   plus a small worker pool; the vendored tokio shim has no `net`, see
//!   `DESIGN.md` §10) with staged admission control: per-connection
//!   in-flight caps, per-source token buckets ([`admission`]), and the
//!   bounded global intake queue — overload is shed with explicit
//!   nack-plus-retry-after, never by stalling, and every drop is counted
//!   (`gateway.shed`, `gateway.decode_err`, `gateway.idle_closed`);
//! * [`GatewayClient`] — a blocking client with reconnect and bounded
//!   retry (at-least-once submission);
//! * [`pump_into_host`] / [`pump_into_sharded_host`] — the bridges
//!   draining admitted submissions into a `MabHost` (task per user) or a
//!   `ShardedHost` (population scale) running on the tokio-shim runtime.
//!
//! The contract the whole stack hangs off: **a submission is acked only
//! after it sits in the bounded intake queue, and the queue is fully
//! drained into the host before shutdown** — so an accepted alert is
//! never lost short of process death, and a rejected one always shows up
//! in a counter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
mod bridge;
mod client;
pub mod proto;
pub mod rulewire;
mod server;

pub use admission::{RateLimit, TokenBuckets};
pub use bridge::{
    intake, pump_into_host, pump_into_sharded_host, IntakeReceiver, IntakeSender, PumpReport,
    Submission,
};
pub use client::{ClientConfig, ClientError, GatewayClient, StateFact, SubmitResult};
pub use proto::{Frame, FrameError, NackReason, ProbeStats, WireChannel, WireRule};
pub use server::{GatewayConfig, GatewayServer};
