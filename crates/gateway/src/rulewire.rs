//! Conversions between the protocol's flat [`WireRule`] and the rules
//! engine's [`RuleSpec`] / [`AlertRule`].
//!
//! The protocol layer ([`crate::proto`]) stays primitive on purpose —
//! bytes and strings, no engine types — so the frame set does not chase
//! the engine's structs. This module is the single place the two shapes
//! meet; the server uses it to apply `RuleUpsert` frames and the CLI
//! uses it to render listings.

use crate::proto::WireRule;
use simba_core::Urgency;
use simba_rules::{AlertRule, DigestConfig, RuleAction, RuleSpec};

/// Encodes an optional severity override (0 = none, 1..=3 = low..critical).
pub fn severity_byte(severity: Option<Urgency>) -> u8 {
    match severity {
        None => 0,
        Some(Urgency::Low) => 1,
        Some(Urgency::Normal) => 2,
        Some(Urgency::Critical) => 3,
    }
}

/// Inverse of [`severity_byte`]; unknown bytes read as no override (the
/// decoder already rejects anything above 3).
pub fn severity_from_byte(byte: u8) -> Option<Urgency> {
    match byte {
        1 => Some(Urgency::Low),
        2 => Some(Urgency::Normal),
        3 => Some(Urgency::Critical),
        _ => None,
    }
}

/// Builds the engine spec a wire rule describes. The digest knobs are
/// only meaningful when `action == 2`; deliver/suppress rules ignore
/// them, mirroring how the engine stores actions.
pub fn spec_of_wire(rule: &WireRule) -> RuleSpec {
    let action = match rule.action {
        0 => RuleAction::Deliver,
        1 => RuleAction::Suppress,
        _ => RuleAction::Digest(DigestConfig {
            window_ms: u64::from(rule.window_ms),
            max_count: rule.max_count,
            max_exemplars: rule.max_exemplars,
            key: rule.key.clone(),
        }),
    };
    RuleSpec {
        name: rule.name.clone(),
        enabled: rule.enabled,
        severity: severity_from_byte(rule.severity),
        dedupe: rule.dedupe.clone(),
        predicate_src: rule.predicate.clone(),
        action,
    }
}

/// Flattens a stored rule for the wire (digest windows longer than
/// `u32::MAX` ms — over 49 days — saturate; the engine never needs them).
pub fn wire_of_rule(rule: &AlertRule) -> WireRule {
    let (action, window_ms, max_count, max_exemplars, key) = match &rule.spec.action {
        RuleAction::Deliver => (0, 0, 0, 0, None),
        RuleAction::Suppress => (1, 0, 0, 0, None),
        RuleAction::Digest(config) => (
            2,
            config.window_ms.min(u64::from(u32::MAX)) as u32,
            config.max_count,
            config.max_exemplars,
            config.key.clone(),
        ),
    };
    WireRule {
        id: rule.id,
        name: rule.spec.name.clone(),
        enabled: rule.spec.enabled,
        severity: severity_byte(rule.spec.severity),
        dedupe: rule.spec.dedupe.clone(),
        predicate: rule.spec.predicate_src.clone(),
        action,
        window_ms,
        max_count,
        max_exemplars,
        key,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_bytes_round_trip() {
        for severity in [None, Some(Urgency::Low), Some(Urgency::Normal), Some(Urgency::Critical)]
        {
            assert_eq!(severity_from_byte(severity_byte(severity)), severity);
        }
    }

    #[test]
    fn wire_and_spec_round_trip_through_a_compiled_rule() {
        let mut spec = RuleSpec::digest(
            "storm",
            "source == flappy and kind == water",
            DigestConfig { window_ms: 5_000, max_count: 10, max_exemplars: 2, key: None },
        );
        spec.severity = Some(Urgency::Low);
        spec.dedupe = Some("{source}".into());
        let rule = AlertRule::compile(3, "ada", spec).expect("compile");
        let wire = wire_of_rule(&rule);
        assert_eq!(wire.id, 3);
        assert_eq!(wire.action, 2);
        // The round-tripped spec matches the stored (canonicalized) one.
        assert_eq!(spec_of_wire(&wire), rule.spec);
    }
}
