//! The thread → runtime bridge: a bounded intake queue plus the pump
//! task that drains it into a [`MabHost`].
//!
//! The vendored tokio shim has no `net` module, so sockets are served by
//! std threads (see `DESIGN.md` §10). Those threads still have to hand
//! alerts to the `MabHost`, whose services run on the shim's
//! single-threaded executor. The bridge is the seam: worker threads call
//! [`IntakeSender::try_submit`] (synchronous, lock-based, thread-safe —
//! the shim's channel internals are `Arc<Mutex<..>>`), and the async
//! [`pump_into_host`] task drains the queue from inside the runtime.
//!
//! The pump wraps every `recv` in a short [`tokio::time::timeout`]: the
//! shim executor treats "no runnable task and no timer" as a deadlock,
//! and a cross-thread send only becomes visible at the next executor
//! wake-up, so the tick doubles as the runtime's heartbeat. An admitted
//! submission is therefore durable-in-process: once `try_submit`
//! succeeds (and the worker acks the client), only process death can
//! lose it — the pump drains the queue to `None` before the host shuts
//! down, even if the submitting connection is long gone.

use crate::proto::WireChannel;
use simba_core::alert::IncomingAlert;
use simba_core::subscription::UserId;
use simba_core::Telemetry;
use simba_runtime::{Channels, MabHost, RuntimeClock, ShardedHost};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tokio::sync::mpsc;

/// How often the pump wakes when the queue is idle. Also bounds the
/// latency between a worker-thread enqueue and the runtime noticing it.
pub const PUMP_TICK: Duration = Duration::from_millis(1);

/// Under sustained load the pump never sees an idle tick, so it also
/// drives the host's digest flush every this many submissions — bounding
/// how stale a due digest window can get while traffic keeps flowing.
const DIGEST_PUMP_EVERY: u64 = 256;

/// One admitted alert submission on its way to the host.
#[derive(Debug)]
pub struct Submission {
    /// Client-assigned sequence number (for diagnostics).
    pub seq: u64,
    /// Which host front door to use.
    pub channel: WireChannel,
    /// The target user.
    pub user: UserId,
    /// The alerting source.
    pub source: String,
    /// The alert body.
    pub body: String,
    /// The submitting connection's in-flight slot; the pump releases it
    /// after routing. Outlives the connection (an `Arc`), so a dropped
    /// client never strands the accounting.
    pub slot: Arc<AtomicUsize>,
}

/// Builds the bounded intake queue: worker threads hold the sender, the
/// runtime pump owns the receiver.
pub fn intake(capacity: usize) -> (IntakeSender, IntakeReceiver) {
    let capacity = capacity.max(1);
    let (tx, rx) = mpsc::channel(capacity);
    let depth = Arc::new(AtomicUsize::new(0));
    (
        IntakeSender { tx, depth: Arc::clone(&depth), capacity },
        IntakeReceiver { rx, depth },
    )
}

/// Thread-safe sending half of the intake queue.
#[derive(Debug, Clone)]
pub struct IntakeSender {
    tx: mpsc::Sender<Submission>,
    depth: Arc<AtomicUsize>,
    capacity: usize,
}

impl IntakeSender {
    /// Enqueues without blocking; hands the submission back when the
    /// queue is full (the caller sheds) or the pump is gone.
    pub fn try_submit(&self, submission: Submission) -> Result<(), Submission> {
        match self.tx.try_send(submission) {
            Ok(()) => {
                self.depth.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(tokio::sync::mpsc::error::SendError(submission)) => Err(submission),
        }
    }

    /// Current queue depth (approximate under concurrency).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// The queue's fixed capacity — reported in probe replies so clients
    /// can judge fullness and back off before they are nacked.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Receiving half of the intake queue; owned by [`pump_into_host`].
#[derive(Debug)]
pub struct IntakeReceiver {
    rx: mpsc::Receiver<Submission>,
    depth: Arc<AtomicUsize>,
}

/// What the pump routed by the time the intake queue closed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpReport {
    /// Submissions handed to a hosted user's service.
    pub routed: u64,
    /// Submissions whose user was not hosted (also counted by the host
    /// as `host.unrouted`).
    pub unrouted: u64,
}

/// Drains the intake queue into `host` until every [`IntakeSender`] is
/// gone and the queue is empty. Run this inside the shim runtime,
/// concurrently with the gateway's worker threads; shut the
/// [`crate::GatewayServer`] down first so the senders drop.
pub async fn pump_into_host<C: Channels + Clone>(
    host: &MabHost<C>,
    mut intake: IntakeReceiver,
    telemetry: &Telemetry,
) -> PumpReport {
    let clock = RuntimeClock::start();
    let depth_gauge = telemetry.metrics().gauge("gateway.queue_depth");
    let mut report = PumpReport::default();
    let mut since_digest_pump = 0u64;
    loop {
        let submission = match tokio::time::timeout(PUMP_TICK, intake.rx.recv()).await {
            Err(_elapsed) => {
                // Idle tick: keeps the shim executor alive and drains any
                // digest windows whose deadline passed.
                host.pump_digests().await;
                since_digest_pump = 0;
                continue;
            }
            Ok(None) => break, // every sender dropped and the queue drained
            Ok(Some(submission)) => submission,
        };
        intake.depth.fetch_sub(1, Ordering::Relaxed);
        depth_gauge.set(intake.depth.load(Ordering::Relaxed) as u64);
        let now = clock.now();
        let routed = match submission.channel {
            WireChannel::Im => {
                let alert = IncomingAlert::from_im(submission.source, submission.body, now);
                host.submit_im(&submission.user, alert).await
            }
            WireChannel::Email => {
                let alert = IncomingAlert::from_email(
                    submission.source,
                    "gateway",
                    "alert",
                    submission.body,
                    now,
                );
                host.submit_email(&submission.user, alert).await
            }
        };
        submission.slot.fetch_sub(1, Ordering::Relaxed);
        if routed {
            report.routed += 1;
        } else {
            report.unrouted += 1;
        }
        since_digest_pump += 1;
        if since_digest_pump >= DIGEST_PUMP_EVERY {
            host.pump_digests().await;
            since_digest_pump = 0;
        }
    }
    host.pump_digests().await;
    depth_gauge.set(0);
    report
}

/// Drains the intake queue into a [`ShardedHost`], the population-scale
/// counterpart of [`pump_into_host`].
///
/// The semantics of the report shift with the architecture: the sharded
/// host resolves user → buddy *inside* the owning shard worker, so the
/// pump only learns whether the submission was accepted onto the shard's
/// queue. `routed` therefore counts accepted hand-offs and `unrouted`
/// counts shard-queue sheds; submissions for unregistered users surface
/// in [`ShardedHost::snapshot`] (and the `host.unrouted` point) instead.
pub async fn pump_into_sharded_host(
    host: &ShardedHost,
    mut intake: IntakeReceiver,
    telemetry: &Telemetry,
) -> PumpReport {
    let clock = RuntimeClock::start();
    let depth_gauge = telemetry.metrics().gauge("gateway.queue_depth");
    let mut report = PumpReport::default();
    let mut since_digest_pump = 0u64;
    loop {
        let submission = match tokio::time::timeout(PUMP_TICK, intake.rx.recv()).await {
            Err(_elapsed) => {
                // Idle tick: keeps the shim executor alive and drains any
                // digest windows whose deadline passed.
                host.pump_digests().await;
                since_digest_pump = 0;
                continue;
            }
            Ok(None) => break, // every sender dropped and the queue drained
            Ok(Some(submission)) => submission,
        };
        intake.depth.fetch_sub(1, Ordering::Relaxed);
        depth_gauge.set(intake.depth.load(Ordering::Relaxed) as u64);
        let now = clock.now();
        let accepted = match submission.channel {
            WireChannel::Im => {
                let alert = IncomingAlert::from_im(submission.source, submission.body, now);
                host.submit_im(&submission.user, alert).await
            }
            WireChannel::Email => {
                let alert = IncomingAlert::from_email(
                    submission.source,
                    "gateway",
                    "alert",
                    submission.body,
                    now,
                );
                host.submit_email(&submission.user, alert).await
            }
        };
        submission.slot.fetch_sub(1, Ordering::Relaxed);
        if accepted {
            report.routed += 1;
        } else {
            report.unrouted += 1;
        }
        since_digest_pump += 1;
        if since_digest_pump >= DIGEST_PUMP_EVERY {
            host.pump_digests().await;
            since_digest_pump = 0;
        }
    }
    host.pump_digests().await;
    depth_gauge.set(0);
    report
}
