//! The gateway wire protocol: versioned, length-prefixed, CRC-checked
//! binary frames.
//!
//! Every frame is a fixed 14-byte header followed by a payload:
//!
//! ```text
//! +--------+---------+------+---------------+-----------+== payload ==+
//! | magic  | version | type | payload_len   | crc32     |   ...       |
//! | "SMBA" | u8 (=1) | u8   | u32 LE        | u32 LE    |             |
//! +--------+---------+------+---------------+-----------+=============+
//! ```
//!
//! The CRC-32 (IEEE) covers the payload bytes only, so a flipped bit in
//! the body is caught even when the length happens to stay plausible.
//! Integers are little-endian; strings are a `u16` length followed by
//! UTF-8 bytes. The magic makes a client that dials the wrong port fail
//! fast, the version byte leaves room to evolve the frame set, and the
//! length prefix bounds how much a decoder ever buffers (the server caps
//! it further via [`crate::GatewayConfig::max_payload`]).

use std::fmt;

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"SMBA";
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 14;
/// Default cap on payload size (64 KiB) — protects the decoder's buffer.
pub const DEFAULT_MAX_PAYLOAD: u32 = 64 * 1024;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { 0xEDB8_8320 ^ (crc >> 1) } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3) over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Which delivery front door the alert claims to have arrived by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireChannel {
    /// Instant-messaging borne (routes to `MabHost::submit_im`).
    Im,
    /// Email borne (routes to `MabHost::submit_email`).
    Email,
}

impl WireChannel {
    fn as_u8(self) -> u8 {
        match self {
            WireChannel::Im => 0,
            WireChannel::Email => 1,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(WireChannel::Im),
            1 => Some(WireChannel::Email),
            _ => None,
        }
    }
}

/// Why the gateway refused a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NackReason {
    /// The global intake queue is full — back off and retry.
    QueueFull,
    /// The source's token bucket is empty — back off and retry.
    RateLimited,
    /// Too many of this connection's submissions are still in flight.
    ConnBusy,
    /// The user is not hosted; retrying will not help.
    UnknownUser,
    /// The frame failed to decode; the connection is being closed.
    Malformed,
    /// The gateway is shutting down.
    Shutdown,
    /// The gateway cannot serve this frame kind (e.g. a state operation
    /// on a gateway with no soft-state store attached, or a rule
    /// operation with no rules engine). Permanent.
    Unsupported,
    /// The frame decoded but the rules engine refused the operation
    /// (invalid predicate, unknown rule id, or per-user bound).
    /// Permanent: resending the identical request cannot succeed.
    Rejected,
}

impl NackReason {
    /// True for transient overload rejections (the client should honour
    /// `retry_after_ms`); false for permanent ones.
    pub fn is_shed(self) -> bool {
        matches!(
            self,
            NackReason::QueueFull | NackReason::RateLimited | NackReason::ConnBusy
        )
    }

    fn as_u8(self) -> u8 {
        match self {
            NackReason::QueueFull => 1,
            NackReason::RateLimited => 2,
            NackReason::ConnBusy => 3,
            NackReason::UnknownUser => 4,
            NackReason::Malformed => 5,
            NackReason::Shutdown => 6,
            NackReason::Unsupported => 7,
            NackReason::Rejected => 8,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(NackReason::QueueFull),
            2 => Some(NackReason::RateLimited),
            3 => Some(NackReason::ConnBusy),
            4 => Some(NackReason::UnknownUser),
            5 => Some(NackReason::Malformed),
            6 => Some(NackReason::Shutdown),
            7 => Some(NackReason::Unsupported),
            8 => Some(NackReason::Rejected),
            _ => None,
        }
    }
}

impl fmt::Display for NackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NackReason::QueueFull => "queue-full",
            NackReason::RateLimited => "rate-limited",
            NackReason::ConnBusy => "conn-busy",
            NackReason::UnknownUser => "unknown-user",
            NackReason::Malformed => "malformed",
            NackReason::Shutdown => "shutdown",
            NackReason::Unsupported => "unsupported",
            NackReason::Rejected => "rejected",
        };
        f.write_str(s)
    }
}

/// Gateway health counters carried by [`Frame::ProbeReply`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Submissions admitted into the intake queue so far.
    pub accepted: u64,
    /// Submissions shed (queue-full / rate-limited / conn-busy).
    pub shed: u64,
    /// Frames that failed to decode.
    pub decode_err: u64,
    /// Current intake-queue depth.
    pub queue_depth: u32,
    /// Total intake-queue capacity, so a client can compute fullness
    /// (`queue_depth / queue_capacity`) and back off *before* being
    /// nacked rather than after.
    pub queue_capacity: u32,
}

/// A user alert rule as it crosses the wire — a flat mirror of
/// `simba_rules::RuleSpec` plus the engine-assigned id, kept primitive so
/// the protocol layer stays self-contained. Conversions to and from the
/// engine's types live with the server and callers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireRule {
    /// Engine-assigned rule id; `0` in an upsert asks the engine to
    /// assign one.
    pub id: u64,
    /// Short human name.
    pub name: String,
    /// Disabled rules stay stored but never match.
    pub enabled: bool,
    /// Severity override: 0 = none, 1 = low, 2 = normal, 3 = critical.
    pub severity: u8,
    /// Optional dedupe-key template.
    pub dedupe: Option<String>,
    /// Predicate source text.
    pub predicate: String,
    /// Action: 0 = deliver, 1 = suppress, 2 = digest.
    pub action: u8,
    /// Digest flush window in ms (digest rules; ignored otherwise).
    pub window_ms: u32,
    /// Digest count cap, 0 = none (digest rules).
    pub max_count: u32,
    /// Exemplar payloads carried by the digest (digest rules).
    pub max_exemplars: u8,
    /// Optional digest correlation-key template.
    pub key: Option<String>,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: submit one alert.
    Submit {
        /// Client-assigned sequence number echoed by the ack/nack.
        seq: u64,
        /// Which front door the alert arrives by.
        channel: WireChannel,
        /// The target user.
        user: String,
        /// The alerting source (also the rate-limiting key).
        source: String,
        /// The alert body.
        body: String,
    },
    /// Server → client: the submission was admitted; once acked it will
    /// be routed (the intake queue is drained even through shutdown).
    Ack {
        /// Echo of the submission's sequence number.
        seq: u64,
    },
    /// Server → client: the submission was rejected.
    Nack {
        /// Echo of the submission's sequence number (0 when the frame
        /// could not be decoded far enough to know it).
        seq: u64,
        /// Why.
        reason: NackReason,
        /// Suggested back-off before retrying, for shed reasons.
        retry_after_ms: u32,
    },
    /// Client → server: health probe.
    Probe {
        /// Correlates the reply.
        nonce: u64,
    },
    /// Server → client: health counters.
    ProbeReply {
        /// Echo of the probe nonce.
        nonce: u64,
        /// Counters at reply time.
        stats: ProbeStats,
    },
    /// Client → server: publish a soft-state fact (presence, channel
    /// health...) into the gateway's store. Answered with [`Frame::Ack`]
    /// or [`Frame::Nack`] (`Unsupported` when no store is attached).
    StateUpdate {
        /// Client-assigned sequence number echoed by the ack/nack.
        seq: u64,
        /// Fact scope (e.g. `presence`, `chanhealth`).
        scope: String,
        /// Fact key (e.g. the user name or channel name).
        key: String,
        /// Fact value (e.g. `away`, `healthy`).
        value: String,
        /// Time-to-live in milliseconds from arrival.
        ttl_ms: u32,
        /// Who published it.
        source: String,
    },
    /// Client → server: read one fact back. Answered with
    /// [`Frame::StateReply`] (or a `Nack` when no store is attached).
    StateQuery {
        /// Correlates the reply.
        seq: u64,
        /// Fact scope.
        scope: String,
        /// Fact key.
        key: String,
    },
    /// Server → client: the fact under a queried `(scope, key)`, if any.
    StateReply {
        /// Echo of the query's sequence number.
        seq: u64,
        /// Whether a live fact was found (all other fields are zero/empty
        /// otherwise).
        found: bool,
        /// The fact's value.
        value: String,
        /// The fact's generation.
        generation: u64,
        /// Milliseconds of TTL remaining at reply time.
        ttl_remaining_ms: u32,
    },
    /// Client → server: create (`rule.id == 0`) or replace a user-owned
    /// alert rule. Answered with a single-rule [`Frame::RuleListReply`]
    /// carrying the stored rule (so the client learns the assigned id),
    /// or a `Nack` (`Unsupported` without a rules engine, `Rejected` for
    /// invalid predicates / unknown ids / per-user bounds).
    RuleUpsert {
        /// Client-assigned sequence number echoed by the reply.
        seq: u64,
        /// The owning user.
        user: String,
        /// The rule to store.
        rule: WireRule,
    },
    /// Client → server: delete one rule. Answered with [`Frame::Ack`]
    /// whether or not the rule existed (deletion is idempotent), or a
    /// `Nack` (`Unsupported` without a rules engine).
    RuleDelete {
        /// Client-assigned sequence number echoed by the ack/nack.
        seq: u64,
        /// The owning user.
        user: String,
        /// The rule id to delete.
        rule_id: u64,
    },
    /// Client → server: list one user's rules. Answered with
    /// [`Frame::RuleListReply`] (or a `Nack` without a rules engine).
    RuleList {
        /// Correlates the reply.
        seq: u64,
        /// The owning user.
        user: String,
    },
    /// Server → client: the rules a [`Frame::RuleList`] asked for (or
    /// the single stored rule after a [`Frame::RuleUpsert`]).
    RuleListReply {
        /// Echo of the request's sequence number.
        seq: u64,
        /// The user's rules, ordered by id.
        rules: Vec<WireRule>,
    },
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Submit { .. } => 1,
            Frame::Ack { .. } => 2,
            Frame::Nack { .. } => 3,
            Frame::Probe { .. } => 4,
            Frame::ProbeReply { .. } => 5,
            Frame::StateUpdate { .. } => 6,
            Frame::StateQuery { .. } => 7,
            Frame::StateReply { .. } => 8,
            Frame::RuleUpsert { .. } => 9,
            Frame::RuleDelete { .. } => 10,
            Frame::RuleList { .. } => 11,
            Frame::RuleListReply { .. } => 12,
        }
    }
}

/// Why a frame failed to decode.
#[derive(Debug)]
pub enum FrameError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame-type byte.
    UnknownType(u8),
    /// Payload checksum mismatch: the frame was corrupted in flight.
    BadCrc {
        /// CRC carried by the header.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// The header announces a payload larger than the decoder accepts.
    TooLarge {
        /// Announced length.
        len: u32,
        /// The decoder's cap.
        max: u32,
    },
    /// The payload ended early or held an invalid field.
    Malformed(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported version {v}"),
            FrameError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            FrameError::BadCrc { expected, actual } => {
                write!(f, "crc mismatch: header {expected:08x}, payload {actual:08x}")
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A parsed frame header; the payload follows on the wire.
#[derive(Debug, Clone, Copy)]
pub struct Header {
    /// Frame-type byte (validated against the known set).
    pub frame_type: u8,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// CRC-32 the payload must match.
    pub crc: u32,
}

impl Header {
    /// Parses and validates a fixed-size header, enforcing `max_payload`.
    pub fn parse(bytes: &[u8; HEADER_LEN], max_payload: u32) -> Result<Header, FrameError> {
        if bytes[..4] != MAGIC {
            return Err(FrameError::BadMagic([bytes[0], bytes[1], bytes[2], bytes[3]]));
        }
        if bytes[4] != VERSION {
            return Err(FrameError::BadVersion(bytes[4]));
        }
        let frame_type = bytes[5];
        if !(1..=12).contains(&frame_type) {
            return Err(FrameError::UnknownType(frame_type));
        }
        let payload_len = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]);
        if payload_len > max_payload {
            return Err(FrameError::TooLarge { len: payload_len, max: max_payload });
        }
        let crc = u32::from_le_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]);
        Ok(Header { frame_type, payload_len, crc })
    }
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
        None => out.push(0),
    }
}

fn put_rule(out: &mut Vec<u8>, rule: &WireRule) {
    out.extend_from_slice(&rule.id.to_le_bytes());
    put_str(out, &rule.name);
    out.push(u8::from(rule.enabled));
    out.push(rule.severity);
    put_opt_str(out, rule.dedupe.as_deref());
    put_str(out, &rule.predicate);
    out.push(rule.action);
    out.extend_from_slice(&rule.window_ms.to_le_bytes());
    out.extend_from_slice(&rule.max_count.to_le_bytes());
    out.push(rule.max_exemplars);
    put_opt_str(out, rule.key.as_deref());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    // Strings longer than the u16 length prefix allows are truncated at a
    // char boundary (submission bodies are capped far below this anyway).
    let mut len = s.len().min(u16::MAX as usize);
    while !s.is_char_boundary(len) {
        len -= 1;
    }
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len]);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(FrameError::Malformed(what)),
        }
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, FrameError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, FrameError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, FrameError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self, what: &'static str) -> Result<String, FrameError> {
        let len = self.u16(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::Malformed(what))
    }

    fn opt_string(&mut self, what: &'static str) -> Result<Option<String>, FrameError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.string(what)?)),
            _ => Err(FrameError::Malformed(what)),
        }
    }

    fn rule(&mut self) -> Result<WireRule, FrameError> {
        let id = self.u64("rule.id")?;
        let name = self.string("rule.name")?;
        let enabled = match self.u8("rule.enabled")? {
            0 => false,
            1 => true,
            _ => return Err(FrameError::Malformed("rule.enabled")),
        };
        let severity = self.u8("rule.severity")?;
        if severity > 3 {
            return Err(FrameError::Malformed("rule.severity"));
        }
        let dedupe = self.opt_string("rule.dedupe")?;
        let predicate = self.string("rule.predicate")?;
        let action = self.u8("rule.action")?;
        if action > 2 {
            return Err(FrameError::Malformed("rule.action"));
        }
        let window_ms = self.u32("rule.window_ms")?;
        let max_count = self.u32("rule.max_count")?;
        let max_exemplars = self.u8("rule.max_exemplars")?;
        let key = self.opt_string("rule.key")?;
        Ok(WireRule {
            id,
            name,
            enabled,
            severity,
            dedupe,
            predicate,
            action,
            window_ms,
            max_count,
            max_exemplars,
            key,
        })
    }

    fn finish(&self, what: &'static str) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::Malformed(what))
        }
    }
}

/// Encodes `frame` (header + payload) onto the end of `out`.
pub fn encode(frame: &Frame, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(32);
    match frame {
        Frame::Submit { seq, channel, user, source, body } => {
            payload.extend_from_slice(&seq.to_le_bytes());
            payload.push(channel.as_u8());
            put_str(&mut payload, user);
            put_str(&mut payload, source);
            put_str(&mut payload, body);
        }
        Frame::Ack { seq } => payload.extend_from_slice(&seq.to_le_bytes()),
        Frame::Nack { seq, reason, retry_after_ms } => {
            payload.extend_from_slice(&seq.to_le_bytes());
            payload.push(reason.as_u8());
            payload.extend_from_slice(&retry_after_ms.to_le_bytes());
        }
        Frame::Probe { nonce } => payload.extend_from_slice(&nonce.to_le_bytes()),
        Frame::ProbeReply { nonce, stats } => {
            payload.extend_from_slice(&nonce.to_le_bytes());
            payload.extend_from_slice(&stats.accepted.to_le_bytes());
            payload.extend_from_slice(&stats.shed.to_le_bytes());
            payload.extend_from_slice(&stats.decode_err.to_le_bytes());
            payload.extend_from_slice(&stats.queue_depth.to_le_bytes());
            payload.extend_from_slice(&stats.queue_capacity.to_le_bytes());
        }
        Frame::StateUpdate { seq, scope, key, value, ttl_ms, source } => {
            payload.extend_from_slice(&seq.to_le_bytes());
            put_str(&mut payload, scope);
            put_str(&mut payload, key);
            put_str(&mut payload, value);
            payload.extend_from_slice(&ttl_ms.to_le_bytes());
            put_str(&mut payload, source);
        }
        Frame::StateQuery { seq, scope, key } => {
            payload.extend_from_slice(&seq.to_le_bytes());
            put_str(&mut payload, scope);
            put_str(&mut payload, key);
        }
        Frame::StateReply { seq, found, value, generation, ttl_remaining_ms } => {
            payload.extend_from_slice(&seq.to_le_bytes());
            payload.push(u8::from(*found));
            put_str(&mut payload, value);
            payload.extend_from_slice(&generation.to_le_bytes());
            payload.extend_from_slice(&ttl_remaining_ms.to_le_bytes());
        }
        Frame::RuleUpsert { seq, user, rule } => {
            payload.extend_from_slice(&seq.to_le_bytes());
            put_str(&mut payload, user);
            put_rule(&mut payload, rule);
        }
        Frame::RuleDelete { seq, user, rule_id } => {
            payload.extend_from_slice(&seq.to_le_bytes());
            put_str(&mut payload, user);
            payload.extend_from_slice(&rule_id.to_le_bytes());
        }
        Frame::RuleList { seq, user } => {
            payload.extend_from_slice(&seq.to_le_bytes());
            put_str(&mut payload, user);
        }
        Frame::RuleListReply { seq, rules } => {
            payload.extend_from_slice(&seq.to_le_bytes());
            let count = rules.len().min(u16::MAX as usize);
            payload.extend_from_slice(&(count as u16).to_le_bytes());
            for rule in &rules[..count] {
                put_rule(&mut payload, rule);
            }
        }
    }
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame.type_byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Encodes `frame` into a fresh buffer.
pub fn encode_to_vec(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + 32);
    encode(frame, &mut out);
    out
}

/// Decodes a payload the header described, verifying its CRC first.
pub fn decode_payload(header: &Header, payload: &[u8]) -> Result<Frame, FrameError> {
    debug_assert_eq!(payload.len(), header.payload_len as usize);
    let actual = crc32(payload);
    if actual != header.crc {
        return Err(FrameError::BadCrc { expected: header.crc, actual });
    }
    let mut r = Reader { buf: payload, pos: 0 };
    let frame = match header.frame_type {
        1 => {
            let seq = r.u64("submit.seq")?;
            let channel = WireChannel::from_u8(r.u8("submit.channel")?)
                .ok_or(FrameError::Malformed("submit.channel"))?;
            let user = r.string("submit.user")?;
            let source = r.string("submit.source")?;
            let body = r.string("submit.body")?;
            Frame::Submit { seq, channel, user, source, body }
        }
        // simba-analyze: allow(durability.ack-before-commit): the decoder reconstructs a peer's frame from wire bytes; nothing is being acknowledged here
        2 => Frame::Ack { seq: r.u64("ack.seq")? },
        3 => {
            let seq = r.u64("nack.seq")?;
            let reason = NackReason::from_u8(r.u8("nack.reason")?)
                .ok_or(FrameError::Malformed("nack.reason"))?;
            let retry_after_ms = r.u32("nack.retry_after")?;
            Frame::Nack { seq, reason, retry_after_ms }
        }
        4 => Frame::Probe { nonce: r.u64("probe.nonce")? },
        5 => {
            let nonce = r.u64("probe_reply.nonce")?;
            let stats = ProbeStats {
                accepted: r.u64("probe_reply.accepted")?,
                shed: r.u64("probe_reply.shed")?,
                decode_err: r.u64("probe_reply.decode_err")?,
                queue_depth: r.u32("probe_reply.queue_depth")?,
                queue_capacity: r.u32("probe_reply.queue_capacity")?,
            };
            Frame::ProbeReply { nonce, stats }
        }
        6 => {
            let seq = r.u64("state_update.seq")?;
            let scope = r.string("state_update.scope")?;
            let key = r.string("state_update.key")?;
            let value = r.string("state_update.value")?;
            let ttl_ms = r.u32("state_update.ttl_ms")?;
            let source = r.string("state_update.source")?;
            Frame::StateUpdate { seq, scope, key, value, ttl_ms, source }
        }
        7 => {
            let seq = r.u64("state_query.seq")?;
            let scope = r.string("state_query.scope")?;
            let key = r.string("state_query.key")?;
            Frame::StateQuery { seq, scope, key }
        }
        8 => {
            let seq = r.u64("state_reply.seq")?;
            let found = match r.u8("state_reply.found")? {
                0 => false,
                1 => true,
                _ => return Err(FrameError::Malformed("state_reply.found")),
            };
            let value = r.string("state_reply.value")?;
            let generation = r.u64("state_reply.generation")?;
            let ttl_remaining_ms = r.u32("state_reply.ttl_remaining")?;
            Frame::StateReply { seq, found, value, generation, ttl_remaining_ms }
        }
        9 => {
            let seq = r.u64("rule_upsert.seq")?;
            let user = r.string("rule_upsert.user")?;
            let rule = r.rule()?;
            Frame::RuleUpsert { seq, user, rule }
        }
        10 => {
            let seq = r.u64("rule_delete.seq")?;
            let user = r.string("rule_delete.user")?;
            let rule_id = r.u64("rule_delete.rule_id")?;
            Frame::RuleDelete { seq, user, rule_id }
        }
        11 => {
            let seq = r.u64("rule_list.seq")?;
            let user = r.string("rule_list.user")?;
            Frame::RuleList { seq, user }
        }
        12 => {
            let seq = r.u64("rule_list_reply.seq")?;
            let count = r.u16("rule_list_reply.count")? as usize;
            let mut rules = Vec::with_capacity(count.min(256));
            for _ in 0..count {
                rules.push(r.rule()?);
            }
            Frame::RuleListReply { seq, rules }
        }
        t => return Err(FrameError::UnknownType(t)),
    };
    r.finish("trailing bytes")?;
    Ok(frame)
}

/// Decodes one whole frame from the front of `buf`; returns the frame and
/// how many bytes it consumed. Convenience for tests and in-memory use —
/// the server and client parse header and payload separately off the
/// socket.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Malformed("truncated header"));
    }
    let header_bytes: [u8; HEADER_LEN] = buf[..HEADER_LEN]
        .try_into()
        .map_err(|_| FrameError::Malformed("truncated header"))?;
    let header = Header::parse(&header_bytes, DEFAULT_MAX_PAYLOAD)?;
    let total = HEADER_LEN + header.payload_len as usize;
    if buf.len() < total {
        return Err(FrameError::Malformed("truncated payload"));
    }
    let frame = decode_payload(&header, &buf[HEADER_LEN..total])?;
    Ok((frame, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn all_frame_kinds_round_trip() {
        let frames = [
            Frame::Submit {
                seq: 7,
                channel: WireChannel::Im,
                user: "alice".into(),
                source: "aladdin-gw".into(),
                body: "Basement Water Sensor ON".into(),
            },
            Frame::Ack { seq: 9 },
            Frame::Nack { seq: 3, reason: NackReason::RateLimited, retry_after_ms: 250 },
            Frame::Probe { nonce: 99 },
            Frame::ProbeReply {
                nonce: 99,
                stats: ProbeStats {
                    accepted: 10,
                    shed: 2,
                    decode_err: 1,
                    queue_depth: 5,
                    queue_capacity: 1024,
                },
            },
            Frame::StateUpdate {
                seq: 11,
                scope: "presence".into(),
                key: "alice".into(),
                value: "away".into(),
                ttl_ms: 30_000,
                source: "wish".into(),
            },
            Frame::StateQuery { seq: 12, scope: "chanhealth".into(), key: "im".into() },
            Frame::StateReply {
                seq: 12,
                found: true,
                value: "healthy".into(),
                generation: 41,
                ttl_remaining_ms: 12_500,
            },
            Frame::RuleUpsert {
                seq: 13,
                user: "alice".into(),
                rule: WireRule {
                    id: 0,
                    name: "storm".into(),
                    enabled: true,
                    severity: 2,
                    dedupe: Some("{source}/{body}".into()),
                    predicate: "source == \"flappy\"".into(),
                    action: 2,
                    window_ms: 60_000,
                    max_count: 100,
                    max_exemplars: 3,
                    key: None,
                },
            },
            Frame::RuleDelete { seq: 14, user: "alice".into(), rule_id: 7 },
            Frame::RuleList { seq: 15, user: "alice".into() },
            Frame::RuleListReply {
                seq: 15,
                rules: vec![
                    WireRule {
                        id: 1,
                        name: "quiet".into(),
                        enabled: false,
                        severity: 0,
                        dedupe: None,
                        predicate: "any".into(),
                        action: 1,
                        window_ms: 0,
                        max_count: 0,
                        max_exemplars: 0,
                        key: Some("{user}/{kind}".into()),
                    },
                    WireRule { id: 2, name: "all".into(), enabled: true, ..WireRule::default() },
                ],
            },
        ];
        for frame in frames {
            let bytes = encode_to_vec(&frame);
            let (decoded, consumed) = decode_frame(&bytes).expect("round trip");
            assert_eq!(decoded, frame);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn corrupt_crc_is_rejected() {
        let mut bytes = encode_to_vec(&Frame::Ack { seq: 42 });
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip one payload bit
        match decode_frame(&bytes) {
            Err(FrameError::BadCrc { .. }) => {}
            other => panic!("corrupted frame decoded as {other:?}"),
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let bytes = encode_to_vec(&Frame::Submit {
            seq: 1,
            channel: WireChannel::Email,
            user: "u".into(),
            source: "s".into(),
            body: "b".into(),
        });
        // Every proper prefix must fail cleanly, never panic or succeed.
        for cut in 0..bytes.len() {
            assert!(
                decode_frame(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_fail_fast() {
        let mut bytes = encode_to_vec(&Frame::Probe { nonce: 1 });
        bytes[0] = b'X';
        assert!(matches!(decode_frame(&bytes), Err(FrameError::BadMagic(_))));
        let mut bytes = encode_to_vec(&Frame::Probe { nonce: 1 });
        bytes[4] = 99;
        assert!(matches!(decode_frame(&bytes), Err(FrameError::BadVersion(99))));
        let mut bytes = encode_to_vec(&Frame::Probe { nonce: 1 });
        bytes[5] = 77;
        assert!(matches!(decode_frame(&bytes), Err(FrameError::UnknownType(77))));
    }

    proptest! {
        #[test]
        fn arbitrary_alert_frames_round_trip(
            seq in proptest::prelude::any::<u64>(),
            im in proptest::prelude::any::<bool>(),
            user in "[a-z0-9_.-]{0,24}",
            source in "\\PC{0,32}",
            body in "\\PC{0,200}",
        ) {
            let frame = Frame::Submit {
                seq,
                channel: if im { WireChannel::Im } else { WireChannel::Email },
                user,
                source,
                body,
            };
            let bytes = encode_to_vec(&frame);
            let (decoded, consumed) = decode_frame(&bytes).expect("encode -> decode");
            prop_assert_eq!(decoded, frame);
            prop_assert_eq!(consumed, bytes.len());
        }

        /// Satellite 2: the ProbeReply carries depth, shed count, and
        /// capacity intact for any counter values — the client's back-off
        /// decision sees exactly what the server measured.
        #[test]
        fn probe_reply_round_trips_arbitrary_stats(
            nonce in proptest::prelude::any::<u64>(),
            accepted in proptest::prelude::any::<u64>(),
            shed in proptest::prelude::any::<u64>(),
            decode_err in proptest::prelude::any::<u64>(),
            queue_depth in proptest::prelude::any::<u32>(),
            queue_capacity in proptest::prelude::any::<u32>(),
        ) {
            let frame = Frame::ProbeReply {
                nonce,
                stats: ProbeStats { accepted, shed, decode_err, queue_depth, queue_capacity },
            };
            let bytes = encode_to_vec(&frame);
            let (decoded, consumed) = decode_frame(&bytes).expect("encode -> decode");
            prop_assert_eq!(decoded, frame);
            prop_assert_eq!(consumed, bytes.len());
        }

        #[test]
        fn state_frames_round_trip(
            seq in proptest::prelude::any::<u64>(),
            scope in "[a-z]{1,16}",
            key in "\\PC{0,32}",
            value in "\\PC{0,64}",
            ttl_ms in proptest::prelude::any::<u32>(),
            source in "\\PC{0,24}",
            found in proptest::prelude::any::<bool>(),
            generation in proptest::prelude::any::<u64>(),
        ) {
            let frames = [
                Frame::StateUpdate {
                    seq,
                    scope: scope.clone(),
                    key: key.clone(),
                    value: value.clone(),
                    ttl_ms,
                    source,
                },
                Frame::StateQuery { seq, scope, key },
                Frame::StateReply { seq, found, value, generation, ttl_remaining_ms: ttl_ms },
            ];
            for frame in frames {
                let bytes = encode_to_vec(&frame);
                let (decoded, consumed) = decode_frame(&bytes).expect("encode -> decode");
                prop_assert_eq!(decoded, frame);
                prop_assert_eq!(consumed, bytes.len());
            }
        }

        #[test]
        fn rule_frames_round_trip(
            seq in proptest::prelude::any::<u64>(),
            user in "[a-z0-9_.-]{0,24}",
            id in proptest::prelude::any::<u64>(),
            name in "\\PC{0,24}",
            enabled in proptest::prelude::any::<bool>(),
            severity in 0u8..=3,
            dedupe in proptest::option::of("\\PC{0,32}"),
            predicate in "\\PC{0,64}",
            action in 0u8..=2,
            window_ms in proptest::prelude::any::<u32>(),
            max_count in proptest::prelude::any::<u32>(),
            max_exemplars in proptest::prelude::any::<u8>(),
            key in proptest::option::of("\\PC{0,32}"),
        ) {
            let rule = WireRule {
                id, name, enabled, severity, dedupe, predicate,
                action, window_ms, max_count, max_exemplars, key,
            };
            let frames = [
                Frame::RuleUpsert { seq, user: user.clone(), rule: rule.clone() },
                Frame::RuleDelete { seq, user: user.clone(), rule_id: id },
                Frame::RuleList { seq, user },
                Frame::RuleListReply { seq, rules: vec![rule] },
            ];
            for frame in frames {
                let bytes = encode_to_vec(&frame);
                let (decoded, consumed) = decode_frame(&bytes).expect("encode -> decode");
                prop_assert_eq!(decoded, frame);
                prop_assert_eq!(consumed, bytes.len());
            }
        }

        #[test]
        fn bit_flips_never_decode_to_a_different_frame(
            seq in proptest::prelude::any::<u64>(),
            body in "\\PC{0,64}",
            flip_byte in proptest::prelude::any::<u16>(),
            flip_bit in 0u8..8,
        ) {
            let frame = Frame::Submit {
                seq,
                channel: WireChannel::Im,
                user: "user".into(),
                source: "src".into(),
                body,
            };
            let mut bytes = encode_to_vec(&frame);
            let idx = flip_byte as usize % bytes.len();
            bytes[idx] ^= 1 << flip_bit;
            // A flipped bit must either fail to decode or decode back to
            // the exact original (impossible here since we flipped one
            // bit, unless the flip landed in ignored space — there is
            // none). Silently producing a different frame is the bug.
            if let Ok((decoded, _)) = decode_frame(&bytes) {
                prop_assert_eq!(decoded, frame);
            }
        }
    }
}
