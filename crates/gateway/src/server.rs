//! The TCP front door: acceptor thread + worker pool, with admission
//! control and explicit load shedding.
//!
//! Threading model (the tokio shim has no `net`, so this layer is plain
//! `std::net` + threads):
//!
//! * one **acceptor** thread blocks in `accept()` and pushes sockets
//!   onto a bounded hand-off queue — when the queue is full the
//!   connection itself is shed with a best-effort `Nack(QueueFull)`;
//! * a small **worker pool** pops sockets and speaks the frame protocol
//!   for one connection at a time. Reads poll with a short timeout so a
//!   worker notices shutdown promptly, and a connection that goes quiet
//!   mid-frame (slow loris) is closed once `idle_timeout` passes without
//!   a byte — the worker is reclaimed, other connections never wait;
//! * admitted submissions go to the runtime through the bounded
//!   [`IntakeSender`](crate::IntakeSender); the ack is written only
//!   *after* the enqueue succeeds, so an acked alert can no longer be
//!   shed — only process death loses it.
//!
//! Every rejection is counted, never silent: `gateway.shed` (+ reason
//! events), `gateway.decode_err`, `gateway.unknown_user`,
//! `gateway.idle_closed`.

use crate::admission::{RateLimit, TokenBuckets};
use crate::bridge::{IntakeSender, Submission};
use crate::proto::{
    self, Frame, FrameError, Header, NackReason, ProbeStats, WireRule, HEADER_LEN,
};
use crate::rulewire;
use simba_core::subscription::UserId;
use simba_core::Telemetry;
use simba_rules::SharedRuleEngine;
use simba_sim::{SimDuration, SimTime};
use simba_store::SoftStateStore;
use simba_telemetry::{CounterHandle, Event};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Gateway tuning knobs. The defaults suit tests and the CLI; the bench
/// raises the queue sizes.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address, e.g. `"127.0.0.1:0"` for an ephemeral port.
    pub addr: String,
    /// Worker threads (= concurrently served connections).
    pub workers: usize,
    /// Accepted-socket hand-off queue length; beyond it, connections are
    /// shed at accept time.
    pub accept_backlog: usize,
    /// Per-connection cap on submissions admitted but not yet routed.
    pub per_conn_inflight: usize,
    /// Optional per-source token bucket.
    pub rate_limit: Option<RateLimit>,
    /// Close a connection after this long without receiving a byte
    /// (the slow-loris guard; also reaps idle-but-healthy connections,
    /// which clients transparently survive by reconnecting).
    pub idle_timeout: Duration,
    /// How often a blocked read wakes to check idleness and shutdown.
    pub read_poll: Duration,
    /// Largest accepted frame payload.
    pub max_payload: u32,
    /// When set, submissions for users outside this set are nacked
    /// `UnknownUser` at the gate instead of bouncing off the host.
    pub known_users: Option<BTreeSet<String>>,
    /// Retry hint sent with `QueueFull` / `ConnBusy` nacks.
    pub shed_retry_after: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            accept_backlog: 64,
            per_conn_inflight: 256,
            rate_limit: None,
            idle_timeout: Duration::from_secs(5),
            read_poll: Duration::from_millis(25),
            max_payload: proto::DEFAULT_MAX_PAYLOAD,
            known_users: None,
            shed_retry_after: Duration::from_millis(100),
        }
    }
}

/// Cached telemetry handles shared by every worker.
#[derive(Clone)]
struct Counters {
    accepted: CounterHandle,
    buckets_evicted: CounterHandle,
    shed: CounterHandle,
    decode_err: CounterHandle,
    unknown_user: CounterHandle,
    idle_closed: CounterHandle,
    conn_opened: CounterHandle,
    conn_shed: CounterHandle,
}

impl Counters {
    fn new(telemetry: &Telemetry) -> Self {
        let m = telemetry.metrics();
        Counters {
            accepted: m.counter("gateway.accepted"),
            buckets_evicted: m.counter("gateway.buckets_evicted"),
            shed: m.counter("gateway.shed"),
            decode_err: m.counter("gateway.decode_err"),
            unknown_user: m.counter("gateway.unknown_user"),
            idle_closed: m.counter("gateway.idle_closed"),
            conn_opened: m.counter("gateway.conn_opened"),
            conn_shed: m.counter("gateway.conn_shed"),
        }
    }
}

/// Everything a worker needs, bundled for cheap cloning.
struct Shared {
    config: GatewayConfig,
    intake: IntakeSender,
    telemetry: Telemetry,
    counters: Counters,
    buckets: TokenBuckets,
    stop: AtomicBool,
    epoch: Instant,
    /// Soft-state store for `StateUpdate` / `StateQuery` frames; absent
    /// gateways nack those frames `Unsupported`.
    store: Option<SoftStateStore>,
    /// Rules engine for `RuleUpsert` / `RuleDelete` / `RuleList` frames;
    /// absent gateways nack those frames `Unsupported`.
    rules: Option<SharedRuleEngine>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Gateway time as a [`SimTime`] for store operations. Anchored at
    /// bind, like the host clock is anchored at runtime start — within a
    /// process the two timelines drift only by the bind delta, which is
    /// negligible against fact TTLs (seconds).
    fn sim_now(&self) -> SimTime {
        SimTime::from_millis(self.now_ms())
    }

    fn stats(&self) -> ProbeStats {
        ProbeStats {
            accepted: self.counters.accepted.get(),
            shed: self.counters.shed.get(),
            decode_err: self.counters.decode_err.get(),
            queue_depth: self.intake.depth() as u32,
            queue_capacity: self.intake.capacity() as u32,
        }
    }
}

/// The running gateway: acceptor + workers. Dropping it without calling
/// [`GatewayServer::shutdown`] leaves the threads running for the
/// process lifetime; shut it down explicitly.
pub struct GatewayServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for GatewayServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatewayServer")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl GatewayServer {
    /// Binds the listener and spawns the acceptor and worker threads.
    /// Admitted submissions flow out through `intake`; keep its receiver
    /// draining via [`crate::pump_into_host`] or the queue will fill and
    /// the gateway will shed.
    pub fn bind(
        config: GatewayConfig,
        intake: IntakeSender,
        telemetry: Telemetry,
    ) -> std::io::Result<GatewayServer> {
        GatewayServer::bind_with_store(config, intake, telemetry, None)
    }

    /// [`GatewayServer::bind`] plus a soft-state store: `StateUpdate`
    /// frames publish facts into it and `StateQuery` frames read them
    /// back. Share the store with the [`MabHost`](simba_runtime::MabHost)
    /// (see its `with_store`) so gateway-published presence facts steer
    /// delivery routing.
    pub fn bind_with_store(
        config: GatewayConfig,
        intake: IntakeSender,
        telemetry: Telemetry,
        store: Option<SoftStateStore>,
    ) -> std::io::Result<GatewayServer> {
        GatewayServer::bind_with_rules(config, intake, telemetry, store, None)
    }

    /// The full bind: optional soft-state store *and* optional rules
    /// engine. `Rule*` frames mutate and read the engine (which commits
    /// rules to its own log before replying); share the same engine with
    /// the host so submissions are evaluated against the rules clients
    /// manage here.
    pub fn bind_with_rules(
        config: GatewayConfig,
        intake: IntakeSender,
        telemetry: Telemetry,
        store: Option<SoftStateStore>,
        rules: Option<SharedRuleEngine>,
    ) -> std::io::Result<GatewayServer> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let backlog = config.accept_backlog.max(1);
        let shared = Arc::new(Shared {
            buckets: TokenBuckets::new(config.rate_limit),
            counters: Counters::new(&telemetry),
            config,
            intake,
            telemetry,
            stop: AtomicBool::new(false),
            epoch: Instant::now(),
            store,
            rules,
        });

        let (socket_tx, socket_rx) = std::sync::mpsc::sync_channel::<TcpStream>(backlog);
        let socket_rx = Arc::new(Mutex::new(socket_rx));
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&socket_rx);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("gw-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gw-acceptor".to_string())
                .spawn(move || acceptor_loop(&shared, &listener, &socket_tx))?
        };

        Ok(GatewayServer {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (with the real port when `addr` asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Health counters, as a probe frame would report them.
    pub fn stats(&self) -> ProbeStats {
        self.shared.stats()
    }

    /// Stops accepting, lets workers finish their current frame (or hit
    /// the read poll), and joins every thread. Worker-held
    /// [`IntakeSender`](crate::IntakeSender) clones drop here, which is
    /// what lets [`crate::pump_into_host`] finish its drain.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn acceptor_loop(shared: &Shared, listener: &TcpListener, socket_tx: &SyncSender<TcpStream>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) if shared.stop.load(Ordering::SeqCst) => break,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            break; // the wake-up connection (or a late client) — drop it
        }
        match socket_tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => shed_connection(shared, stream),
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping socket_tx (by returning) ends the worker loops once the
    // queued sockets are served.
}

/// Best-effort "busy, go away" for a connection there is no worker for.
fn shed_connection(shared: &Shared, mut stream: TcpStream) {
    shared.counters.conn_shed.incr();
    if shared.telemetry.enabled() {
        shared
            .telemetry
            .emit(Event::new("gateway.conn_shed", shared.now_ms()));
    }
    let retry = shared.config.shed_retry_after.as_millis() as u32;
    let nack = Frame::Nack { seq: 0, reason: NackReason::QueueFull, retry_after_ms: retry };
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = stream.write_all(&proto::encode_to_vec(&nack));
}

fn worker_loop(shared: &Shared, socket_rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        // Hold the lock only for the dequeue, not while serving. A worker
        // that panicked mid-dequeue must not poison the others idle.
        let stream = {
            socket_rx
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                // simba-analyze: allow(concurrency.blocking-under-guard): std's Receiver is !Sync — the mutex IS the handoff, and idle workers are meant to block here
                .recv()
        };
        match stream {
            Ok(stream) => serve_connection(shared, stream),
            Err(_) => break, // acceptor gone and queue drained
        }
    }
}

/// Outcome of trying to read an exact number of bytes.
enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// The peer closed; `mid_frame` when bytes of this frame were lost.
    Eof { mid_frame: bool },
    /// No byte arrived for `idle_timeout` — slow-loris / dead peer.
    Idle { mid_frame: bool },
    /// The server is shutting down.
    Stopped,
    /// Hard I/O error.
    Failed,
}

/// Reads exactly `buf.len()` bytes, polling so idleness and shutdown are
/// noticed. `std`'s `read_exact` is unusable here: a read timeout makes
/// it discard whatever prefix already arrived.
fn read_full(shared: &Shared, stream: &mut TcpStream, buf: &mut [u8]) -> ReadOutcome {
    let mut filled = 0usize;
    let mut last_byte = Instant::now();
    while filled < buf.len() {
        if shared.stop.load(Ordering::SeqCst) {
            return ReadOutcome::Stopped;
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return ReadOutcome::Eof { mid_frame: filled > 0 },
            Ok(n) => {
                filled += n;
                last_byte = Instant::now();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if last_byte.elapsed() >= shared.config.idle_timeout {
                    return ReadOutcome::Idle { mid_frame: filled > 0 };
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Failed,
        }
    }
    ReadOutcome::Full
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    shared.counters.conn_opened.incr();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.config.read_poll));
    // A peer that stops *reading* must not pin the worker either.
    let _ = stream.set_write_timeout(Some(shared.config.idle_timeout));

    let slot = Arc::new(AtomicUsize::new(0));
    let mut header_buf = [0u8; HEADER_LEN];
    let mut payload_buf: Vec<u8> = Vec::new();

    loop {
        match read_full(shared, &mut stream, &mut header_buf) {
            ReadOutcome::Full => {}
            ReadOutcome::Eof { mid_frame: false } => return, // clean close
            ReadOutcome::Eof { mid_frame: true } => {
                note_decode_err(shared, &FrameError::Malformed("eof inside header"));
                return;
            }
            ReadOutcome::Idle { mid_frame } => return close_idle(shared, mid_frame),
            ReadOutcome::Stopped => return nack_shutdown(shared, &mut stream),
            ReadOutcome::Failed => return,
        }
        let header = match Header::parse(&header_buf, shared.config.max_payload) {
            Ok(header) => header,
            Err(e) => {
                note_decode_err(shared, &e);
                // The byte stream is desynchronised; nack and drop it.
                let _ = write_frame(&mut stream, &malformed_nack());
                return;
            }
        };
        payload_buf.resize(header.payload_len as usize, 0);
        match read_full(shared, &mut stream, &mut payload_buf) {
            ReadOutcome::Full => {}
            ReadOutcome::Eof { .. } => {
                note_decode_err(shared, &FrameError::Malformed("eof inside payload"));
                return;
            }
            ReadOutcome::Idle { mid_frame } => return close_idle(shared, mid_frame),
            ReadOutcome::Stopped => return nack_shutdown(shared, &mut stream),
            ReadOutcome::Failed => return,
        }
        let frame = match proto::decode_payload(&header, &payload_buf) {
            Ok(frame) => frame,
            Err(e) => {
                note_decode_err(shared, &e);
                let _ = write_frame(&mut stream, &malformed_nack());
                return;
            }
        };
        let reply = match frame {
            Frame::Submit { seq, channel, user, source, body } => {
                admit(shared, &slot, seq, channel, user, source, body)
            }
            Frame::Probe { nonce } => Frame::ProbeReply { nonce, stats: shared.stats() },
            Frame::StateUpdate { seq, scope, key, value, ttl_ms, source } => {
                state_update(shared, seq, &scope, &key, value, ttl_ms, source)
            }
            Frame::StateQuery { seq, scope, key } => state_query(shared, seq, &scope, &key),
            Frame::RuleUpsert { seq, user, rule } => rule_upsert(shared, seq, &user, &rule),
            Frame::RuleDelete { seq, user, rule_id } => rule_delete(shared, seq, &user, rule_id),
            Frame::RuleList { seq, user } => rule_list(shared, seq, &user),
            Frame::Ack { .. } | Frame::Nack { .. } | Frame::ProbeReply { .. }
            | Frame::StateReply { .. } | Frame::RuleListReply { .. } => {
                // Server-to-client frames arriving at the server: a
                // protocol violation; treat like a decode failure.
                note_decode_err(shared, &FrameError::Malformed("client sent a server frame"));
                let _ = write_frame(&mut stream, &malformed_nack());
                return;
            }
        };
        if write_frame(&mut stream, &reply).is_err() {
            return;
        }
    }
}

/// The admission pipeline for one submission: user gate → per-connection
/// in-flight gate → per-source token bucket → bounded intake queue.
fn admit(
    shared: &Shared,
    slot: &Arc<AtomicUsize>,
    seq: u64,
    channel: crate::proto::WireChannel,
    user: String,
    source: String,
    body: String,
) -> Frame {
    if let Some(known) = &shared.config.known_users {
        if !known.contains(&user) {
            shared.counters.unknown_user.incr();
            if shared.telemetry.enabled() {
                shared.telemetry.emit(
                    Event::new("gateway.unknown_user", shared.now_ms()).with("user", user),
                );
            }
            return Frame::Nack { seq, reason: NackReason::UnknownUser, retry_after_ms: 0 };
        }
    }
    let retry_after = shared.config.shed_retry_after.as_millis() as u32;
    if slot.load(Ordering::Relaxed) >= shared.config.per_conn_inflight {
        return shed(shared, seq, NackReason::ConnBusy, retry_after, &source);
    }
    let admitted = shared.buckets.try_take(&source);
    // Surface any buckets the amortized idle sweep just dropped, on
    // whichever worker's take triggered it.
    let evicted = shared.buckets.take_evicted();
    if evicted > 0 {
        shared.counters.buckets_evicted.add(evicted);
    }
    if let Err(wait_ms) = admitted {
        return shed(shared, seq, NackReason::RateLimited, wait_ms, &source);
    }
    let submission = Submission {
        seq,
        channel,
        user: UserId::new(user),
        source,
        body,
        slot: Arc::clone(slot),
    };
    // Reserve the slot before enqueueing: the pump may route (and
    // release) the submission before try_submit even returns.
    slot.fetch_add(1, Ordering::Relaxed);
    match shared.intake.try_submit(submission) {
        Ok(()) => {
            shared.counters.accepted.incr();
            Frame::Ack { seq }
        }
        Err(submission) => {
            slot.fetch_sub(1, Ordering::Relaxed);
            shed(shared, seq, NackReason::QueueFull, retry_after, &submission.source)
        }
    }
}

/// Publishes a fact into the gateway's store (nacking `Unsupported`
/// when the gateway runs without one). Publication is unconditional —
/// soft state is overwrite-on-refresh, so there is no admission pipeline
/// beyond the store's own per-scope capacity shedding.
fn state_update(
    shared: &Shared,
    seq: u64,
    scope: &str,
    key: &str,
    value: String,
    ttl_ms: u32,
    source: String,
) -> Frame {
    let Some(store) = &shared.store else {
        return Frame::Nack { seq, reason: NackReason::Unsupported, retry_after_ms: 0 };
    };
    store.put(
        scope,
        key,
        value,
        SimDuration::from_millis(u64::from(ttl_ms)),
        source,
        shared.sim_now(),
    );
    // simba-analyze: allow(durability.ack-before-commit): soft state (§4.2.2) — facts expire and are republished by their source; there is nothing durable to commit
    Frame::Ack { seq }
}

/// Reads a fact back. A missing or expired fact is `found: false`, not
/// an error — absence is a normal answer for soft state.
fn state_query(shared: &Shared, seq: u64, scope: &str, key: &str) -> Frame {
    let Some(store) = &shared.store else {
        return Frame::Nack { seq, reason: NackReason::Unsupported, retry_after_ms: 0 };
    };
    let now = shared.sim_now();
    match store.get(scope, key, now) {
        Some(fact) => Frame::StateReply {
            seq,
            found: true,
            generation: fact.generation,
            ttl_remaining_ms: fact.ttl_remaining(now).as_millis().min(u64::from(u32::MAX)) as u32,
            value: fact.value,
        },
        None => Frame::StateReply {
            seq,
            found: false,
            value: String::new(),
            generation: 0,
            ttl_remaining_ms: 0,
        },
    }
}

/// Creates or replaces a user rule (nacking `Unsupported` when the
/// gateway runs without a rules engine). The engine commits the rule to
/// its log before returning, so the reply — which carries the stored
/// rule and its assigned id — only describes durable state. Engine
/// refusals (bad predicate, unknown id, per-user bound) nack `Rejected`,
/// which clients treat as permanent.
fn rule_upsert(shared: &Shared, seq: u64, user: &str, rule: &WireRule) -> Frame {
    let Some(engine) = &shared.rules else {
        return Frame::Nack { seq, reason: NackReason::Unsupported, retry_after_ms: 0 };
    };
    let id = (rule.id != 0).then_some(rule.id);
    match engine.upsert(user, id, rulewire::spec_of_wire(rule)) {
        Ok(stored) => {
            Frame::RuleListReply { seq, rules: vec![rulewire::wire_of_rule(&stored)] }
        }
        Err(_) => Frame::Nack { seq, reason: NackReason::Rejected, retry_after_ms: 0 },
    }
}

/// Deletes a user rule. Idempotent: deleting an id that does not exist
/// still acks, so a client retrying across a reconnect cannot fail on
/// its own earlier success.
fn rule_delete(shared: &Shared, seq: u64, user: &str, rule_id: u64) -> Frame {
    let Some(engine) = &shared.rules else {
        return Frame::Nack { seq, reason: NackReason::Unsupported, retry_after_ms: 0 };
    };
    match engine.delete(user, rule_id) {
        // simba-analyze: allow(durability.ack-before-commit): the engine group-commits the deletion to the rules log before delete() returns
        Ok(_) => Frame::Ack { seq },
        Err(_) => Frame::Nack { seq, reason: NackReason::Rejected, retry_after_ms: 0 },
    }
}

/// Lists a user's rules, ordered by id. An empty list is a normal
/// answer, not an error.
fn rule_list(shared: &Shared, seq: u64, user: &str) -> Frame {
    let Some(engine) = &shared.rules else {
        return Frame::Nack { seq, reason: NackReason::Unsupported, retry_after_ms: 0 };
    };
    let rules = engine.list(user).iter().map(rulewire::wire_of_rule).collect();
    Frame::RuleListReply { seq, rules }
}

fn shed(shared: &Shared, seq: u64, reason: NackReason, retry_after_ms: u32, source: &str) -> Frame {
    shared.counters.shed.incr();
    if shared.telemetry.enabled() {
        shared.telemetry.emit(
            Event::new("gateway.shed", shared.now_ms())
                .with("reason", reason.to_string())
                .with("source", source.to_string()),
        );
    }
    Frame::Nack { seq, reason, retry_after_ms }
}

fn note_decode_err(shared: &Shared, error: &FrameError) {
    shared.counters.decode_err.incr();
    if shared.telemetry.enabled() {
        shared.telemetry.emit(
            Event::new("gateway.decode_err", shared.now_ms()).with("error", error.to_string()),
        );
    }
}

fn close_idle(shared: &Shared, mid_frame: bool) {
    shared.counters.idle_closed.incr();
    if shared.telemetry.enabled() {
        shared.telemetry.emit(
            Event::new("gateway.idle_closed", shared.now_ms()).with("mid_frame", mid_frame),
        );
    }
}

fn nack_shutdown(shared: &Shared, stream: &mut TcpStream) {
    let retry = shared.config.shed_retry_after.as_millis() as u32;
    let _ = write_frame(
        stream,
        &Frame::Nack { seq: 0, reason: NackReason::Shutdown, retry_after_ms: retry },
    );
}

fn malformed_nack() -> Frame {
    Frame::Nack { seq: 0, reason: NackReason::Malformed, retry_after_ms: 0 }
}

fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    stream.write_all(&proto::encode_to_vec(frame))
}
