//! Admission control: per-source token buckets.
//!
//! The gateway sheds load at three gates (cf. the SEDA-style staged
//! admission control discussed in `PAPERS.md`): a per-connection
//! in-flight cap, a per-source token bucket (this module), and the
//! bounded global intake queue. Every gate rejects with an explicit
//! nack-plus-retry-after instead of stalling the connection, so overload
//! degrades throughput visibly rather than latency silently.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Token-bucket parameters applied independently to every alert source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Bucket capacity: the largest burst a source may submit at once.
    pub burst: u32,
    /// Sustained refill rate in tokens (alerts) per second.
    pub per_sec: u32,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refreshed: Instant,
}

/// Per-source token buckets behind one lock (sources are few; the
/// critical section is a handful of float ops).
#[derive(Debug)]
pub struct TokenBuckets {
    limit: Option<RateLimit>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TokenBuckets {
    /// Buckets enforcing `limit`; `None` admits everything.
    pub fn new(limit: Option<RateLimit>) -> Self {
        TokenBuckets { limit, buckets: Mutex::new(HashMap::new()) }
    }

    /// Takes one token for `source`, or reports how many milliseconds
    /// until one will be available.
    pub fn try_take(&self, source: &str) -> Result<(), u32> {
        self.try_take_at(source, Instant::now())
    }

    /// [`TokenBuckets::try_take`] with an injected clock, for tests.
    pub fn try_take_at(&self, source: &str, now: Instant) -> Result<(), u32> {
        let Some(limit) = self.limit else { return Ok(()) };
        if limit.per_sec == 0 {
            // Rate of zero means "statically refuse": retry hint of 1 s.
            return Err(1_000);
        }
        // Rate state is self-healing (tokens refill from wall time), so a
        // poisoned map is safe to keep using.
        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let bucket = buckets.entry(source.to_string()).or_insert_with(|| Bucket {
            tokens: f64::from(limit.burst),
            refreshed: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refreshed).as_secs_f64();
        bucket.tokens =
            (bucket.tokens + elapsed * f64::from(limit.per_sec)).min(f64::from(limit.burst));
        bucket.refreshed = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            let wait_ms = (deficit * 1_000.0 / f64::from(limit.per_sec)).ceil();
            Err(wait_ms.max(1.0) as u32)
        }
    }

    /// Number of sources currently tracked.
    pub fn tracked_sources(&self) -> usize {
        self.buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_buckets_admit_everything() {
        let buckets = TokenBuckets::new(None);
        for _ in 0..10_000 {
            assert_eq!(buckets.try_take("srv"), Ok(()));
        }
        assert_eq!(buckets.tracked_sources(), 0);
    }

    #[test]
    fn burst_then_refill() {
        let buckets = TokenBuckets::new(Some(RateLimit { burst: 3, per_sec: 10 }));
        let t0 = Instant::now();
        // The full burst is admitted...
        for _ in 0..3 {
            assert_eq!(buckets.try_take_at("gw", t0), Ok(()));
        }
        // ...then the bucket is dry, with a ~100 ms retry hint (10/s).
        let wait = buckets.try_take_at("gw", t0).unwrap_err();
        assert!((50..=150).contains(&wait), "retry hint {wait} ms");
        // After 100 ms one token is back.
        let t1 = t0 + Duration::from_millis(100);
        assert_eq!(buckets.try_take_at("gw", t1), Ok(()));
        assert!(buckets.try_take_at("gw", t1).is_err());
    }

    #[test]
    fn sources_are_limited_independently() {
        let buckets = TokenBuckets::new(Some(RateLimit { burst: 1, per_sec: 1 }));
        let t0 = Instant::now();
        assert_eq!(buckets.try_take_at("a", t0), Ok(()));
        assert!(buckets.try_take_at("a", t0).is_err());
        // A different source has its own bucket.
        assert_eq!(buckets.try_take_at("b", t0), Ok(()));
        assert_eq!(buckets.tracked_sources(), 2);
    }

    #[test]
    fn zero_rate_statically_refuses() {
        let buckets = TokenBuckets::new(Some(RateLimit { burst: 5, per_sec: 0 }));
        assert_eq!(buckets.try_take("gw"), Err(1_000));
    }

    #[test]
    fn refill_caps_at_burst() {
        let buckets = TokenBuckets::new(Some(RateLimit { burst: 2, per_sec: 100 }));
        let t0 = Instant::now();
        assert_eq!(buckets.try_take_at("gw", t0), Ok(()));
        // A long quiet period refills to the cap, not beyond it.
        let t1 = t0 + Duration::from_secs(60);
        assert_eq!(buckets.try_take_at("gw", t1), Ok(()));
        assert_eq!(buckets.try_take_at("gw", t1), Ok(()));
        assert!(buckets.try_take_at("gw", t1).is_err());
    }
}
