//! Admission control: per-source token buckets.
//!
//! The gateway sheds load at three gates (cf. the SEDA-style staged
//! admission control discussed in `PAPERS.md`): a per-connection
//! in-flight cap, a per-source token bucket (this module), and the
//! bounded global intake queue. Every gate rejects with an explicit
//! nack-plus-retry-after instead of stalling the connection, so overload
//! degrades throughput visibly rather than latency silently.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How long a bucket may sit at full burst before the sweep drops it.
/// Eviction is lossless at that point — a recreated bucket starts at
/// full burst, exactly the state the evicted one had — so the window
/// only bounds how much memory source churn can pin, not behaviour.
pub const DEFAULT_IDLE_EVICT_WINDOW: Duration = Duration::from_secs(60);

/// Token-bucket parameters applied independently to every alert source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Bucket capacity: the largest burst a source may submit at once.
    pub burst: u32,
    /// Sustained refill rate in tokens (alerts) per second.
    pub per_sec: u32,
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refreshed: Instant,
}

#[derive(Debug)]
struct BucketMap {
    buckets: HashMap<String, Bucket>,
    /// When the idle sweep last ran; `None` until the first take.
    last_sweep: Option<Instant>,
}

/// Per-source token buckets behind one lock (sources are few; the
/// critical section is a handful of float ops).
///
/// The map is bounded under source churn: once a bucket has been idle
/// long enough to refill to full burst *and* a further idle window has
/// passed, an amortized sweep (at most once per window, piggybacked on
/// a take) evicts it. A source that returns later gets a fresh
/// full-burst bucket — indistinguishable from the evicted one.
#[derive(Debug)]
pub struct TokenBuckets {
    limit: Option<RateLimit>,
    idle_window: Duration,
    /// Buckets dropped by the sweep since the last [`TokenBuckets::take_evicted`].
    evicted: AtomicU64,
    buckets: Mutex<BucketMap>,
}

impl TokenBuckets {
    /// Buckets enforcing `limit`; `None` admits everything. Idle buckets
    /// are evicted after [`DEFAULT_IDLE_EVICT_WINDOW`].
    pub fn new(limit: Option<RateLimit>) -> Self {
        TokenBuckets::with_idle_window(limit, DEFAULT_IDLE_EVICT_WINDOW)
    }

    /// [`TokenBuckets::new`] with an explicit idle-eviction window, for
    /// tests and tuned deployments.
    pub fn with_idle_window(limit: Option<RateLimit>, idle_window: Duration) -> Self {
        TokenBuckets {
            limit,
            idle_window,
            evicted: AtomicU64::new(0),
            buckets: Mutex::new(BucketMap { buckets: HashMap::new(), last_sweep: None }),
        }
    }

    /// Takes one token for `source`, or reports how many milliseconds
    /// until one will be available.
    pub fn try_take(&self, source: &str) -> Result<(), u32> {
        self.try_take_at(source, Instant::now())
    }

    /// [`TokenBuckets::try_take`] with an injected clock, for tests.
    pub fn try_take_at(&self, source: &str, now: Instant) -> Result<(), u32> {
        let Some(limit) = self.limit else { return Ok(()) };
        if limit.per_sec == 0 {
            // Rate of zero means "statically refuse": retry hint of 1 s.
            return Err(1_000);
        }
        // Rate state is self-healing (tokens refill from wall time), so a
        // poisoned map is safe to keep using.
        let mut map = self
            .buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Amortized idle sweep: at most once per window, so steady
        // traffic pays O(map/window) per take, not O(map).
        let due = match map.last_sweep {
            None => {
                map.last_sweep = Some(now);
                false
            }
            Some(last) => now.saturating_duration_since(last) >= self.idle_window,
        };
        if due {
            map.last_sweep = Some(now);
            self.sweep(&mut map, now, limit);
        }
        let bucket = map.buckets.entry(source.to_string()).or_insert_with(|| Bucket {
            tokens: f64::from(limit.burst),
            refreshed: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refreshed).as_secs_f64();
        bucket.tokens =
            (bucket.tokens + elapsed * f64::from(limit.per_sec)).min(f64::from(limit.burst));
        bucket.refreshed = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            let wait_ms = (deficit * 1_000.0 / f64::from(limit.per_sec)).ceil();
            Err(wait_ms.max(1.0) as u32)
        }
    }

    /// Drops every bucket whose source has been idle past the point of
    /// refilling to full burst plus the idle window. `per_sec >= 1` here
    /// (zero-rate limits never reach the map).
    fn sweep(&self, map: &mut BucketMap, now: Instant, limit: RateLimit) {
        let window = self.idle_window.as_secs_f64();
        let before = map.buckets.len();
        map.buckets.retain(|_, bucket| {
            let idle = now.saturating_duration_since(bucket.refreshed).as_secs_f64();
            let to_full =
                (f64::from(limit.burst) - bucket.tokens).max(0.0) / f64::from(limit.per_sec);
            idle < to_full + window
        });
        let evicted = (before - map.buckets.len()) as u64;
        if evicted > 0 {
            self.evicted.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Number of sources currently tracked.
    pub fn tracked_sources(&self) -> usize {
        self.buckets
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .buckets
            .len()
    }

    /// Buckets evicted since the last call (for the
    /// `gateway.buckets_evicted` counter); resets the tally.
    pub fn take_evicted(&self) -> u64 {
        self.evicted.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_buckets_admit_everything() {
        let buckets = TokenBuckets::new(None);
        for _ in 0..10_000 {
            assert_eq!(buckets.try_take("srv"), Ok(()));
        }
        assert_eq!(buckets.tracked_sources(), 0);
    }

    #[test]
    fn burst_then_refill() {
        let buckets = TokenBuckets::new(Some(RateLimit { burst: 3, per_sec: 10 }));
        let t0 = Instant::now();
        // The full burst is admitted...
        for _ in 0..3 {
            assert_eq!(buckets.try_take_at("gw", t0), Ok(()));
        }
        // ...then the bucket is dry, with a ~100 ms retry hint (10/s).
        let wait = buckets.try_take_at("gw", t0).unwrap_err();
        assert!((50..=150).contains(&wait), "retry hint {wait} ms");
        // After 100 ms one token is back.
        let t1 = t0 + Duration::from_millis(100);
        assert_eq!(buckets.try_take_at("gw", t1), Ok(()));
        assert!(buckets.try_take_at("gw", t1).is_err());
    }

    #[test]
    fn sources_are_limited_independently() {
        let buckets = TokenBuckets::new(Some(RateLimit { burst: 1, per_sec: 1 }));
        let t0 = Instant::now();
        assert_eq!(buckets.try_take_at("a", t0), Ok(()));
        assert!(buckets.try_take_at("a", t0).is_err());
        // A different source has its own bucket.
        assert_eq!(buckets.try_take_at("b", t0), Ok(()));
        assert_eq!(buckets.tracked_sources(), 2);
    }

    #[test]
    fn zero_rate_statically_refuses() {
        let buckets = TokenBuckets::new(Some(RateLimit { burst: 5, per_sec: 0 }));
        assert_eq!(buckets.try_take("gw"), Err(1_000));
    }

    #[test]
    fn source_churn_keeps_the_map_bounded() {
        // The regression this pins: before eviction, every source name
        // ever seen stayed in the map forever, so a stream of one-shot
        // sources (churned connection IDs, probing scanners) grew the
        // gateway's memory without bound.
        let limit = RateLimit { burst: 4, per_sec: 2 };
        let buckets = TokenBuckets::with_idle_window(Some(limit), Duration::from_secs(1));
        let t0 = Instant::now();
        // 10 k distinct sources, one submission each, 10 ms apart.
        for i in 0..10_000u32 {
            let now = t0 + Duration::from_millis(u64::from(i) * 10);
            assert_eq!(buckets.try_take_at(&format!("src-{i}"), now), Ok(()));
        }
        // A bucket lives at most time_to_full (a burst-4 bucket one
        // token down refills in 0.5 s) + the 1 s idle window + up to one
        // window of sweep lag: ≤ 2.5 s ≈ 250 sources at this pace. Far
        // below 10 000 — the map tracks recent sources, not history.
        let tracked = buckets.tracked_sources();
        assert!(tracked <= 300, "map should stay bounded, tracked {tracked}");
        assert_eq!(buckets.take_evicted() as usize + tracked, 10_000);
        assert_eq!(buckets.take_evicted(), 0, "take_evicted drains the tally");
    }

    #[test]
    fn eviction_is_lossless_at_full_burst() {
        let limit = RateLimit { burst: 2, per_sec: 1 };
        let buckets = TokenBuckets::with_idle_window(Some(limit), Duration::from_secs(1));
        let t0 = Instant::now();
        assert_eq!(buckets.try_take_at("gw", t0), Ok(()));
        assert_eq!(buckets.try_take_at("gw", t0), Ok(()));
        assert!(buckets.try_take_at("gw", t0).is_err(), "burst spent");
        // 2 s refills both tokens, +1 s idle window passes: the sweep
        // (triggered by an unrelated take) may drop the bucket.
        let t1 = t0 + Duration::from_secs(4);
        assert_eq!(buckets.try_take_at("other", t1), Ok(()));
        assert_eq!(buckets.tracked_sources(), 1, "idle full bucket evicted");
        assert_eq!(buckets.take_evicted(), 1);
        // The source returns: fresh bucket at full burst — exactly what
        // the evicted one had refilled to. No behaviour change.
        assert_eq!(buckets.try_take_at("gw", t1), Ok(()));
        assert_eq!(buckets.try_take_at("gw", t1), Ok(()));
        assert!(buckets.try_take_at("gw", t1).is_err());
    }

    #[test]
    fn drained_buckets_survive_the_idle_window_until_refilled() {
        // A drained bucket still encodes rate-limit debt; it must not be
        // evicted after merely the idle window, or a throttled source
        // could reset its own limit by pausing. burst 10 at 1/s: 10 s to
        // refill, so at window + 2 s the bucket must still be tracked.
        let limit = RateLimit { burst: 10, per_sec: 1 };
        let buckets = TokenBuckets::with_idle_window(Some(limit), Duration::from_secs(1));
        let t0 = Instant::now();
        for _ in 0..10 {
            assert_eq!(buckets.try_take_at("gw", t0), Ok(()));
        }
        let t1 = t0 + Duration::from_secs(3);
        assert_eq!(buckets.try_take_at("other", t1), Ok(()));
        assert_eq!(buckets.tracked_sources(), 2, "drained bucket retained");
        assert_eq!(buckets.take_evicted(), 0);
        // Three tokens refilled by t1; the debt is intact.
        for _ in 0..3 {
            assert_eq!(buckets.try_take_at("gw", t1), Ok(()));
        }
        assert!(buckets.try_take_at("gw", t1).is_err());
    }

    #[test]
    fn refill_caps_at_burst() {
        let buckets = TokenBuckets::new(Some(RateLimit { burst: 2, per_sec: 100 }));
        let t0 = Instant::now();
        assert_eq!(buckets.try_take_at("gw", t0), Ok(()));
        // A long quiet period refills to the cap, not beyond it.
        let t1 = t0 + Duration::from_secs(60);
        assert_eq!(buckets.try_take_at("gw", t1), Ok(()));
        assert_eq!(buckets.try_take_at("gw", t1), Ok(()));
        assert!(buckets.try_take_at("gw", t1).is_err());
    }
}
