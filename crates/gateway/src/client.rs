//! `GatewayClient` — a blocking client for the gateway protocol with
//! reconnect and bounded retry.
//!
//! The client is deliberately simple (one request in flight, blocking
//! I/O): alert *sources* in the paper are gateways and proxies that can
//! afford a synchronous submit path, and the dependability burden sits
//! server-side. On an I/O error the client reconnects (bounded attempts,
//! fixed backoff) and **resends** the unanswered submission — delivery is
//! therefore at-least-once: a submission whose connection died between
//! the server's admit and the client reading the ack may be duplicated
//! on retry. SIMBA's user-side duplicate detection (paper §4.2.1, the
//! origin-timestamp dedup key) exists for exactly this class of
//! transport retry.

use crate::proto::{
    self, Frame, FrameError, Header, NackReason, ProbeStats, WireChannel, WireRule, HEADER_LEN,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client tuning knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connection (and per-request resend) attempts before giving up.
    pub max_attempts: u32,
    /// Pause between attempts.
    pub retry_backoff: Duration,
    /// Read/write timeout for a single request/response exchange.
    pub io_timeout: Duration,
    /// Largest reply payload accepted.
    pub max_payload: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_attempts: 4,
            retry_backoff: Duration::from_millis(25),
            io_timeout: Duration::from_secs(2),
            max_payload: proto::DEFAULT_MAX_PAYLOAD,
        }
    }
}

/// Why a client call failed for good (after its bounded retries).
#[derive(Debug)]
pub enum ClientError {
    /// Could not (re)establish the connection.
    Connect(std::io::Error),
    /// The exchange failed on an established connection.
    Io(std::io::Error),
    /// The server's reply failed to decode.
    Frame(FrameError),
    /// The server replied with an unexpected frame.
    Protocol(&'static str),
    /// The gateway nacked `Unsupported`: it lacks the subsystem this
    /// request needs (no soft-state store, no rules engine). Permanent —
    /// the client never retries it, and neither should callers.
    Unsupported(&'static str),
    /// The gateway nacked `Rejected`: the request decoded but the rules
    /// engine refused it (invalid predicate, unknown rule id, per-user
    /// bound). Permanent — resending the identical request cannot
    /// succeed.
    Rejected(&'static str),
}

impl ClientError {
    /// True for errors retrying cannot fix: the server understood the
    /// request and refused it for good.
    pub fn is_permanent(&self) -> bool {
        matches!(self, ClientError::Unsupported(_) | ClientError::Rejected(_))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect: {e}"),
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Frame(e) => write!(f, "frame: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol: {what}"),
            ClientError::Unsupported(what) => {
                write!(f, "unsupported by this gateway (permanent): {what}")
            }
            ClientError::Rejected(what) => write!(f, "rejected (permanent): {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Server verdict on one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitResult {
    /// Admitted: the alert is in the intake queue and will be routed.
    Accepted,
    /// Refused, with the reason and (for shed reasons) a back-off hint.
    Rejected {
        /// Why the gateway refused.
        reason: NackReason,
        /// Suggested back-off before retrying.
        retry_after_ms: u32,
    },
}

/// A fact read back from the gateway's soft-state store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateFact {
    /// The stored value.
    pub value: String,
    /// Store-wide monotone publication counter.
    pub generation: u64,
    /// Milliseconds until the fact expires (as of the read).
    pub ttl_remaining_ms: u32,
}

/// A connection to a gateway, reconnecting as needed.
#[derive(Debug)]
pub struct GatewayClient {
    addr: String,
    config: ClientConfig,
    stream: Option<TcpStream>,
    seq: u64,
    /// Reconnections performed so far (visible for loadgen accounting).
    pub reconnects: u64,
}

impl GatewayClient {
    /// Creates the client and eagerly dials `addr` (with bounded retry).
    pub fn connect(addr: impl Into<String>, config: ClientConfig) -> Result<Self, ClientError> {
        let mut client = GatewayClient {
            addr: addr.into(),
            config,
            stream: None,
            seq: 0,
            reconnects: 0,
        };
        client.ensure_connected()?;
        Ok(client)
    }

    /// Submits one alert, reconnecting and resending on connection
    /// failure (at-least-once; see the module docs).
    pub fn submit(
        &mut self,
        channel: WireChannel,
        user: &str,
        source: &str,
        body: &str,
    ) -> Result<SubmitResult, ClientError> {
        self.seq += 1;
        let seq = self.seq;
        let request = Frame::Submit {
            seq,
            channel,
            user: user.to_string(),
            source: source.to_string(),
            body: body.to_string(),
        };
        match self.exchange_with_retry(&request, "alert submission")? {
            Frame::Ack { seq: got } if got == seq => Ok(SubmitResult::Accepted),
            Frame::Nack { seq: got, reason, retry_after_ms } if got == seq || got == 0 => {
                Ok(SubmitResult::Rejected { reason, retry_after_ms })
            }
            _ => Err(ClientError::Protocol("reply did not match the submission")),
        }
    }

    /// Asks the gateway for its health counters.
    pub fn probe(&mut self) -> Result<ProbeStats, ClientError> {
        self.seq += 1;
        let nonce = self.seq;
        match self.exchange_with_retry(&Frame::Probe { nonce }, "probe")? {
            Frame::ProbeReply { nonce: got, stats } if got == nonce => Ok(stats),
            _ => Err(ClientError::Protocol("reply did not match the probe")),
        }
    }

    /// Publishes a soft-state fact through the gateway. Like `submit`,
    /// retries across reconnects make this at-least-once — harmless
    /// here, since a duplicate put merely refreshes the fact.
    pub fn state_put(
        &mut self,
        scope: &str,
        key: &str,
        value: &str,
        ttl_ms: u32,
        source: &str,
    ) -> Result<SubmitResult, ClientError> {
        self.seq += 1;
        let seq = self.seq;
        let request = Frame::StateUpdate {
            seq,
            scope: scope.to_string(),
            key: key.to_string(),
            value: value.to_string(),
            ttl_ms,
            source: source.to_string(),
        };
        match self.exchange_with_retry(&request, "state update (gateway has no store)")? {
            Frame::Ack { seq: got } if got == seq => Ok(SubmitResult::Accepted),
            Frame::Nack { seq: got, reason, retry_after_ms } if got == seq || got == 0 => {
                Ok(SubmitResult::Rejected { reason, retry_after_ms })
            }
            _ => Err(ClientError::Protocol("reply did not match the state update")),
        }
    }

    /// Reads a soft-state fact back; `None` when it is absent or
    /// expired. A gateway running without a store nacks `Unsupported`,
    /// surfaced as the permanent [`ClientError::Unsupported`].
    pub fn state_get(
        &mut self,
        scope: &str,
        key: &str,
    ) -> Result<Option<StateFact>, ClientError> {
        self.seq += 1;
        let seq = self.seq;
        let request = Frame::StateQuery {
            seq,
            scope: scope.to_string(),
            key: key.to_string(),
        };
        match self.exchange_with_retry(&request, "state query (gateway has no store)")? {
            Frame::StateReply { seq: got, found, value, generation, ttl_remaining_ms }
                if got == seq =>
            {
                Ok(found.then_some(StateFact { value, generation, ttl_remaining_ms }))
            }
            _ => Err(ClientError::Protocol("reply did not match the state query")),
        }
    }

    /// Creates (`rule.id == 0`) or replaces a user-owned alert rule,
    /// returning the stored rule with its engine-assigned id. A gateway
    /// without a rules engine yields [`ClientError::Unsupported`]; an
    /// engine refusal (bad predicate, unknown id, per-user bound) yields
    /// [`ClientError::Rejected`] — both permanent, never retried.
    pub fn rule_upsert(&mut self, user: &str, rule: &WireRule) -> Result<WireRule, ClientError> {
        self.seq += 1;
        let seq = self.seq;
        let request = Frame::RuleUpsert { seq, user: user.to_string(), rule: rule.clone() };
        match self.exchange_with_retry(&request, "rule upsert")? {
            Frame::RuleListReply { seq: got, mut rules } if got == seq && rules.len() == 1 => {
                Ok(rules.remove(0))
            }
            _ => Err(ClientError::Protocol("reply did not match the rule upsert")),
        }
    }

    /// Deletes a rule (idempotent: deleting an unknown id still acks).
    pub fn rule_delete(&mut self, user: &str, rule_id: u64) -> Result<(), ClientError> {
        self.seq += 1;
        let seq = self.seq;
        let request = Frame::RuleDelete { seq, user: user.to_string(), rule_id };
        match self.exchange_with_retry(&request, "rule delete")? {
            Frame::Ack { seq: got } if got == seq => Ok(()),
            _ => Err(ClientError::Protocol("reply did not match the rule delete")),
        }
    }

    /// Lists a user's rules, ordered by id.
    pub fn rule_list(&mut self, user: &str) -> Result<Vec<WireRule>, ClientError> {
        self.seq += 1;
        let seq = self.seq;
        let request = Frame::RuleList { seq, user: user.to_string() };
        match self.exchange_with_retry(&request, "rule list")? {
            Frame::RuleListReply { seq: got, rules } if got == seq => Ok(rules),
            _ => Err(ClientError::Protocol("reply did not match the rule list")),
        }
    }

    /// Severs the connection without telling the server — the
    /// fault-injection hook loadgens use to model client crashes. The
    /// next call transparently reconnects.
    pub fn drop_connection(&mut self) {
        self.stream = None;
    }

    /// True while a TCP connection is held.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    fn ensure_connected(&mut self) -> Result<&mut TcpStream, ClientError> {
        if self.stream.is_none() {
            let mut last_err = None;
            for attempt in 0..self.config.max_attempts.max(1) {
                if attempt > 0 {
                    std::thread::sleep(self.config.retry_backoff);
                }
                match TcpStream::connect(&self.addr) {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_read_timeout(Some(self.config.io_timeout));
                        let _ = stream.set_write_timeout(Some(self.config.io_timeout));
                        if self.seq > 0 {
                            self.reconnects += 1;
                        }
                        self.stream = Some(stream);
                        last_err = None;
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            if let Some(e) = last_err {
                return Err(ClientError::Connect(e));
            }
        }
        // Reachable with `stream == None` only when the address list is
        // empty — surface that as an error instead of panicking.
        self.stream
            .as_mut()
            .ok_or(ClientError::Protocol("no gateway addresses configured"))
    }

    /// One request/response exchange, retrying across reconnects on
    /// connection-level failures (bounded by `max_attempts`). Permanent
    /// nacks (`Unsupported`, `Rejected`) are classified here, centrally,
    /// so *no* request path ever retries or resends one — they surface
    /// as typed errors tagged with `what`.
    fn exchange_with_retry(
        &mut self,
        request: &Frame,
        what: &'static str,
    ) -> Result<Frame, ClientError> {
        let bytes = proto::encode_to_vec(request);
        let mut last_err = ClientError::Protocol("no attempts configured");
        for _ in 0..self.config.max_attempts.max(1) {
            match self.exchange_once(&bytes) {
                Ok(Frame::Nack { reason: NackReason::Unsupported, .. }) => {
                    return Err(ClientError::Unsupported(what));
                }
                Ok(Frame::Nack { reason: NackReason::Rejected, .. }) => {
                    return Err(ClientError::Rejected(what));
                }
                Ok(frame) => return Ok(frame),
                Err(err @ (ClientError::Frame(_) | ClientError::Protocol(_))) => {
                    // The connection decoded garbage: don't trust it.
                    self.stream = None;
                    return Err(err);
                }
                Err(err) => {
                    self.stream = None;
                    last_err = err;
                }
            }
        }
        Err(last_err)
    }

    fn exchange_once(&mut self, request_bytes: &[u8]) -> Result<Frame, ClientError> {
        let max_payload = self.config.max_payload;
        let stream = self.ensure_connected()?;
        stream.write_all(request_bytes).map_err(ClientError::Io)?;
        let mut header_buf = [0u8; HEADER_LEN];
        stream.read_exact(&mut header_buf).map_err(ClientError::Io)?;
        let header = Header::parse(&header_buf, max_payload).map_err(ClientError::Frame)?;
        let mut payload = vec![0u8; header.payload_len as usize];
        stream.read_exact(&mut payload).map_err(ClientError::Io)?;
        proto::decode_payload(&header, &payload).map_err(ClientError::Frame)
    }
}
