//! End-to-end gateway tests over real localhost TCP.
//!
//! The server runs on std threads; where a `MabHost` is involved the main
//! test thread drives the tokio-shim runtime (unpaused, real time) with
//! [`simba_gateway::pump_into_host`], exactly the shape the CLI and the
//! E6 bench use.

use simba_core::subscription::UserId;
use simba_core::Telemetry;
use simba_gateway::proto::{self, Frame, NackReason, WireChannel, WireRule};
use simba_gateway::{
    intake, pump_into_host, ClientConfig, ClientError, GatewayClient, GatewayConfig,
    GatewayServer, RateLimit, SubmitResult,
};
use simba_runtime::{HostConfig, LoopbackChannels, MabHost, SharedChannels};
use simba_telemetry::RingBufferSink;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn telemetry() -> Telemetry {
    Telemetry::with_sink(Arc::new(RingBufferSink::new(4096)))
}

fn user_config(name: &str) -> simba_core::MabConfig {
    use simba_core::address::{Address, AddressBook, CommType};
    use simba_core::classify::{Classifier, KeywordField};
    use simba_core::mode::DeliveryMode;
    use simba_core::rejuvenate::RejuvenationPolicy;
    use simba_core::subscription::SubscriptionRegistry;

    let mut classifier = Classifier::new();
    classifier.accept_source("gw-src", KeywordField::Body, "cfg");
    classifier.map_keyword("Sensor", "Home");
    let mut registry = SubscriptionRegistry::new();
    let user = UserId::new(name);
    let profile = registry.register_user(user.clone());
    let mut book = AddressBook::new();
    book.add(Address::new("IM", CommType::Im, format!("im:{name}"))).unwrap();
    book.add(Address::new("EM", CommType::Email, format!("{name}@mail"))).unwrap();
    profile.address_book = book;
    profile.define_mode(DeliveryMode::im_then_email(
        "Urgent",
        "IM",
        "EM",
        simba_sim::SimDuration::from_secs(60),
    ));
    registry.subscribe("Home", user, "Urgent").unwrap();
    simba_core::MabConfig { classifier, registry, rejuvenation: RejuvenationPolicy::default() }
}

/// Two client threads submit through the gateway into a live two-user
/// host; every accepted alert must come out routed.
#[test]
fn submissions_flow_through_tcp_into_the_host() {
    let telemetry = telemetry();
    let (intake_tx, intake_rx) = intake(256);
    let server =
        GatewayServer::bind(GatewayConfig::default(), intake_tx, telemetry.clone()).unwrap();
    let addr = server.local_addr();

    let clients: Vec<_> = ["alice", "bob"]
        .into_iter()
        .map(|name| {
            std::thread::spawn(move || {
                let mut client =
                    GatewayClient::connect(addr.to_string(), ClientConfig::default()).unwrap();
                let mut accepted = 0u64;
                for i in 0..50 {
                    let result = client
                        .submit(WireChannel::Im, name, "gw-src", &format!("Sensor {i} ON"))
                        .unwrap();
                    assert_eq!(result, SubmitResult::Accepted);
                    accepted += 1;
                }
                accepted
            })
        })
        .collect();

    // Once every client is done the server shuts down, dropping the
    // worker-held intake senders — that is what ends the pump below.
    let supervisor = std::thread::spawn(move || {
        let total: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        server.shutdown();
        total
    });

    let host_telemetry = telemetry.clone();
    let (report, stats) = tokio::runtime::block_on(async move {
        let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(5)));
        let (host, _notices) = MabHost::new(shared, HostConfig::default());
        let mut host = host.with_telemetry(host_telemetry.clone());
        for name in ["alice", "bob"] {
            host.add_user(UserId::new(name), user_config(name)).unwrap();
        }
        let report = pump_into_host(&host, intake_rx, &host_telemetry).await;
        let stats = host.shutdown().await;
        (report, stats)
    });

    let sent = supervisor.join().unwrap();
    assert_eq!(sent, 100);
    assert_eq!(report.routed, 100);
    assert_eq!(report.unrouted, 0);
    let snap = telemetry.metrics().snapshot();
    assert_eq!(snap.counter("gateway.accepted"), 100);
    assert_eq!(snap.counter("gateway.shed"), 0);
    assert_eq!(snap.counter("gateway.decode_err"), 0);
    assert_eq!(snap.counter("host.routed"), 100);
    let started: u64 = stats.iter().map(|(_, s)| s.deliveries_started).sum();
    assert_eq!(started, 100, "every accepted alert started a delivery");
}

/// The same TCP path drained into the population-scale [`ShardedHost`]
/// via [`pump_into_sharded_host`]: every accepted submission reaches the
/// owning shard worker and starts a delivery.
#[test]
fn submissions_flow_through_tcp_into_the_sharded_host() {
    use simba_gateway::pump_into_sharded_host;
    use simba_runtime::{ShardedHost, ShardedHostConfig};

    let telemetry = telemetry();
    let (intake_tx, intake_rx) = intake(256);
    let server =
        GatewayServer::bind(GatewayConfig::default(), intake_tx, telemetry.clone()).unwrap();
    let addr = server.local_addr();

    let clients: Vec<_> = ["alice", "bob", "carol"]
        .into_iter()
        .map(|name| {
            std::thread::spawn(move || {
                let mut client =
                    GatewayClient::connect(addr.to_string(), ClientConfig::default()).unwrap();
                let mut accepted = 0u64;
                for i in 0..40 {
                    let result = client
                        .submit(WireChannel::Im, name, "gw-src", &format!("Sensor {i} ON"))
                        .unwrap();
                    assert_eq!(result, SubmitResult::Accepted);
                    accepted += 1;
                }
                accepted
            })
        })
        .collect();

    let supervisor = std::thread::spawn(move || {
        let total: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
        server.shutdown();
        total
    });

    let host_telemetry = telemetry.clone();
    let (report, snap) = tokio::runtime::block_on(async move {
        let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(5)));
        let config = ShardedHostConfig {
            shards: 2,
            hibernate_after: simba_sim::SimDuration::ZERO,
            ..ShardedHostConfig::default()
        };
        let factory: simba_runtime::ConfigFactory =
            Arc::new(|user: &UserId| user_config(&user.0));
        let (host, _notices) =
            ShardedHost::new(shared, config, factory, host_telemetry.clone()).unwrap();
        host.register_many(
            ["alice", "bob", "carol"].into_iter().map(UserId::new).collect(),
        )
        .await;
        let report = pump_into_sharded_host(&host, intake_rx, &host_telemetry).await;
        let snap = host.shutdown().await;
        (report, snap)
    });

    let sent = supervisor.join().unwrap();
    assert_eq!(sent, 120);
    assert_eq!(report.routed, 120, "every accepted submission reached a shard");
    assert_eq!(report.unrouted, 0);
    assert_eq!(snap.unrouted, 0, "all three users were registered");
    assert_eq!(snap.stats.received_im, 120);
    assert_eq!(snap.stats.deliveries_started, 120);
    let metrics = telemetry.metrics().snapshot();
    assert_eq!(metrics.counter("gateway.accepted"), 120);
    assert_eq!(metrics.counter("host.routed"), 120);
}

/// Regression: a client that sends a partial frame and stalls must not
/// block other connections, and its worker must be reclaimed after
/// `idle_timeout` — `shutdown()` joining proves nothing leaked.
#[test]
fn slow_loris_does_not_starve_other_connections() {
    let telemetry = telemetry();
    let (intake_tx, _intake_rx) = intake(256);
    let config = GatewayConfig {
        workers: 2,
        idle_timeout: Duration::from_millis(200),
        read_poll: Duration::from_millis(10),
        ..GatewayConfig::default()
    };
    let server = GatewayServer::bind(config, intake_tx, telemetry.clone()).unwrap();
    let addr = server.local_addr();

    // The attacker: half a header, then silence (socket stays open).
    let mut loris = TcpStream::connect(addr).unwrap();
    let partial = &proto::encode_to_vec(&Frame::Probe { nonce: 7 })[..proto::HEADER_LEN / 2];
    loris.write_all(partial).unwrap();

    // A healthy client keeps getting served the whole time.
    let mut client = GatewayClient::connect(addr.to_string(), ClientConfig::default()).unwrap();
    for i in 0..20 {
        let result =
            client.submit(WireChannel::Im, "alice", "gw-src", &format!("Sensor {i} ON")).unwrap();
        assert_eq!(result, SubmitResult::Accepted, "healthy client starved at submission {i}");
    }

    // The stalled connection is closed once idle_timeout passes; its
    // worker then serves a brand-new connection.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if telemetry.metrics().snapshot().counter("gateway.idle_closed") >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "idle connection was never reaped");
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut second = GatewayClient::connect(addr.to_string(), ClientConfig::default()).unwrap();
    let stats = second.probe().unwrap();
    assert_eq!(stats.accepted, 20);

    // The loris socket is dead server-side: reads see EOF.
    let _ = loris.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 1];
    assert_eq!(loris.read(&mut buf).unwrap_or(0), 0, "server kept the stalled socket open");

    server.shutdown(); // joins acceptor + both workers: no leaked thread
    let snap = telemetry.metrics().snapshot();
    // At least the loris was reaped (the healthy client may idle out
    // too while the test waits — reconnect covers that in production).
    assert!(snap.counter("gateway.idle_closed") >= 1);
    assert_eq!(snap.counter("gateway.accepted"), 20);
}

/// A full intake queue sheds with `QueueFull` + retry-after instead of
/// stalling the connection, and the drop is counted.
#[test]
fn full_intake_queue_sheds_with_retry_after() {
    let telemetry = telemetry();
    let (intake_tx, _intake_rx) = intake(1); // held open, never drained
    let server =
        GatewayServer::bind(GatewayConfig::default(), intake_tx, telemetry.clone()).unwrap();
    let mut client =
        GatewayClient::connect(server.local_addr().to_string(), ClientConfig::default()).unwrap();

    assert_eq!(
        client.submit(WireChannel::Im, "alice", "gw-src", "Sensor ON").unwrap(),
        SubmitResult::Accepted
    );
    match client.submit(WireChannel::Im, "alice", "gw-src", "Sensor ON").unwrap() {
        SubmitResult::Rejected { reason: NackReason::QueueFull, retry_after_ms } => {
            assert!(retry_after_ms > 0, "shed nack must carry a back-off hint");
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    let stats = client.probe().unwrap();
    assert_eq!((stats.accepted, stats.shed), (1, 1));
    server.shutdown();
    assert_eq!(telemetry.metrics().snapshot().counter("gateway.shed"), 1);
}

/// The known-user gate and the per-source token bucket both nack with
/// their own reasons, all counted.
#[test]
fn unknown_users_and_rate_limits_are_nacked() {
    let telemetry = telemetry();
    let (intake_tx, _intake_rx) = intake(256);
    let config = GatewayConfig {
        known_users: Some(["alice".to_string()].into_iter().collect()),
        rate_limit: Some(RateLimit { burst: 2, per_sec: 1 }),
        ..GatewayConfig::default()
    };
    let server = GatewayServer::bind(config, intake_tx, telemetry.clone()).unwrap();
    let mut client =
        GatewayClient::connect(server.local_addr().to_string(), ClientConfig::default()).unwrap();

    match client.submit(WireChannel::Im, "mallory", "gw-src", "Sensor ON").unwrap() {
        SubmitResult::Rejected { reason: NackReason::UnknownUser, .. } => {}
        other => panic!("expected UnknownUser, got {other:?}"),
    }
    for _ in 0..2 {
        assert_eq!(
            client.submit(WireChannel::Email, "alice", "gw-src", "Sensor ON").unwrap(),
            SubmitResult::Accepted
        );
    }
    match client.submit(WireChannel::Email, "alice", "gw-src", "Sensor ON").unwrap() {
        SubmitResult::Rejected { reason: NackReason::RateLimited, retry_after_ms } => {
            assert!(retry_after_ms > 0);
        }
        other => panic!("expected RateLimited, got {other:?}"),
    }
    server.shutdown();
    let snap = telemetry.metrics().snapshot();
    assert_eq!(snap.counter("gateway.unknown_user"), 1);
    assert_eq!(snap.counter("gateway.shed"), 1);
    assert_eq!(snap.counter("gateway.accepted"), 2);
}

/// Garbage on the wire gets a `Malformed` nack, a closed connection, and
/// a `gateway.decode_err` count — never a hang.
#[test]
fn garbage_bytes_are_nacked_and_counted() {
    let telemetry = telemetry();
    let (intake_tx, _intake_rx) = intake(16);
    let server =
        GatewayServer::bind(GatewayConfig::default(), intake_tx, telemetry.clone()).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    // Exactly one header's worth of garbage: the server nacks and closes
    // with nothing left unread (an unread residue would turn the close
    // into a TCP reset and race the nack).
    stream.write_all(b"GET / HTTP/1.1").unwrap();
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).unwrap(); // server closes after the nack
    let (frame, _) = proto::decode_frame(&reply).unwrap();
    assert!(matches!(frame, Frame::Nack { reason: NackReason::Malformed, .. }));

    server.shutdown();
    assert!(telemetry.metrics().snapshot().counter("gateway.decode_err") >= 1);
}

/// The client survives a dropped connection by reconnecting and
/// resending (at-least-once).
#[test]
fn client_reconnects_after_a_dropped_connection() {
    let telemetry = telemetry();
    let (intake_tx, _intake_rx) = intake(256);
    let server =
        GatewayServer::bind(GatewayConfig::default(), intake_tx, telemetry.clone()).unwrap();
    let mut client =
        GatewayClient::connect(server.local_addr().to_string(), ClientConfig::default()).unwrap();

    assert_eq!(
        client.submit(WireChannel::Im, "alice", "gw-src", "Sensor ON").unwrap(),
        SubmitResult::Accepted
    );
    client.drop_connection();
    assert!(!client.is_connected());
    assert_eq!(
        client.submit(WireChannel::Im, "alice", "gw-src", "Sensor ON").unwrap(),
        SubmitResult::Accepted
    );
    assert_eq!(client.reconnects, 1);
    server.shutdown();
}

/// State frames round-trip over real TCP: a put through the gateway is
/// readable back (value, generation, decaying TTL), absence and expiry
/// read as `None`, and the probe reports the intake queue's capacity
/// alongside its depth.
#[test]
fn state_facts_round_trip_over_tcp() {
    let telemetry = telemetry();
    let store = simba_store::SoftStateStore::new(Default::default(), telemetry.clone());
    let (intake_tx, _intake_rx) = intake(256);
    let server = GatewayServer::bind_with_store(
        GatewayConfig::default(),
        intake_tx,
        telemetry.clone(),
        Some(store.clone()),
    )
    .unwrap();
    let mut client =
        GatewayClient::connect(server.local_addr().to_string(), ClientConfig::default()).unwrap();

    assert_eq!(
        client.state_put("presence", "alice", "away", 60_000, "wish").unwrap(),
        SubmitResult::Accepted
    );
    let fact = client.state_get("presence", "alice").unwrap().expect("fact present");
    assert_eq!(fact.value, "away");
    assert!(fact.generation >= 1);
    assert!(fact.ttl_remaining_ms > 0 && fact.ttl_remaining_ms <= 60_000);

    // Absent key: a normal `None`, not an error.
    assert_eq!(client.state_get("presence", "nobody").unwrap(), None);

    // A short-TTL fact decays on its own.
    assert_eq!(
        client.state_put("presence", "bob", "mobile", 50, "wish").unwrap(),
        SubmitResult::Accepted
    );
    std::thread::sleep(Duration::from_millis(120));
    assert_eq!(client.state_get("presence", "bob").unwrap(), None);

    // Satellite 2: probe carries capacity so clients can judge fullness.
    let stats = client.probe().unwrap();
    assert_eq!(stats.queue_capacity, 256);
    assert!(stats.queue_depth <= stats.queue_capacity);

    server.shutdown();
    let snap = telemetry.metrics().snapshot();
    assert!(snap.counter("store.puts") >= 2);
    assert!(snap.counter("store.hits") >= 1);
    assert!(snap.counter("store.expired") >= 1);
}

/// Bugfix regression: a gateway running without a store or a rules
/// engine answers state and rule frames with an `Unsupported` nack, and
/// the client classifies that as a *permanent* typed error — it must
/// not resend the request, reconnect, or burn its retry budget the way
/// it would for a load-shed nack.
#[test]
fn unsupported_nack_is_permanent_and_never_retried() {
    let telemetry = telemetry();
    let (intake_tx, _intake_rx) = intake(256);
    let server =
        GatewayServer::bind(GatewayConfig::default(), intake_tx, telemetry.clone()).unwrap();
    // A long backoff so any accidental retry loop makes the test
    // visibly slow and the elapsed-time assertion below fail.
    let config = ClientConfig {
        max_attempts: 4,
        retry_backoff: Duration::from_millis(400),
        ..ClientConfig::default()
    };
    let mut client =
        GatewayClient::connect(server.local_addr().to_string(), config).unwrap();

    let started = Instant::now();
    for _ in 0..2 {
        // Store-less: both state paths fail with the typed error.
        let put = client.state_put("presence", "alice", "away", 1_000, "wish");
        assert!(
            matches!(put, Err(ClientError::Unsupported(_))),
            "state_put on a store-less gateway: {put:?}"
        );
        let get = client.state_get("presence", "alice");
        assert!(matches!(get, Err(ClientError::Unsupported(_))), "state_get: {get:?}");
        // Rules-less: every rule operation likewise.
        let upsert = client.rule_upsert("alice", &WireRule::default());
        assert!(matches!(upsert, Err(ClientError::Unsupported(_))), "rule_upsert: {upsert:?}");
        let delete = client.rule_delete("alice", 1);
        assert!(matches!(delete, Err(ClientError::Unsupported(_))), "rule_delete: {delete:?}");
        let list = client.rule_list("alice");
        assert!(matches!(list, Err(ClientError::Unsupported(_))), "rule_list: {list:?}");
        assert!(list.unwrap_err().is_permanent());
    }
    assert!(
        started.elapsed() < Duration::from_millis(400),
        "a permanent nack must fail fast, not loop through the retry backoff"
    );
    assert_eq!(client.reconnects, 0, "permanent nacks must not trigger reconnects");
    server.shutdown();
}

/// Rules flow end to end over TCP: upsert assigns an id and persists,
/// bad predicates are rejected permanently, listing round-trips the
/// stored shape, and deletion is idempotent.
#[test]
fn rule_frames_manage_the_engine_over_tcp() {
    use simba_rules::{RuleEngine, RulesConfig};

    let telemetry = telemetry();
    let (intake_tx, _intake_rx) = intake(256);
    let engine: simba_rules::SharedRuleEngine =
        Arc::new(RuleEngine::open(RulesConfig::in_memory()).unwrap());
    let server = GatewayServer::bind_with_rules(
        GatewayConfig::default(),
        intake_tx,
        telemetry.clone(),
        None,
        Some(Arc::clone(&engine)),
    )
    .unwrap();
    let mut client =
        GatewayClient::connect(server.local_addr().to_string(), ClientConfig::default()).unwrap();

    // Create: id 0 asks the engine to assign one.
    let rule = WireRule {
        id: 0,
        name: "storm".into(),
        enabled: true,
        severity: 0,
        dedupe: None,
        predicate: "source == flappy".into(),
        action: 2,
        window_ms: 60_000,
        max_count: 0,
        max_exemplars: 3,
        key: None,
    };
    let stored = client.rule_upsert("ada", &rule).unwrap();
    assert_eq!(stored.id, 1);
    // The engine canonicalizes predicate text before storing.
    assert_eq!(stored.predicate, "source == \"flappy\"");
    assert_eq!(engine.rule_count(), 1);

    // Replace in place: same id, new name.
    let renamed = WireRule { name: "quieter".into(), ..stored.clone() };
    let stored = client.rule_upsert("ada", &renamed).unwrap();
    assert_eq!(stored.id, 1);
    assert_eq!(stored.name, "quieter");

    // A bad predicate is a permanent rejection, not a retry loop.
    let bad = WireRule { predicate: "source ==".into(), ..rule.clone() };
    let err = client.rule_upsert("ada", &bad);
    assert!(matches!(err, Err(ClientError::Rejected(_))), "bad predicate: {err:?}");
    assert!(err.unwrap_err().is_permanent());

    // Listing returns the stored shape, ordered by id.
    let listed = client.rule_list("ada").unwrap();
    assert_eq!(listed.len(), 1);
    assert_eq!(listed[0], stored);
    assert_eq!(client.rule_list("bob").unwrap(), vec![]);

    // Deletion is idempotent: both calls ack.
    client.rule_delete("ada", 1).unwrap();
    client.rule_delete("ada", 1).unwrap();
    assert_eq!(client.rule_list("ada").unwrap(), vec![]);
    assert_eq!(engine.rule_count(), 0);
    server.shutdown();
}
