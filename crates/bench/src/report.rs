//! Table formatting shared by the experiment binaries.
//!
//! Every experiment prints (a) the paper's reported value, (b) the
//! measured value, and (c) enough distribution detail to judge the match.
//! `exp_all` concatenates these tables into `EXPERIMENTS.md`.

use simba_sim::Summary;
use std::fmt::Write as _;

/// A plain-text table with aligned columns.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified already).
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row of `&str`s.
    pub fn row_str(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let render = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "  {}", line.join("  ").trim_end());
        };
        render(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "  {}", "-".repeat(total));
        for row in &self.rows {
            render(row, &mut out);
        }
        out
    }

    /// Prints the text rendering to stdout.
    pub fn print(&self) {
        println!("{}", self.to_text());
    }
}

/// Formats seconds with two decimals.
pub fn secs(v: f64) -> String {
    format!("{v:.2} s")
}

/// Formats a [`Summary`] as `mean / p50 / p95` seconds.
pub fn dist(summary: &Summary) -> String {
    let mut s = summary.clone();
    format!(
        "{:.2} / {:.2} / {:.2} s",
        s.mean(),
        s.percentile(50.0),
        s.percentile(95.0)
    )
}

/// Formats a measurement with its paper target, e.g. `9 (paper: 9)`.
pub fn versus(measured: impl std::fmt::Display, paper: impl std::fmt::Display) -> String {
    format!("{measured} (paper: {paper})")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Latency", &["stage", "mean"]);
        t.row_str(&["one-way", "0.45 s"]);
        t.row(&["ack".to_string(), secs(1.5)]);
        t
    }

    #[test]
    fn text_rendering_aligns() {
        let text = sample().to_text();
        assert!(text.contains("== Latency =="));
        assert!(text.contains("one-way  0.45 s"));
        assert!(text.contains("ack      1.50 s"));
    }

    #[test]
    fn markdown_rendering_is_valid_gfm() {
        let md = sample().to_markdown();
        assert!(md.starts_with("### Latency"));
        assert!(md.contains("| stage | mean |"));
        assert!(md.contains("|---|---|"));
        assert_eq!(md.matches('\n').count(), 6);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_validated() {
        Table::new("x", &["a", "b"]).row_str(&["only-one"]);
    }

    #[test]
    fn helpers() {
        assert_eq!(secs(1.234), "1.23 s");
        assert_eq!(versus(36, 36), "36 (paper: 36)");
        let mut s = Summary::new();
        s.observe(1.0);
        s.observe(2.0);
        assert!(dist(&s).contains("1.50"));
        assert!(!sample().is_empty());
        assert_eq!(sample().len(), 2);
    }
}
