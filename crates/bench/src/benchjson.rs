//! Machine-readable bench artifacts: one `BENCH_<id>.json` per
//! performance experiment, documenting the run's headline metrics and
//! whether each asserted floor held.
//!
//! The schema (versioned via the `schema` field, documented in
//! `EXPERIMENTS.md`) is deliberately tiny so CI and tooling can parse it
//! without a JSON library:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "experiment": "E8",
//!   "mode": "smoke",
//!   "metrics": [{"name": "throughput", "value": 123456.0, "unit": "alerts/s"}],
//!   "floors": [{"metric": "throughput", "min": 10000.0, "passed": true}]
//! }
//! ```
//!
//! The file is written *before* the floor assertions run, so a failed
//! floor still leaves the measured numbers on disk for the trajectory.
//! `BENCH_OUT_DIR` overrides the output directory (default: the current
//! working directory).

use std::fmt::Write as _;
use std::path::PathBuf;

/// Current artifact schema version.
pub const BENCH_SCHEMA: u32 = 1;

/// Whether the run used the full recorded shape or the CI smoke shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchMode {
    /// The full-scale shape behind the recorded EXPERIMENTS.md numbers.
    Full,
    /// The reduced CI shape (`make ci`): same code paths, lower floors.
    Smoke,
}

impl BenchMode {
    fn as_str(self) -> &'static str {
        match self {
            BenchMode::Full => "full",
            BenchMode::Smoke => "smoke",
        }
    }
}

#[derive(Debug, Clone)]
struct Metric {
    name: String,
    value: f64,
    unit: String,
}

#[derive(Debug, Clone)]
struct Floor {
    metric: String,
    min: f64,
    passed: bool,
}

/// One experiment's bench artifact, accumulated then written as JSON.
#[derive(Debug, Clone)]
pub struct BenchReport {
    experiment: String,
    mode: BenchMode,
    metrics: Vec<Metric>,
    floors: Vec<Floor>,
}

impl BenchReport {
    /// Starts a report for `experiment` (e.g. `"E8"`) in `mode`.
    pub fn new(experiment: &str, mode: BenchMode) -> Self {
        BenchReport { experiment: experiment.to_string(), mode, metrics: Vec::new(), floors: Vec::new() }
    }

    /// Records one measured metric.
    pub fn metric(&mut self, name: &str, value: f64, unit: &str) -> &mut Self {
        self.metrics.push(Metric { name: name.into(), value, unit: unit.into() });
        self
    }

    /// Records a floor check against a previously recorded metric value;
    /// returns whether it held. The caller asserts *after* [`Self::write`]
    /// so the artifact survives a failed floor.
    pub fn floor(&mut self, metric: &str, min: f64, actual: f64) -> bool {
        let passed = actual >= min;
        self.floors.push(Floor { metric: metric.into(), min, passed });
        passed
    }

    /// True when every recorded floor held.
    pub fn all_floors_passed(&self) -> bool {
        self.floors.iter().all(|f| f.passed)
    }

    /// Renders the artifact as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema\": {},\n  \"experiment\": {},\n  \"mode\": \"{}\",\n  \"metrics\": [",
            BENCH_SCHEMA,
            json_string(&self.experiment),
            self.mode.as_str()
        );
        for (i, m) in self.metrics.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": {}, \"value\": {}, \"unit\": {}}}",
                json_string(&m.name),
                json_number(m.value),
                json_string(&m.unit)
            );
        }
        out.push_str("\n  ],\n  \"floors\": [");
        for (i, f) in self.floors.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"metric\": {}, \"min\": {}, \"passed\": {}}}",
                json_string(&f.metric),
                json_number(f.min),
                f.passed
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes `BENCH_<experiment>.json` (lower-cased id) into
    /// `BENCH_OUT_DIR` (or the current directory) and returns the path.
    /// IO failure is reported, not fatal — the bench numbers still print.
    pub fn write(&self) -> Option<PathBuf> {
        let dir = std::env::var_os("BENCH_OUT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        let path = dir.join(format!("BENCH_{}.json", self.experiment.to_lowercase()));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

/// Minimal JSON string quoting for metric/experiment names.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite number without trailing-noise decimals.
fn json_number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_schema_metrics_and_floors() {
        let mut r = BenchReport::new("E8", BenchMode::Smoke);
        r.metric("throughput", 123456.789, "alerts/s");
        r.metric("active_peak", 2000.0, "users");
        assert!(r.floor("throughput", 10_000.0, 123456.789));
        assert!(!r.floor("active_peak", 5000.0, 2000.0));
        assert!(!r.all_floors_passed());
        let json = r.to_json();
        assert!(json.contains("\"schema\": 1"), "{json}");
        assert!(json.contains("\"experiment\": \"E8\""), "{json}");
        assert!(json.contains("\"mode\": \"smoke\""), "{json}");
        assert!(json.contains("\"value\": 123456.789"), "{json}");
        assert!(json.contains("\"value\": 2000"), "{json}");
        assert!(json.contains("\"passed\": true"), "{json}");
        assert!(json.contains("\"passed\": false"), "{json}");
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn write_respects_bench_out_dir() {
        let dir = std::env::temp_dir().join(format!("simba-benchjson-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Env vars are process-global; restrict this test to one thread's
        // brief window and restore afterwards.
        let prev = std::env::var_os("BENCH_OUT_DIR");
        std::env::set_var("BENCH_OUT_DIR", &dir);
        let mut r = BenchReport::new("E99", BenchMode::Full);
        r.metric("x", 1.0, "u");
        let path = r.write().expect("write succeeds");
        match prev {
            Some(v) => std::env::set_var("BENCH_OUT_DIR", v),
            None => std::env::remove_var("BENCH_OUT_DIR"),
        }
        assert_eq!(path, dir.join("BENCH_e99.json"));
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"mode\": \"full\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
