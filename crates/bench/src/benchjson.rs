//! Machine-readable bench artifacts: one `BENCH_<id>.json` per
//! performance experiment, documenting the run's headline metrics and
//! whether each asserted floor held.
//!
//! The schema (versioned via the `schema` field, documented in
//! `EXPERIMENTS.md`) is deliberately tiny so CI and tooling can parse it
//! without a JSON library:
//!
//! ```json
//! {
//!   "schema": 1,
//!   "experiment": "E8",
//!   "mode": "smoke",
//!   "metrics": [{"name": "throughput", "value": 123456.0, "unit": "alerts/s"}],
//!   "floors": [{"metric": "throughput", "min": 10000.0, "passed": true}]
//! }
//! ```
//!
//! The file is written *before* the floor assertions run, so a failed
//! floor still leaves the measured numbers on disk for the trajectory.
//! `BENCH_OUT_DIR` overrides the output directory (default: the current
//! working directory).

use std::fmt::Write as _;
use std::path::PathBuf;

/// Current artifact schema version.
pub const BENCH_SCHEMA: u32 = 1;

/// Whether the run used the full recorded shape or the CI smoke shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchMode {
    /// The full-scale shape behind the recorded EXPERIMENTS.md numbers.
    Full,
    /// The reduced CI shape (`make ci`): same code paths, lower floors.
    Smoke,
}

impl BenchMode {
    fn as_str(self) -> &'static str {
        match self {
            BenchMode::Full => "full",
            BenchMode::Smoke => "smoke",
        }
    }
}

#[derive(Debug, Clone)]
struct Metric {
    name: String,
    value: f64,
    unit: String,
}

#[derive(Debug, Clone)]
struct Floor {
    metric: String,
    min: f64,
    passed: bool,
}

/// One experiment's bench artifact, accumulated then written as JSON.
#[derive(Debug, Clone)]
pub struct BenchReport {
    experiment: String,
    mode: BenchMode,
    metrics: Vec<Metric>,
    floors: Vec<Floor>,
}

impl BenchReport {
    /// Starts a report for `experiment` (e.g. `"E8"`) in `mode`.
    pub fn new(experiment: &str, mode: BenchMode) -> Self {
        BenchReport { experiment: experiment.to_string(), mode, metrics: Vec::new(), floors: Vec::new() }
    }

    /// Records one measured metric.
    pub fn metric(&mut self, name: &str, value: f64, unit: &str) -> &mut Self {
        self.metrics.push(Metric { name: name.into(), value, unit: unit.into() });
        self
    }

    /// Records a floor check against a previously recorded metric value;
    /// returns whether it held. The caller asserts *after* [`Self::write`]
    /// so the artifact survives a failed floor.
    pub fn floor(&mut self, metric: &str, min: f64, actual: f64) -> bool {
        let passed = actual >= min;
        self.floors.push(Floor { metric: metric.into(), min, passed });
        passed
    }

    /// True when every recorded floor held.
    pub fn all_floors_passed(&self) -> bool {
        self.floors.iter().all(|f| f.passed)
    }

    /// Renders the artifact as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema\": {},\n  \"experiment\": {},\n  \"mode\": \"{}\",\n  \"metrics\": [",
            BENCH_SCHEMA,
            json_string(&self.experiment),
            self.mode.as_str()
        );
        for (i, m) in self.metrics.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": {}, \"value\": {}, \"unit\": {}}}",
                json_string(&m.name),
                json_number(m.value),
                json_string(&m.unit)
            );
        }
        out.push_str("\n  ],\n  \"floors\": [");
        for (i, f) in self.floors.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"metric\": {}, \"min\": {}, \"passed\": {}}}",
                json_string(&f.metric),
                json_number(f.min),
                f.passed
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes `BENCH_<experiment>.json` (lower-cased id) into
    /// `BENCH_OUT_DIR` (or the current directory) and returns the path.
    /// IO failure is reported, not fatal — the bench numbers still print.
    pub fn write(&self) -> Option<PathBuf> {
        let dir = std::env::var_os("BENCH_OUT_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        let path = dir.join(format!("BENCH_{}.json", self.experiment.to_lowercase()));
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

/// One per-experiment artifact read back from disk by [`aggregate`].
#[derive(Debug, Clone)]
pub struct BenchArtifact {
    /// Schema version the file declared.
    pub schema: u32,
    /// Experiment id (e.g. `"E10"`).
    pub experiment: String,
    /// `"full"` or `"smoke"`.
    pub mode: String,
    /// `(name, value, unit)` per recorded metric.
    pub metrics: Vec<(String, f64, String)>,
    /// `(metric, min, passed)` per recorded floor.
    pub floors: Vec<(String, f64, bool)>,
}

impl BenchArtifact {
    /// True when every floor in the artifact held.
    pub fn all_floors_passed(&self) -> bool {
        self.floors.iter().all(|(_, _, passed)| *passed)
    }
}

/// Scans `dir` for `BENCH_e*.json` artifacts, parses each (tolerantly:
/// unreadable or malformed files are skipped with a warning on stderr),
/// and writes the merged `BENCH_TRAJECTORY.json` (trajectory schema v1,
/// documented in `EXPERIMENTS.md`) into the same directory. Returns the
/// trajectory path and the parsed artifacts, sorted by experiment
/// number (E2 before E10).
///
/// # Errors
///
/// Fails when `dir` cannot be read or the trajectory cannot be written;
/// individual bad artifacts are skipped, not fatal.
pub fn aggregate(dir: &std::path::Path) -> Result<(PathBuf, Vec<BenchArtifact>), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut artifacts = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !(name.starts_with("BENCH_e") && name.ends_with(".json")) {
            continue;
        }
        let path = entry.path();
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("warning: skipping {}: {e}", path.display());
                continue;
            }
        };
        match parse_artifact(&text) {
            Some(artifact) => artifacts.push(artifact),
            None => eprintln!("warning: skipping {}: not a bench artifact", path.display()),
        }
    }
    // E2 before E10: sort by the numeric tail of the id, then the id.
    let numeric = |id: &str| -> u64 {
        id.chars().filter(|c| c.is_ascii_digit()).fold(0u64, |n, c| {
            n.saturating_mul(10).saturating_add(u64::from(c) - u64::from('0'))
        })
    };
    artifacts.sort_by(|a, b| {
        numeric(&a.experiment)
            .cmp(&numeric(&b.experiment))
            .then_with(|| a.experiment.cmp(&b.experiment))
    });

    let mut out = String::from("{\n  \"schema\": 1,\n  \"kind\": \"trajectory\",\n  \"experiments\": [");
    for (i, a) in artifacts.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {{\"experiment\": {}, \"mode\": {}, \"floors_passed\": {}, \"metrics\": [",
            json_string(&a.experiment),
            json_string(&a.mode),
            a.all_floors_passed()
        );
        for (j, (name, value, unit)) in a.metrics.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(
                out,
                "{sep}{{\"name\": {}, \"value\": {}, \"unit\": {}}}",
                json_string(name),
                json_number(*value),
                json_string(unit)
            );
        }
        out.push_str("], \"floors\": [");
        for (j, (metric, min, passed)) in a.floors.iter().enumerate() {
            let sep = if j == 0 { "" } else { ", " };
            let _ = write!(
                out,
                "{sep}{{\"metric\": {}, \"min\": {}, \"passed\": {}}}",
                json_string(metric),
                json_number(*min),
                passed
            );
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");

    let path = dir.join("BENCH_TRAJECTORY.json");
    std::fs::write(&path, out).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok((path, artifacts))
}

/// Extracts a [`BenchArtifact`] from parsed JSON; `None` when the shape
/// is not a v1 bench artifact.
fn parse_artifact(text: &str) -> Option<BenchArtifact> {
    let json = Json::parse(text)?;
    let schema = json.get("schema")?.as_f64()? as u32;
    let experiment = json.get("experiment")?.as_str()?.to_string();
    let mode = json.get("mode")?.as_str()?.to_string();
    let mut metrics = Vec::new();
    for m in json.get("metrics")?.as_array()? {
        metrics.push((
            m.get("name")?.as_str()?.to_string(),
            m.get("value")?.as_f64()?,
            m.get("unit")?.as_str()?.to_string(),
        ));
    }
    let mut floors = Vec::new();
    for f in json.get("floors")?.as_array()? {
        floors.push((
            f.get("metric")?.as_str()?.to_string(),
            f.get("min")?.as_f64()?,
            f.get("passed")?.as_bool()?,
        ));
    }
    Some(BenchArtifact { schema, experiment, mode, metrics, floors })
}

/// A minimal JSON value, just enough to read back the artifacts this
/// module writes (the repo is std-only — no JSON library).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() { Some(value) } else { None }
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b't' => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        b'f' => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        b'n' => parse_literal(bytes, pos, b"null", Json::Null),
        _ => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &[u8], value: Json) -> Option<Json> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Some(value)
    } else {
        None
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos]).ok()?.parse().ok().map(Json::Num)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let code =
                            u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (artifact strings are ASCII in
                // practice, but names are caller-controlled).
                let rest = std::str::from_utf8(&bytes[*pos..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return None;
        }
        *pos += 1;
        fields.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Json::Obj(fields));
            }
            _ => return None,
        }
    }
}

/// Minimal JSON string quoting for metric/experiment names.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a finite number without trailing-noise decimals.
fn json_number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_schema_metrics_and_floors() {
        let mut r = BenchReport::new("E8", BenchMode::Smoke);
        r.metric("throughput", 123456.789, "alerts/s");
        r.metric("active_peak", 2000.0, "users");
        assert!(r.floor("throughput", 10_000.0, 123456.789));
        assert!(!r.floor("active_peak", 5000.0, 2000.0));
        assert!(!r.all_floors_passed());
        let json = r.to_json();
        assert!(json.contains("\"schema\": 1"), "{json}");
        assert!(json.contains("\"experiment\": \"E8\""), "{json}");
        assert!(json.contains("\"mode\": \"smoke\""), "{json}");
        assert!(json.contains("\"value\": 123456.789"), "{json}");
        assert!(json.contains("\"value\": 2000"), "{json}");
        assert!(json.contains("\"passed\": true"), "{json}");
        assert!(json.contains("\"passed\": false"), "{json}");
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn artifact_round_trips_through_the_parser() {
        let mut r = BenchReport::new("E10", BenchMode::Full);
        r.metric("evals_per_sec", 1_234_567.891, "evals/s");
        r.metric("digest_deliveries", 1.0, "deliveries");
        r.floor("evals_per_sec", 100_000.0, 1_234_567.891);
        r.floor("digest_single", 0.0, -1.0);
        let a = parse_artifact(&r.to_json()).expect("own output parses");
        assert_eq!(a.schema, BENCH_SCHEMA);
        assert_eq!(a.experiment, "E10");
        assert_eq!(a.mode, "full");
        assert_eq!(a.metrics[0], ("evals_per_sec".into(), 1_234_567.891, "evals/s".into()));
        assert_eq!(a.floors[1], ("digest_single".into(), 0.0, false));
        assert!(!a.all_floors_passed());
    }

    #[test]
    fn parser_rejects_garbage_and_trailing_noise() {
        assert!(parse_artifact("not json").is_none());
        assert!(parse_artifact("{\"schema\": 1}").is_none());
        assert!(Json::parse("{\"a\": 1} trailing").is_none());
        assert!(Json::parse("{\"a\": [true, null, \"x\\u0041\"]}").is_some());
    }

    #[test]
    fn aggregate_merges_artifacts_in_experiment_order() {
        let dir = std::env::temp_dir().join(format!("simba-trajectory-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut e10 = BenchReport::new("E10", BenchMode::Smoke);
        e10.metric("evals_per_sec", 500_000.0, "evals/s");
        e10.floor("evals_per_sec", 40_000.0, 500_000.0);
        std::fs::write(dir.join("BENCH_e10.json"), e10.to_json()).unwrap();
        let mut e9 = BenchReport::new("E9", BenchMode::Smoke);
        e9.metric("throughput", 80_000.0, "deliveries/s");
        e9.floor("throughput", 20_000.0, 80_000.0);
        std::fs::write(dir.join("BENCH_e9.json"), e9.to_json()).unwrap();
        // A malformed artifact is skipped, not fatal.
        std::fs::write(dir.join("BENCH_ebad.json"), "{oops").unwrap();

        let (path, artifacts) = aggregate(&dir).expect("aggregate");
        assert_eq!(path, dir.join("BENCH_TRAJECTORY.json"));
        let ids: Vec<&str> = artifacts.iter().map(|a| a.experiment.as_str()).collect();
        assert_eq!(ids, ["E9", "E10"], "numeric order, not lexicographic");
        assert!(artifacts.iter().all(BenchArtifact::all_floors_passed));

        let merged = std::fs::read_to_string(&path).unwrap();
        assert!(merged.contains("\"kind\": \"trajectory\""), "{merged}");
        let json = Json::parse(&merged).expect("trajectory parses");
        let experiments = json.get("experiments").unwrap().as_array().unwrap();
        assert_eq!(experiments.len(), 2);
        assert_eq!(experiments[1].get("experiment").unwrap().as_str(), Some("E10"));
        assert_eq!(experiments[1].get("floors_passed").unwrap().as_bool(), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_respects_bench_out_dir() {
        let dir = std::env::temp_dir().join(format!("simba-benchjson-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Env vars are process-global; restrict this test to one thread's
        // brief window and restore afterwards.
        let prev = std::env::var_os("BENCH_OUT_DIR");
        std::env::set_var("BENCH_OUT_DIR", &dir);
        let mut r = BenchReport::new("E99", BenchMode::Full);
        r.metric("x", 1.0, "u");
        let path = r.write().expect("write succeeds");
        match prev {
            Some(v) => std::env::set_var("BENCH_OUT_DIR", v),
            None => std::env::remove_var("BENCH_OUT_DIR"),
        }
        assert_eq!(path, dir.join("BENCH_e99.json"));
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"mode\": \"full\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
