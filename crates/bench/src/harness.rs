//! The end-to-end pipeline world: sources → channels → MyAlertBuddy →
//! the user's devices and eyes, inside the deterministic engine.
//!
//! This is the §5 experimental setting (Figure 5) as a simulation: alert
//! sources deliver to MyAlertBuddy over IM (falling back to email), the
//! buddy logs/acks/classifies/routes, its Communication Managers drive
//! flaky client software, the MDC watchdog and the self-stabilization
//! schedule run at the paper's cadences, and a presence-modelled human
//! finally *sees* each alert.
//!
//! Timing model (calibrated to §5's prose numbers):
//!
//! * IM transit: log-normal, median ≈ 0.4 s → "typically less than one
//!   second" one-way;
//! * client pickup ≈ 0.2 s + pessimistic-log fsync ≈ 0.25 s before the
//!   ack → ack RTT ≈ 1.5 s;
//! * classification + delivery-mode parsing + client automation ≈ 1.2 s
//!   before outbound sends → proxy-to-user ≈ 2.5 s (E2).

use simba_client::faults::{ClientFaultModel, FaultKind};
use simba_client::dialogs::DialogBox;
use simba_client::{EmailManager, ImManager};
use simba_core::address::{Address, AddressBook, CommType};
use simba_core::alert::IncomingAlert;
use simba_core::classify::{Classifier, KeywordField};
use simba_core::delivery::{AttemptId, DeliveryCommand, DeliveryEvent, SendFailure};
use simba_core::mab::{DeliveryId, MabCommand, MabConfig, MabEvent, MyAlertBuddy};
use simba_core::mdc::{MasterDaemonController, MdcAction, MdcConfig};
use simba_core::mode::DeliveryMode;
use simba_core::stabilize::{StabilizationConfig, StabilizationSchedule};
use simba_core::subscription::{SubscriptionRegistry, UserId};
use simba_core::wal::InMemoryWal;
use simba_net::email::{EmailAddr, EmailService, EmailTransit};
use simba_net::im::{ImHandle, ImMessage, ImService, Transit};
use simba_net::latency::LatencyModel;
use simba_net::loss::LossModel;
use simba_net::outage::OutageSchedule;
use simba_net::presence::{HumanModel, PresenceTimeline, UserContext};
use simba_net::sms::{PhoneState, SmsGateway, SmsNumber, SmsTransit};
use simba_sim::{Ctx, Engine, MetricSet, ObserveDurationNamed, SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

/// Fixed identities used by the standard pipeline.
pub const MAB_IM: &str = "mab-im";
/// The MAB's email address.
pub const MAB_EMAIL: &str = "mab@home";
/// The user's IM handle (the value of their "IM" address-book entry).
pub const USER_IM: &str = "im:alice";
/// The user's SMS number.
pub const USER_SMS: &str = "+1-555-0100";
/// The user's email address.
pub const USER_EMAIL: &str = "alice@work";

/// Per-alert life-cycle record, keyed by the emitter-assigned tag.
#[derive(Debug, Clone, Default)]
pub struct AlertTrack {
    /// When the source emitted it.
    pub emitted_at: Option<SimTime>,
    /// When MyAlertBuddy's client received it (one-way latency endpoint).
    pub mab_received_at: Option<SimTime>,
    /// When the source received MyAlertBuddy's ack (ack RTT endpoint).
    pub source_acked_at: Option<SimTime>,
    /// When the alert first reached any of the user's devices.
    pub reached_user_at: Option<SimTime>,
    /// When the human first saw it.
    pub seen_at: Option<SimTime>,
    /// Whether the user acknowledged (IM).
    pub user_acked: bool,
    /// How the source ultimately shipped it (IM or email fallback).
    pub via: Option<CommType>,
}

/// Timing knobs for the MyAlertBuddy processing stages.
#[derive(Debug, Clone, Copy)]
pub struct PipelineTiming {
    /// Client-automation pickup delay before the buddy sees a new IM.
    pub pickup_median_secs: f64,
    /// Pessimistic-log write (fsync) before the ack.
    pub wal_cost: SimDuration,
    /// Classification + delivery-mode parsing + outbound automation.
    pub route_median_secs: f64,
    /// Log-space sigma for the two log-normal stages.
    pub sigma: f64,
    /// Time to restart MyAlertBuddy after the MDC kills it.
    pub restart_delay: SimDuration,
    /// Time a full machine reboot takes.
    pub reboot_delay: SimDuration,
}

impl Default for PipelineTiming {
    fn default() -> Self {
        PipelineTiming {
            pickup_median_secs: 0.2,
            wal_cost: SimDuration::from_millis(250),
            route_median_secs: 1.2,
            sigma: 0.3,
            restart_delay: SimDuration::from_secs(12),
            reboot_delay: SimDuration::from_mins(3),
        }
    }
}

/// Build-time options for the pipeline world.
pub struct PipelineOptions {
    /// RNG seed.
    pub seed: u64,
    /// Where the user is over the run.
    pub presence: PresenceTimeline,
    /// Human reaction model.
    pub human: HumanModel,
    /// Processing-stage timing.
    pub timing: PipelineTiming,
    /// IM service outage windows.
    pub im_outages: OutageSchedule,
    /// Client-software fault injection (None disables).
    pub client_faults: Option<ClientFaultModel>,
    /// Mean time between MyAlertBuddy process crashes (the paper's "IM
    /// exceptions caused by ... undocumented interfaces"), if any.
    pub mab_crash_mtbf: Option<SimDuration>,
    /// Mean time between MyAlertBuddy hangs (detected only by the MDC's
    /// AreYouWorking ping — the A3 ablation's subject), if any.
    pub mab_hang_mtbf: Option<SimDuration>,
    /// Whether pessimistic logging is enabled (ablation A2 turns it off).
    pub pessimistic_logging: bool,
    /// Source-side ack timeout before falling back to email.
    pub source_ack_timeout: SimDuration,
    /// Disable the nightly rejuvenation (ablation A4).
    pub nightly_rejuvenation: bool,
    /// How long until a human notices and manually closes a dialog box no
    /// rule can dismiss (the paper's two unknown-dialog failures needed
    /// exactly this). `None` = nobody ever comes.
    pub operator_attention_delay: Option<SimDuration>,
    /// Pre-register dismissal rules for the "unknown" dialog captions —
    /// the paper's post-incident fix ("dialog-box handling APIs were then
    /// used to fix the problems").
    pub preregistered_dialog_rules: bool,
    /// Power outages as `(start, duration)`: the whole machine (MDC
    /// included) goes dark. The paper's month had one; the fix was a UPS.
    pub power_outages: Vec<(SimTime, SimDuration)>,
    /// Cadences for the stabilization checks.
    pub stabilization: StabilizationConfig,
    /// MDC watchdog configuration.
    pub mdc: MdcConfig,
}

impl PipelineOptions {
    /// Defaults: user at desk for the whole horizon, no faults, no outages.
    pub fn new(seed: u64, horizon: SimTime) -> Self {
        PipelineOptions {
            seed,
            presence: PresenceTimeline::constant(UserContext::AtDesk, horizon),
            human: HumanModel::default(),
            timing: PipelineTiming::default(),
            im_outages: OutageSchedule::always_up(),
            client_faults: None,
            mab_crash_mtbf: None,
            mab_hang_mtbf: None,
            pessimistic_logging: true,
            source_ack_timeout: SimDuration::from_secs(45),
            nightly_rejuvenation: true,
            operator_attention_delay: Some(SimDuration::from_hours(2)),
            preregistered_dialog_rules: false,
            power_outages: Vec::new(),
            stabilization: StabilizationConfig::default(),
            mdc: MdcConfig::default(),
        }
    }
}

/// The caption pool "unknown" dialogs draw from. Unknown means *no rule
/// was registered*, not unknowable: after the paper's fix, these exact
/// captions get rules.
pub const UNKNOWN_DIALOG_CAPTIONS: [(&str, &str); 3] = [
    ("Proxy Authentication Required", "OK"),
    ("Unexpected Script Error", "Continue"),
    ("Messenger Upgrade Available", "Later"),
];

/// The standard MAB configuration: alice subscribed to every source
/// category with the IM→email "Urgent" mode (plus SMS for the assistant).
pub fn standard_config() -> MabConfig {
    let mut classifier = Classifier::new();
    classifier.accept_source("proxy-im", KeywordField::Body, "remove watch");
    classifier.accept_source("webstore-im", KeywordField::Body, "leave community");
    classifier.accept_source("aladdin-gw", KeywordField::Body, "home gateway config");
    classifier.accept_source("wish-svc", KeywordField::Body, "wish privacy page");
    classifier.accept_source("assistant@desktop", KeywordField::Subject, "stop assistant");
    classifier.map_keyword("changed", "News");
    classifier.map_keyword("photo", "Community");
    classifier.map_keyword("Sensor", "Home.Security");
    classifier.map_keyword("entered", "Location");
    classifier.map_keyword("left", "Location");
    classifier.map_keyword("moved", "Location");
    classifier.map_keyword("Email:", "Work");
    classifier.map_keyword("Reminder:", "Work");
    classifier.set_default_category("Misc");

    let mut registry = SubscriptionRegistry::new();
    let alice = UserId::new("alice");
    let profile = registry.register_user(alice.clone());
    let mut book = AddressBook::new();
    book.add(Address::new("IM", CommType::Im, USER_IM)).expect("fresh book");
    book.add(Address::new("SMS", CommType::Sms, USER_SMS)).expect("fresh book");
    book.add(Address::new("EM", CommType::Email, USER_EMAIL)).expect("fresh book");
    profile.address_book = book;
    profile.define_mode(DeliveryMode::im_then_email(
        "Urgent",
        "IM",
        "EM",
        SimDuration::from_secs(60),
    ));
    profile.define_mode(
        DeliveryMode::new(
            "Critical",
            vec![
                simba_core::mode::Block::acked(vec!["IM".into()], SimDuration::from_secs(60)),
                simba_core::mode::Block::acked(vec!["SMS".into()], SimDuration::from_secs(120)),
                simba_core::mode::Block::fire_and_forget(vec!["EM".into()]),
            ],
        )
        .expect("static mode"),
    );
    for (category, mode) in [
        ("News", "Urgent"),
        ("Community", "Urgent"),
        ("Home.Security", "Critical"),
        ("Location", "Urgent"),
        ("Work", "Critical"),
        ("Misc", "Urgent"),
    ] {
        registry.subscribe(category, alice.clone(), mode).expect("fresh registry");
    }

    MabConfig {
        classifier,
        registry,
        rejuvenation: simba_core::rejuvenate::RejuvenationPolicy::default(),
    }
}

/// Events driving the pipeline world.
#[derive(Debug)]
pub enum Ev {
    /// A source emits an alert (tag must be unique per emission).
    Emit {
        /// Tracking tag.
        tag: u64,
        /// The alert.
        alert: IncomingAlert,
    },
    /// The source's ack window expired; fall back to email if unacked.
    SourceAckTimeout {
        /// Tracking tag.
        tag: u64,
    },
    /// An IM completed transit to the MAB's handle.
    MabImArrive {
        /// Tracking tag.
        tag: u64,
        /// The in-flight message.
        message: ImMessage,
    },
    /// An email completed transit to the MAB's mailbox.
    MabEmailArrive {
        /// Tracking tag.
        tag: u64,
        /// The in-flight message.
        transit: EmailTransit,
    },
    /// The buddy's client picked a received alert up; run the pipeline.
    MabIngest {
        /// Tracking tag.
        tag: u64,
        /// The alert as reconstructed from the channel.
        alert: IncomingAlert,
        /// Whether it arrived over IM (gets an ack).
        via_im: bool,
    },
    /// Deferred execution of routed channel commands.
    MabRoute {
        /// Commands produced by the routing stage.
        commands: Vec<MabCommand>,
    },
    /// The MAB→source ack IM completed transit.
    SourceAckArrive {
        /// Tracking tag.
        tag: u64,
    },
    /// A delivery-mode ack timer fired.
    DeliveryTimer {
        /// Which delivery.
        delivery: DeliveryId,
        /// Which timer.
        timer: simba_core::delivery::TimerId,
    },
    /// An outbound IM reached the user's desktop.
    UserImArrive {
        /// Which delivery/attempt it answers.
        delivery: DeliveryId,
        /// The attempt.
        attempt: AttemptId,
        /// Tracking tag.
        tag: u64,
        /// The message.
        message: ImMessage,
    },
    /// An outbound SMS reached the carrier edge for the user.
    UserSmsArrive {
        /// Tracking tag.
        tag: u64,
        /// The message.
        transit: SmsTransit,
    },
    /// An outbound email reached the user's mailbox.
    UserEmailArrive {
        /// Tracking tag.
        tag: u64,
        /// The message.
        transit: EmailTransit,
    },
    /// The human read the alert (and acks if it was an IM).
    UserSees {
        /// Tracking tag.
        tag: u64,
        /// The delivery/attempt to ack, when IM.
        ack: Option<(DeliveryId, AttemptId)>,
    },
    /// Periodic MDC ping.
    MdcPing,
    /// MDC reply deadline.
    MdcDeadline,
    /// Periodic Communication Manager sanity checks.
    SanityCheck,
    /// Periodic dialog-box scan (the monkey thread).
    DialogScan,
    /// Nightly rejuvenation.
    Nightly,
    /// MyAlertBuddy finished restarting.
    MabRestarted,
    /// Machine reboot completed.
    MachineUp,
    /// Inject the next client-software fault.
    ClientFault(
        /// Which fault.
        FaultKind,
    ),
    /// The MyAlertBuddy process dies of an internal exception.
    MabCrash,
    /// The MyAlertBuddy process wedges (only the watchdog ping notices).
    MabHang,
    /// A power outage takes the whole machine down (MDC included).
    PowerOut {
        /// How long until power returns.
        restore_after: SimDuration,
    },
}

/// The pipeline world.
pub struct World {
    /// IM service shared by sources, the buddy, and the user.
    pub im: ImService,
    /// Email service.
    pub email: EmailService,
    /// SMS gateway.
    pub sms: SmsGateway,
    /// The buddy (None while restarting).
    pub mab: Option<MyAlertBuddy<InMemoryWal>>,
    wal_parked: Option<InMemoryWal>,
    /// Config used to re-create the buddy on restart.
    pub mab_config: MabConfig,
    /// The buddy's IM client manager.
    pub im_mgr: ImManager,
    /// The buddy's email client manager.
    pub email_mgr: EmailManager,
    /// The watchdog.
    pub mdc: MasterDaemonController,
    sched: StabilizationSchedule,
    /// Presence timeline for the user.
    pub presence: PresenceTimeline,
    /// Human model.
    pub human: HumanModel,
    timing: PipelineTiming,
    pessimistic_logging: bool,
    source_ack_timeout: SimDuration,
    nightly_rejuvenation: bool,
    client_faults: Option<ClientFaultModel>,
    mab_crash_mtbf: Option<SimDuration>,
    mab_hang_mtbf: Option<SimDuration>,
    operator_attention_delay: Option<SimDuration>,
    machine_down: bool,
    /// Per-alert tracking by tag.
    pub tracks: BTreeMap<u64, AlertTrack>,
    /// Aggregated counters and latency summaries.
    pub metrics: MetricSet,
    rng: SimRng,
}

impl World {
    fn track(&mut self, tag: u64) -> &mut AlertTrack {
        self.tracks.entry(tag).or_default()
    }

    /// True while the buddy process exists and responds.
    pub fn mab_alive(&self) -> bool {
        self.mab.as_ref().is_some_and(|m| m.are_you_working())
    }
}

/// Builds the engine and schedules the maintenance loops.
pub fn build(options: PipelineOptions) -> Engine<World, Ev> {
    let mut seed_rng = SimRng::new(options.seed);
    let im_rng = seed_rng.fork(1);
    let email_rng = seed_rng.fork(2);
    let sms_rng = seed_rng.fork(3);
    let world_rng = seed_rng.fork(4);

    let mut im = ImService::new(im_rng)
        .with_latency(LatencyModel::consumer_im())
        .with_loss(LossModel::Bernoulli(0.001))
        .with_outages(options.im_outages.clone());
    let email = EmailService::new(email_rng);
    let mut sms = SmsGateway::new(sms_rng);
    sms.register(SmsNumber::new(USER_SMS), PhoneState::reachable());

    // Register every identity the standard pipeline uses.
    for handle in [MAB_IM, USER_IM, "proxy-im", "webstore-im", "aladdin-gw", "wish-svc"] {
        im.register(ImHandle::new(handle));
    }
    // Logons are best-effort: if the service starts inside an outage
    // window, the emit path and the sanity sweep re-logon later.
    for handle in ["proxy-im", "webstore-im", "aladdin-gw", "wish-svc", USER_IM] {
        let _ = im.logon(&ImHandle::new(handle), SimTime::ZERO);
    }

    let mab_config = standard_config();
    let mut im_mgr = ImManager::new(ImHandle::new(MAB_IM));
    let _ = im_mgr.start(&mut im, SimTime::ZERO);
    let mut email_mgr = EmailManager::new(EmailAddr::new(MAB_EMAIL));
    email_mgr.start(SimTime::ZERO);

    let mab = MyAlertBuddy::new(mab_config.clone(), InMemoryWal::new(), SimTime::ZERO);

    let world = World {
        im,
        email,
        sms,
        mab: Some(mab),
        wal_parked: None,
        mab_config,
        im_mgr,
        email_mgr,
        mdc: MasterDaemonController::new(options.mdc),
        sched: StabilizationSchedule::new(options.stabilization, SimTime::ZERO),
        presence: options.presence,
        human: options.human,
        timing: options.timing,
        pessimistic_logging: options.pessimistic_logging,
        source_ack_timeout: options.source_ack_timeout,
        nightly_rejuvenation: options.nightly_rejuvenation,
        client_faults: options.client_faults,
        mab_crash_mtbf: options.mab_crash_mtbf,
        mab_hang_mtbf: options.mab_hang_mtbf,
        operator_attention_delay: options.operator_attention_delay,
        machine_down: false,
        tracks: BTreeMap::new(),
        metrics: MetricSet::new(),
        rng: world_rng,
    };

    let mut engine = Engine::new(world, options.seed ^ 0xD15C0);
    if options.preregistered_dialog_rules {
        for (caption, button) in UNKNOWN_DIALOG_CAPTIONS {
            engine.world_mut().im_mgr.register_dialog_rule(caption, button);
            engine.world_mut().email_mgr.register_dialog_rule(caption, button);
        }
    }
    for (start, duration) in &options.power_outages {
        engine.schedule_at(*start, Ev::PowerOut { restore_after: *duration });
    }
    engine.schedule_in(options.mdc.ping_interval, Ev::MdcPing);
    engine.schedule_in(options.stabilization.sanity_interval, Ev::SanityCheck);
    engine.schedule_in(options.stabilization.dialog_interval, Ev::DialogScan);
    if options.nightly_rejuvenation {
        let next = simba_core::rejuvenate::RejuvenationPolicy::default()
            .next_nightly(SimTime::ZERO)
            .expect("nightly enabled");
        engine.schedule_at(next, Ev::Nightly);
    }
    if let Some(model) = engine.world().client_faults.clone() {
        if let Some((delay, kind)) = model.next_fault(engine.rng()) {
            engine.schedule_in(delay, Ev::ClientFault(kind));
        }
    }
    if let Some(mtbf) = engine.world().mab_crash_mtbf {
        let delay = SimDuration::from_secs_f64(
            engine.rng().exponential(mtbf.as_secs_f64()),
        );
        engine.schedule_in(delay, Ev::MabCrash);
    }
    if let Some(mtbf) = engine.world().mab_hang_mtbf {
        let delay = SimDuration::from_secs_f64(
            engine.rng().exponential(mtbf.as_secs_f64()),
        );
        engine.schedule_in(delay, Ev::MabHang);
    }
    engine
}

/// The event handler: pass to `Engine::run_until`.
#[allow(clippy::too_many_lines)]
pub fn handle(world: &mut World, ctx: &mut Ctx<'_, Ev>, ev: Ev) {
    match ev {
        Ev::Emit { tag, alert } => emit(world, ctx, tag, alert),
        Ev::SourceAckTimeout { tag } => source_ack_timeout(world, ctx, tag),
        Ev::MabImArrive { tag, message } => mab_im_arrive(world, ctx, tag, message),
        Ev::MabEmailArrive { tag, transit } => {
            if !transit.lost {
                let alert = IncomingAlert::from_email(
                    transit.message.from.0.clone(),
                    transit.message.sender_name.clone(),
                    transit.message.subject.clone(),
                    transit.message.body.clone(),
                    transit.message.sent_at,
                );
                world.email.deposit(transit.message);
                let pickup = lognormal(world, world.timing.pickup_median_secs);
                ctx.schedule_in(pickup, Ev::MabIngest { tag, alert, via_im: false });
            }
        }
        Ev::MabIngest { tag, alert, via_im } => mab_ingest(world, ctx, tag, alert, via_im),
        Ev::MabRoute { commands } => execute_commands(world, ctx, commands),
        Ev::SourceAckArrive { tag } => {
            let now = ctx.now();
            let t = world.track(tag);
            if t.source_acked_at.is_none() {
                t.source_acked_at = Some(now);
                if let (Some(emit), Some(ack)) = (t.emitted_at, Some(now)) {
                    world.metrics.observe_duration("source.ack_rtt", ack - emit);
                }
            }
        }
        Ev::DeliveryTimer { delivery, timer } => {
            let event = MabEvent::Delivery {
                id: delivery,
                event: DeliveryEvent::TimerFired { timer },
            };
            mab_handle(world, ctx, event);
        }
        Ev::UserImArrive { delivery, attempt, tag, message } => {
            user_im_arrive(world, ctx, delivery, attempt, tag, message)
        }
        Ev::UserSmsArrive { tag, transit } => user_sms_arrive(world, ctx, tag, transit),
        Ev::UserEmailArrive { tag, transit } => user_email_arrive(world, ctx, tag, transit),
        Ev::UserSees { tag, ack } => user_sees(world, ctx, tag, ack),
        Ev::MdcPing => mdc_ping(world, ctx),
        Ev::MdcDeadline => {
            // The probe answers at deadline-check time if the buddy came
            // back in the meantime (restart completed before the deadline).
            if world.mab_alive() {
                world.mdc.on_reply(ctx.now());
            } else if let Some(action) = world.mdc.on_reply_deadline(ctx.now()) {
                perform_mdc_action(world, ctx, action);
            }
        }
        Ev::SanityCheck => sanity_check(world, ctx),
        Ev::DialogScan => dialog_scan(world, ctx),
        Ev::Nightly => nightly(world, ctx),
        Ev::MabRestarted => mab_restarted(world, ctx),
        Ev::MachineUp => {
            world.machine_down = false;
            ctx.trace("machine.up", "reboot complete");
            mab_restarted(world, ctx);
        }
        Ev::ClientFault(kind) => client_fault(world, ctx, kind),
        Ev::MabCrash => mab_crash(world, ctx),
        Ev::MabHang => mab_hang(world, ctx),
        Ev::PowerOut { restore_after } => {
            ctx.trace("power.out", format!("machine dark for {restore_after}"));
            world.metrics.incr("power.outages");
            world.machine_down = true;
            if let Some(mab) = world.mab.take() {
                world.wal_parked = Some(mab.into_wal());
            }
            world.im_mgr.core_mut().process_mut().kill();
            world.email_mgr.core_mut().process_mut().kill();
            ctx.schedule_in(restore_after, Ev::MachineUp);
        }
    }
}

fn lognormal(world: &mut World, median: f64) -> SimDuration {
    SimDuration::from_secs_f64(world.rng.lognormal(median.max(1e-3), world.timing.sigma))
}

/// Source emission: IM first; synchronous failure → email fallback.
fn emit(world: &mut World, ctx: &mut Ctx<'_, Ev>, tag: u64, alert: IncomingAlert) {
    let now = ctx.now();
    world.track(tag).emitted_at = Some(now);
    world.metrics.incr("source.emitted");
    let source = ImHandle::new(alert.source.clone());
    // Sources keep their own sessions alive: re-logon before emitting if a
    // recovery or outage dropped the session.
    if !world.im.is_logged_on(&source, now) {
        let _ = world.im.logon(&source, now);
    }
    if !world.im.is_logged_on(&ImHandle::new(USER_IM), now) {
        let _ = world.im.logon(&ImHandle::new(USER_IM), now);
    }
    match world.im.send(&source, &ImHandle::new(MAB_IM), alert.body.clone(), now) {
        Ok(Transit { message, delay, lost }) => {
            world.track(tag).via = Some(CommType::Im);
            if !lost {
                ctx.schedule_in(delay, Ev::MabImArrive { tag, message });
            }
            ctx.schedule_in(world.source_ack_timeout, Ev::SourceAckTimeout { tag });
        }
        Err(_) => {
            world.metrics.incr("source.im_send_failed");
            emit_email_fallback(world, ctx, tag, &alert);
        }
    }
}

fn emit_email_fallback(world: &mut World, ctx: &mut Ctx<'_, Ev>, tag: u64, alert: &IncomingAlert) {
    let now = ctx.now();
    world.track(tag).via = Some(CommType::Email);
    world.metrics.incr("source.email_fallback");
    let transit = world.email.send(
        &EmailAddr::new(alert.source.clone()),
        &EmailAddr::new(MAB_EMAIL),
        alert.sender_name.clone(),
        alert.subject.clone(),
        alert.body.clone(),
        now,
    );
    let delay = transit.delay;
    ctx.schedule_in(delay, Ev::MabEmailArrive { tag, transit });
}

fn source_ack_timeout(world: &mut World, ctx: &mut Ctx<'_, Ev>, tag: u64) {
    let acked = world.track(tag).source_acked_at.is_some();
    if !acked {
        world.metrics.incr("source.ack_timeout");
        // Re-ship the original body via email (the SIMBA library's own
        // IM-then-email delivery mode, used source-side).
        let t = world.track(tag).clone();
        if let Some(emitted_at) = t.emitted_at {
            let alert = IncomingAlert::from_im("proxy-im", format!("(resend #{tag})"), emitted_at);
            // Sources keep their own copy of the alert; the tag routes it.
            emit_email_fallback(world, ctx, tag, &alert);
        }
    }
}

fn mab_im_arrive(world: &mut World, ctx: &mut Ctx<'_, Ev>, tag: u64, message: ImMessage) {
    let now = ctx.now();
    if !world.im.deliver(message.clone(), now) {
        world.metrics.incr("mab.im_undeliverable");
        return;
    }
    let t = world.track(tag);
    if t.mab_received_at.is_none() {
        t.mab_received_at = Some(now);
        if let Some(emit) = t.emitted_at {
            world.metrics.observe_duration("im.one_way", now - emit);
        }
    }
    let alert = IncomingAlert::from_im(message.from.0.clone(), message.body.clone(), message.sent_at);
    let pickup = lognormal(world, world.timing.pickup_median_secs);
    ctx.schedule_in(pickup, Ev::MabIngest { tag, alert, via_im: true });
}

/// The §4.2.1 pipeline with explicit stage timing.
fn mab_ingest(world: &mut World, ctx: &mut Ctx<'_, Ev>, tag: u64, mut alert: IncomingAlert, via_im: bool) {
    // Client software must be usable for the buddy to see the message.
    if world.im_mgr.core_mut().automation_op().is_err() || !world.mab_alive() {
        // Left in the inbox / unread; the sanity sweep will re-ingest.
        world.metrics.incr("mab.ingest_deferred");
        // Re-try after the next sanity interval.
        ctx.schedule_in(world.sched.config().sanity_interval, Ev::MabIngest { tag, alert, via_im });
        return;
    }
    // Tag the text so user-side events can find the track.
    alert.body = format!("{} [#{tag}]", alert.body);

    let wal_cost = if world.pessimistic_logging {
        world.timing.wal_cost
    } else {
        SimDuration::ZERO
    };
    let now = ctx.now();
    let event = if via_im {
        MabEvent::AlertByIm(alert)
    } else {
        MabEvent::AlertByEmail(alert)
    };
    let Some(mab) = world.mab.as_mut() else {
        return;
    };
    let commands = mab.handle(event, now);
    let crashed = mab.is_crashed();
    let mut acks = Vec::new();
    let mut routed = Vec::new();
    for c in commands {
        match c {
            MabCommand::AckIm { to, .. } => acks.push(to),
            other => routed.push(other),
        }
    }
    // The ack leaves after the log write.
    for to in acks {
        let send_at_delay = wal_cost;
        let mab_handle_im = ImHandle::new(MAB_IM);
        let target = ImHandle::new(to);
        // Model: schedule the ack IM send after the fsync. We send now
        // with the service latency standing in for (fsync + transit).
        if let Ok(Transit { delay, lost, .. }) =
            world.im.send(&mab_handle_im, &target, format!("ACK [#{tag}]"), now)
        {
            if !lost {
                ctx.schedule_in(send_at_delay + delay, Ev::SourceAckArrive { tag });
            }
        }
    }
    // Routing continues after classification/parsing.
    if !routed.is_empty() {
        let route_delay = wal_cost + lognormal(world, world.timing.route_median_secs);
        ctx.schedule_in(route_delay, Ev::MabRoute { commands: routed });
    }
    if crashed {
        on_mab_crashed(world, ctx);
    }
}

/// Runs a MabEvent through the buddy and executes resulting commands.
fn mab_handle(world: &mut World, ctx: &mut Ctx<'_, Ev>, event: MabEvent) {
    let now = ctx.now();
    let Some(mab) = world.mab.as_mut() else {
        return;
    };
    let commands = mab.handle(event, now);
    let crashed = mab.is_crashed();
    execute_commands(world, ctx, commands);
    if crashed {
        on_mab_crashed(world, ctx);
    }
}

fn execute_commands(world: &mut World, ctx: &mut Ctx<'_, Ev>, commands: Vec<MabCommand>) {
    let now = ctx.now();
    for command in commands {
        match command {
            MabCommand::AckIm { .. } => { /* replay acks are suppressed */ }
            MabCommand::Rejuvenate(trigger) => {
                ctx.trace("mab.rejuvenate", trigger.to_string());
                world.metrics.incr("mab.rejuvenations");
                graceful_restart(world, ctx);
            }
            MabCommand::Channel { delivery, command, .. } => match command {
                DeliveryCommand::StartTimer { timer, after } => {
                    ctx.schedule_in(after, Ev::DeliveryTimer { delivery, timer });
                }
                DeliveryCommand::Send { attempt, comm_type, address_value, text, .. } => {
                    let tag = parse_tag(&text).unwrap_or(u64::MAX);
                    send_to_user(world, ctx, delivery, attempt, comm_type, &address_value, text, tag);
                }
            },
        }
    }
    let _ = now;
}

#[allow(clippy::too_many_arguments)]
fn send_to_user(
    world: &mut World,
    ctx: &mut Ctx<'_, Ev>,
    delivery: DeliveryId,
    attempt: AttemptId,
    comm_type: CommType,
    address_value: &str,
    text: String,
    tag: u64,
) {
    let now = ctx.now();
    // All outbound sends go through the buddy's client software.
    let client_ok = match comm_type {
        CommType::Im => world.im_mgr.core_mut().automation_op().is_ok(),
        _ => world.email_mgr.core_mut().automation_op().is_ok(),
    };
    if !client_ok {
        world.metrics.incr("mab.outbound_client_failure");
        mab_handle(
            world,
            ctx,
            MabEvent::Delivery {
                id: delivery,
                event: DeliveryEvent::SendFailed { attempt, failure: SendFailure::ClientSoftware },
            },
        );
        return;
    }
    match comm_type {
        CommType::Im => {
            match world.im.send(&ImHandle::new(MAB_IM), &ImHandle::new(address_value), text, now) {
                Ok(Transit { message, delay, lost }) => {
                    world.metrics.incr("user.im_sent");
                    mab_handle(
                        world,
                        ctx,
                        MabEvent::Delivery { id: delivery, event: DeliveryEvent::SendAccepted { attempt } },
                    );
                    if !lost {
                        ctx.schedule_in(delay, Ev::UserImArrive { delivery, attempt, tag, message });
                    }
                }
                Err(e) => {
                    world.metrics.incr("user.im_send_failed");
                    let failure = match e {
                        simba_net::im::ImSendError::ServiceDown => SendFailure::ChannelDown,
                        _ => SendFailure::RecipientUnreachable,
                    };
                    mab_handle(
                        world,
                        ctx,
                        MabEvent::Delivery { id: delivery, event: DeliveryEvent::SendFailed { attempt, failure } },
                    );
                }
            }
        }
        CommType::Sms => {
            let transit = world.sms.send(&SmsNumber::new(address_value), &text, now);
            world.metrics.incr("user.sms_sent");
            mab_handle(
                world,
                ctx,
                MabEvent::Delivery { id: delivery, event: DeliveryEvent::SendAccepted { attempt } },
            );
            if !transit.lost {
                let delay = transit.delay;
                ctx.schedule_in(delay, Ev::UserSmsArrive { tag, transit });
            }
        }
        CommType::Email => {
            let transit = world.email.send(
                &EmailAddr::new(MAB_EMAIL),
                &EmailAddr::new(address_value),
                "MyAlertBuddy",
                "alert",
                text,
                now,
            );
            world.metrics.incr("user.email_sent");
            mab_handle(
                world,
                ctx,
                MabEvent::Delivery { id: delivery, event: DeliveryEvent::SendAccepted { attempt } },
            );
            if !transit.lost {
                let delay = transit.delay;
                ctx.schedule_in(delay, Ev::UserEmailArrive { tag, transit });
            }
        }
    }
}

fn user_im_arrive(
    world: &mut World,
    ctx: &mut Ctx<'_, Ev>,
    delivery: DeliveryId,
    attempt: AttemptId,
    tag: u64,
    message: ImMessage,
) {
    let now = ctx.now();
    if !world.im.deliver(message, now) {
        return;
    }
    mark_reached(world, tag, now);
    if world.presence.context_at(now).sees_im() {
        let reaction = world.human.im_reaction(&mut world.rng);
        ctx.schedule_in(reaction, Ev::UserSees { tag, ack: Some((delivery, attempt)) });
    }
}

fn user_sms_arrive(world: &mut World, ctx: &mut Ctx<'_, Ev>, tag: u64, transit: SmsTransit) {
    let now = ctx.now();
    if !world.sms.deliver(&transit.message) {
        return;
    }
    mark_reached(world, tag, now);
    if let Some(visible) = next_matching(&world.presence, now, UserContext::sees_sms) {
        let reaction = world.human.sms_reaction(&mut world.rng);
        let at = visible + reaction;
        if at >= now {
            ctx.schedule_at(at, Ev::UserSees { tag, ack: None });
        }
    }
}

fn user_email_arrive(world: &mut World, ctx: &mut Ctx<'_, Ev>, tag: u64, transit: EmailTransit) {
    let now = ctx.now();
    world.email.deposit(transit.message);
    mark_reached(world, tag, now);
    if let Some(visible) = next_matching(&world.presence, now, UserContext::sees_email) {
        let poll = world.human.email_poll(&mut world.rng);
        let at = visible + poll;
        if at >= now {
            ctx.schedule_at(at, Ev::UserSees { tag, ack: None });
        }
    }
}

fn mark_reached(world: &mut World, tag: u64, now: SimTime) {
    let t = world.track(tag);
    if t.reached_user_at.is_none() {
        t.reached_user_at = Some(now);
        if let Some(emit) = t.emitted_at {
            world.metrics.observe_duration("user.reach_latency", now - emit);
        }
    }
}

fn user_sees(world: &mut World, ctx: &mut Ctx<'_, Ev>, tag: u64, ack: Option<(DeliveryId, AttemptId)>) {
    let now = ctx.now();
    let t = world.track(tag);
    if t.seen_at.is_none() {
        t.seen_at = Some(now);
        if let Some(emit) = t.emitted_at {
            world.metrics.observe_duration("user.seen_latency", now - emit);
        }
        world.metrics.incr("user.seen");
    } else {
        // The user reads the same alert again (duplicate delivery or the
        // email fallback arriving after the IM was acked).
        world.metrics.incr("user.duplicate_sightings");
    }
    if let Some((delivery, attempt)) = ack {
        world.track(tag).user_acked = true;
        mab_handle(
            world,
            ctx,
            MabEvent::Delivery { id: delivery, event: DeliveryEvent::Acked { attempt } },
        );
    }
}

fn mdc_ping(world: &mut World, ctx: &mut Ctx<'_, Ev>) {
    let now = ctx.now();
    if !world.machine_down {
        // The MDC itself is down during a power outage / reboot; its timer
        // keeps running below so probing resumes with the machine.
        let action = world.mdc.on_ping_timer(now);
        let MdcAction::Ping { deadline } = action else {
            unreachable!("on_ping_timer always pings")
        };
        if world.mab_alive() {
            world.mdc.on_reply(now);
        } else {
            ctx.schedule_at(deadline, Ev::MdcDeadline);
        }
    }
    ctx.schedule_in(world.mdc.config().ping_interval, Ev::MdcPing);
}

fn perform_mdc_action(world: &mut World, ctx: &mut Ctx<'_, Ev>, action: MdcAction) {
    match action {
        MdcAction::Ping { .. } => {}
        MdcAction::RestartMab => {
            ctx.trace("mdc.restart", "restarting MyAlertBuddy");
            world.metrics.incr("mdc.restarts");
            if let Some(mab) = world.mab.take() {
                world.wal_parked = Some(mab.into_wal());
            }
            ctx.schedule_in(world.timing.restart_delay, Ev::MabRestarted);
        }
        MdcAction::RebootMachine => {
            ctx.trace("mdc.reboot", "rebooting the machine");
            world.metrics.incr("mdc.reboots");
            world.machine_down = true;
            if let Some(mab) = world.mab.take() {
                world.wal_parked = Some(mab.into_wal());
            }
            ctx.schedule_in(world.timing.reboot_delay, Ev::MachineUp);
        }
    }
}

fn on_mab_crashed(world: &mut World, ctx: &mut Ctx<'_, Ev>) {
    ctx.trace("mab.crash", "MyAlertBuddy terminated abnormally");
    world.metrics.incr("mab.crashes");
    if let Some(mab) = world.mab.take() {
        world.wal_parked = Some(mab.into_wal());
    }
    let action = world.mdc.on_mab_terminated(ctx.now());
    perform_mdc_action(world, ctx, action);
}

fn mab_restarted(world: &mut World, ctx: &mut Ctx<'_, Ev>) {
    if world.machine_down {
        return; // the reboot path restarts us via MachineUp
    }
    let now = ctx.now();
    let wal = world.wal_parked.take().unwrap_or_default();
    let mut mab = MyAlertBuddy::new(world.mab_config.clone(), wal, now);
    let commands = mab.recover(now);
    world.metrics.add("mab.replayed", mab.stats().replayed);
    world.mab = Some(mab);
    // Restart also restarts the client software.
    world.im_mgr.core_mut().shutdown_restart(now);
    let _ = world.im_mgr.start(&mut world.im, now);
    world.email_mgr.start(now);
    ctx.trace("mab.restarted", "MyAlertBuddy up");
    if !commands.is_empty() {
        let delay = lognormal(world, world.timing.route_median_secs);
        ctx.schedule_in(delay, Ev::MabRoute { commands });
    }
    // Sweep anything that arrived while down.
    sweep_backlog(world, ctx);
}

fn sweep_backlog(world: &mut World, ctx: &mut Ctx<'_, Ev>) {
    let now = ctx.now();
    if !world.mab_alive() {
        return;
    }
    if let Ok(messages) = world.im_mgr.receive(&mut world.im, now) {
        for message in messages {
            let tag = parse_tag(&message.body).unwrap_or(u64::MAX);
            let alert = IncomingAlert::from_im(message.from.0.clone(), message.body, message.sent_at);
            let pickup = lognormal(world, world.timing.pickup_median_secs);
            ctx.schedule_in(pickup, Ev::MabIngest { tag, alert, via_im: true });
        }
    }
    for mail in world.email_mgr.take_unread() {
        let tag = parse_tag(&mail.body).unwrap_or(u64::MAX);
        let alert = IncomingAlert::from_email(
            mail.from.0.clone(),
            mail.sender_name,
            mail.subject,
            mail.body,
            mail.sent_at,
        );
        let pickup = lognormal(world, world.timing.pickup_median_secs);
        ctx.schedule_in(pickup, Ev::MabIngest { tag, alert, via_im: false });
    }
}

fn sanity_check(world: &mut World, ctx: &mut Ctx<'_, Ev>) {
    let now = ctx.now();
    if !world.machine_down {
        let report = world.im_mgr.sanity_check(&mut world.im, now);
        for repair in &report.repairs {
            match repair {
                simba_client::RepairAction::ReLogon => {
                    world.metrics.incr("sanity.relogon");
                    ctx.trace("sanity.relogon", "IM client re-logged on");
                }
                simba_client::RepairAction::Restart => {
                    world.metrics.incr("sanity.client_restart");
                    ctx.trace("sanity.client_restart", "client killed and restarted");
                }
                simba_client::RepairAction::DialogDismissed { caption, .. } => {
                    world.metrics.incr("sanity.dialog_dismissed");
                    ctx.trace("sanity.dialog_dismissed", caption.clone());
                }
                simba_client::RepairAction::Unrepairable(a) => {
                    world.metrics.incr("sanity.unrepairable");
                    ctx.trace("sanity.unrepairable", format!("{a:?}"));
                }
            }
        }
        let _ = world.email_mgr.sanity_check(&mut world.email, now);
        // The user's own IM client recovers its session independently.
        if !world.im.is_logged_on(&ImHandle::new(USER_IM), now) {
            let _ = world.im.logon(&ImHandle::new(USER_IM), now);
        }
        // The sweep half of self-stabilization: unprocessed messages.
        sweep_backlog(world, ctx);
    }
    ctx.schedule_in(world.sched.config().sanity_interval, Ev::SanityCheck);
}

fn dialog_scan(world: &mut World, ctx: &mut Ctx<'_, Ev>) {
    let now = ctx.now();
    if !world.machine_down {
        let (dismissed, stuck) = world.im_mgr.core_mut().pump_dialogs();
        world.metrics.add("monkey.dismissed", dismissed.len() as u64);
        for caption in stuck {
            world.metrics.incr("monkey.stuck");
            ctx.trace("monkey.stuck", caption);
        }
        let (dismissed, _) = world.email_mgr.core_mut().pump_dialogs();
        world.metrics.add("monkey.dismissed", dismissed.len() as u64);
        // A stuck dialog eventually gets a human: the paper's two unknown
        // dialog boxes were unrecoverable until someone clicked them away.
        if let Some(delay) = world.operator_attention_delay {
            let process = world.im_mgr.core_mut().process_mut();
            let overdue: Vec<usize> = process
                .dialogs()
                .iter()
                .enumerate()
                .filter(|(_, d)| d.popped_at + delay <= now)
                .map(|(i, _)| i)
                .collect();
            for index in overdue.into_iter().rev() {
                let dialog = process.close_dialog(index);
                world.metrics.incr("operator.manual_fix");
                ctx.trace("operator.manual_fix", dialog.caption);
            }
        }
    }
    ctx.schedule_in(world.sched.config().dialog_interval, Ev::DialogScan);
}

fn nightly(world: &mut World, ctx: &mut Ctx<'_, Ev>) {
    let now = ctx.now();
    if world.nightly_rejuvenation && !world.machine_down {
        ctx.trace("mab.rejuvenate", "nightly");
        world.metrics.incr("mab.rejuvenations");
        graceful_restart(world, ctx);
    }
    if let Some(next) = simba_core::rejuvenate::RejuvenationPolicy::default().next_nightly(now) {
        ctx.schedule_at(next, Ev::Nightly);
    }
}

/// An orderly shutdown + relaunch (rejuvenation): the MDC observes the
/// exit but treats it as planned — no failure-streak accounting.
fn graceful_restart(world: &mut World, ctx: &mut Ctx<'_, Ev>) {
    if let Some(mab) = world.mab.take() {
        world.wal_parked = Some(mab.into_wal());
    }
    ctx.schedule_in(world.timing.restart_delay, Ev::MabRestarted);
}

fn client_fault(world: &mut World, ctx: &mut Ctx<'_, Ev>, kind: FaultKind) {
    let now = ctx.now();
    if !world.machine_down {
        ctx.trace("fault.injected", kind.to_string());
        world.metrics.incr(&format!("fault.{kind}"));
        match kind {
            FaultKind::Logout => world.im.force_logout(&ImHandle::new(MAB_IM)),
            FaultKind::Hang => world.im_mgr.core_mut().process_mut().inject_hang(),
            FaultKind::Crash => world.im_mgr.core_mut().process_mut().inject_crash(),
            FaultKind::KnownDialog => world.im_mgr.core_mut().process_mut().inject_dialog(
                DialogBox::blocking("Connection Lost", "Retry", now),
            ),
            FaultKind::UnknownDialog => {
                let idx = world.rng.range(0, UNKNOWN_DIALOG_CAPTIONS.len() as u64 - 1) as usize;
                let (caption, button) = UNKNOWN_DIALOG_CAPTIONS[idx];
                world
                    .im_mgr
                    .core_mut()
                    .process_mut()
                    .inject_dialog(DialogBox::blocking(caption, button, now));
            }
        }
    }
    if let Some(model) = world.client_faults.clone() {
        if let Some((delay, kind)) = model.next_fault(ctx.rng()) {
            ctx.schedule_in(delay, Ev::ClientFault(kind));
        }
    }
}

fn mab_crash(world: &mut World, ctx: &mut Ctx<'_, Ev>) {
    if !world.machine_down && world.mab.is_some() {
        on_mab_crashed(world, ctx);
    }
    if let Some(mtbf) = world.mab_crash_mtbf {
        let delay = SimDuration::from_secs_f64(ctx.rng().exponential(mtbf.as_secs_f64()));
        ctx.schedule_in(delay, Ev::MabCrash);
    }
}

fn mab_hang(world: &mut World, ctx: &mut Ctx<'_, Ev>) {
    if !world.machine_down {
        if let Some(mab) = world.mab.as_mut() {
            if mab.are_you_working() {
                mab.inject_hang();
                world.metrics.incr("mab.hangs");
                ctx.trace("mab.hang", "MyAlertBuddy wedged");
            }
        }
    }
    if let Some(mtbf) = world.mab_hang_mtbf {
        let delay = SimDuration::from_secs_f64(ctx.rng().exponential(mtbf.as_secs_f64()));
        ctx.schedule_in(delay, Ev::MabHang);
    }
}

/// Extracts the `[#tag]` marker the harness appends to alert bodies.
pub fn parse_tag(text: &str) -> Option<u64> {
    let idx = text.rfind("[#")?;
    let rest = &text[idx + 2..];
    let end = rest.find(']')?;
    rest[..end].parse().ok()
}

/// First instant at or after `from` when `pred` holds, within the horizon.
fn next_matching(
    tl: &PresenceTimeline,
    from: SimTime,
    pred: impl Fn(UserContext) -> bool,
) -> Option<SimTime> {
    if from >= tl.horizon() {
        return None;
    }
    if pred(tl.context_at(from)) {
        return Some(from);
    }
    let mut t = from;
    while let Some(change) = tl.next_change(t) {
        if change >= tl.horizon() {
            return None;
        }
        if pred(tl.context_at(change)) {
            return Some(change);
        }
        t = change;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one_alert(seed: u64) -> (World, u64) {
        let horizon = SimTime::from_hours(1);
        let mut engine = build(PipelineOptions::new(seed, horizon));
        let alert = IncomingAlert::from_im("aladdin-gw", "Basement Water Sensor ON", SimTime::from_secs(10));
        engine.schedule_at(SimTime::from_secs(10), Ev::Emit { tag: 1, alert });
        engine.run_until(horizon, handle);
        let (world, _) = engine.into_parts();
        (world, 1)
    }

    #[test]
    fn single_alert_reaches_user_and_is_acked() {
        let (world, tag) = run_one_alert(42);
        let track = &world.tracks[&tag];
        assert!(track.mab_received_at.is_some(), "MAB never received");
        assert!(track.source_acked_at.is_some(), "source never acked");
        assert!(track.reached_user_at.is_some(), "user never reached");
        assert!(track.seen_at.is_some(), "user never saw");
        assert!(track.user_acked, "user never acked");
        // One-way IM under a second or so; ack RTT a couple of seconds.
        let one_way = track.mab_received_at.unwrap() - track.emitted_at.unwrap();
        assert!(one_way < SimDuration::from_secs(3), "one-way {one_way}");
        let rtt = track.source_acked_at.unwrap() - track.emitted_at.unwrap();
        assert!(rtt < SimDuration::from_secs(5), "rtt {rtt}");
    }

    #[test]
    fn deterministic_across_runs() {
        let (a, _) = run_one_alert(7);
        let (b, _) = run_one_alert(7);
        assert_eq!(a.tracks[&1].seen_at, b.tracks[&1].seen_at);
        assert_eq!(a.tracks[&1].source_acked_at, b.tracks[&1].source_acked_at);
    }

    #[test]
    fn im_outage_forces_email_fallback_from_source() {
        let horizon = SimTime::from_days(1);
        let mut options = PipelineOptions::new(3, horizon);
        // IM down for the first six hours.
        options.im_outages =
            OutageSchedule::from_windows(vec![(SimTime::ZERO, SimTime::from_hours(6))]);
        let mut engine = build(options);
        let alert = IncomingAlert::from_im("aladdin-gw", "Garage Door Sensor ON", SimTime::from_secs(30));
        engine.schedule_at(SimTime::from_secs(30), Ev::Emit { tag: 9, alert });
        engine.run_until(horizon, handle);
        let (world, _) = engine.into_parts();
        assert_eq!(world.tracks[&9].via, Some(CommType::Email));
        assert_eq!(world.metrics.counter("source.im_send_failed"), 1);
        // The alert still gets through eventually.
        assert!(world.tracks[&9].seen_at.is_some());
    }

    #[test]
    fn many_alerts_all_seen_at_desk() {
        let horizon = SimTime::from_hours(10);
        let mut engine = build(PipelineOptions::new(11, horizon));
        for i in 0..50u64 {
            let at = SimTime::from_secs(60 + i * 300);
            let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor tick {i}"), at);
            engine.schedule_at(at, Ev::Emit { tag: i, alert });
        }
        engine.run_until(horizon, handle);
        let (world, _) = engine.into_parts();
        let seen = world.tracks.values().filter(|t| t.seen_at.is_some()).count();
        assert!(seen >= 48, "only {seen}/50 seen");
        let summary = world.metrics.summary("user.seen_latency").unwrap();
        assert!(summary.mean() < 30.0, "mean seen latency {}", summary.mean());
    }

    #[test]
    fn parse_tag_roundtrip() {
        assert_eq!(parse_tag("Sensor ON [#42]"), Some(42));
        assert_eq!(parse_tag("ACK [#7]"), Some(7));
        assert_eq!(parse_tag("no tag here"), None);
        assert_eq!(parse_tag("[#notanumber]"), None);
    }

    #[test]
    fn mab_crashes_are_restarted_and_alerts_replayed() {
        let horizon = SimTime::from_days(2);
        let mut options = PipelineOptions::new(17, horizon);
        options.mab_crash_mtbf = Some(SimDuration::from_hours(4));
        let mut engine = build(options);
        for i in 0..40u64 {
            let at = SimTime::from_mins(30 + i * 60);
            let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor event {i}"), at);
            engine.schedule_at(at, Ev::Emit { tag: i, alert });
        }
        engine.run_until(horizon, handle);
        let (world, trace) = engine.into_parts();
        assert!(world.metrics.counter("mab.crashes") > 0, "no crashes injected");
        assert!(world.metrics.counter("mdc.restarts") > 0, "MDC never restarted");
        assert!(trace.count("mab.restarted") > 0);
        // Despite crashes, the overwhelming majority of alerts get through.
        let seen = world.tracks.values().filter(|t| t.seen_at.is_some()).count();
        assert!(seen >= 36, "only {seen}/40 seen");
    }

    #[test]
    fn client_faults_recovered_by_sanity_checks() {
        let horizon = SimTime::from_days(3);
        let mut options = PipelineOptions::new(23, horizon);
        options.client_faults = Some(ClientFaultModel {
            logout_mtbf: Some(SimDuration::from_hours(6)),
            hang_mtbf: Some(SimDuration::from_hours(9)),
            crash_mtbf: None,
            known_dialog_mtbf: Some(SimDuration::from_hours(12)),
            unknown_dialog_mtbf: None,
        });
        let mut engine = build(options);
        for i in 0..30u64 {
            let at = SimTime::from_mins(10 + i * 120);
            let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor blip {i}"), at);
            engine.schedule_at(at, Ev::Emit { tag: i, alert });
        }
        engine.run_until(horizon, handle);
        let (world, _) = engine.into_parts();
        assert!(world.metrics.counter("sanity.relogon") > 0, "no re-logons");
        assert!(
            world.metrics.counter("sanity.client_restart") > 0,
            "no client restarts"
        );
        let seen = world.tracks.values().filter(|t| t.seen_at.is_some()).count();
        assert!(seen >= 27, "only {seen}/30 seen");
    }
}
