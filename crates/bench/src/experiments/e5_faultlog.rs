//! E5 — the one-month fault-injection campaign and recovery log.
//!
//! Paper (§5): "within a one-month period of time, there were five extended
//! IM downtimes lasting from 4 to 103 minutes ... nine instances where
//! MyAlertBuddy was logged out and simple re-logon attempts worked. In
//! another nine instances, the hanging IM client had to be killed and
//! restarted ... There were 36 restarts of MyAlertBuddy by the MDC ...
//! The fault-tolerance mechanisms effectively recovered MyAlertBuddy from
//! all failures except three: one ... rare power outage ... another two
//! were caused by previously unknown dialog boxes. UPS and dialog-box
//! handling APIs were then used to fix the problems."

use crate::experiments::ExperimentOutput;
use crate::faultlog::{run_campaign, CampaignOptions, CampaignResult};
use crate::report::{versus, Table};

/// Runs both campaign phases and builds the comparison table.
pub fn measure(seed: u64) -> (CampaignResult, CampaignResult, Vec<Table>) {
    let initial = run_campaign(&CampaignOptions { seed, with_fixes: false, ..CampaignOptions::default() });
    let fixed = run_campaign(&CampaignOptions { seed, with_fixes: true, ..CampaignOptions::default() });

    let mut t = Table::new(
        "E5: one-month recovery log (initial deployment)",
        &["recovery action / failure class", "measured", "paper"],
    );
    t.row(&[
        "extended IM downtimes".to_string(),
        format!(
            "{} lasting {}–{}",
            initial.im_downtimes, initial.shortest_downtime, initial.longest_downtime
        ),
        "5 lasting 4–103 min".to_string(),
    ]);
    t.row(&[
        "logout fixed by simple re-logon".to_string(),
        initial.relogons.to_string(),
        "9".to_string(),
    ]);
    t.row(&[
        "hung client killed and restarted".to_string(),
        initial.client_restarts.to_string(),
        "9".to_string(),
    ]);
    t.row(&[
        "MDC restarts of MyAlertBuddy".to_string(),
        initial.mdc_restarts.to_string(),
        "36".to_string(),
    ]);
    t.row(&[
        "unrecovered by automation".to_string(),
        format!(
            "{} ({} power, {} unknown dialogs)",
            initial.unrecovered, initial.unrecovered_power, initial.unrecovered_dialogs
        ),
        "3 (1 power outage, 2 unknown dialogs)".to_string(),
    ]);
    t.row(&[
        "nightly/triggered rejuvenations".to_string(),
        initial.rejuvenations.to_string(),
        "nightly at 11:30 PM".to_string(),
    ]);
    t.row(&[
        "alert delivery rate through it all".to_string(),
        format!(
            "{:.1} % ({}/{})",
            initial.delivery_rate() * 100.0,
            initial.alerts_seen,
            initial.alerts_emitted
        ),
        "\"recovered ... from all failures except three\"".to_string(),
    ]);

    let mut t2 = Table::new(
        "E5b: after the fixes (UPS + registered dialog rules)",
        &["failure class", "measured", "paper"],
    );
    t2.row(&[
        "unrecovered power outages".to_string(),
        versus(fixed.unrecovered_power, 0),
        "fixed by UPS".to_string(),
    ]);
    t2.row(&[
        "unrecovered unknown dialogs".to_string(),
        versus(fixed.unrecovered_dialogs, 0),
        "fixed by dialog-box handling API".to_string(),
    ]);
    t2.row(&[
        "delivery rate".to_string(),
        format!("{:.1} %", fixed.delivery_rate() * 100.0),
        "—".to_string(),
    ]);

    (initial, fixed, vec![t, t2])
}

/// Runs E5 and packages the result.
pub fn run(seed: u64) -> ExperimentOutput {
    let (initial, _fixed, tables) = measure(seed);
    let sample_log: Vec<String> = initial
        .trace
        .entries()
        .iter()
        .filter(|e| e.category.starts_with("mdc.") || e.category.starts_with("sanity."))
        .take(6)
        .map(|e| e.to_string())
        .collect();
    ExperimentOutput {
        id: "E5",
        title: "One-month fault log and recovery effectiveness",
        paper_claim: "5 IM downtimes (4–103 min), 9 re-logons, 9 client kill-restarts, 36 MDC restarts, 3 unrecovered (1 power, 2 unknown dialogs)",
        tables,
        notes: vec![format!(
            "first recovery-log lines: {}",
            sample_log.join(" | ")
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_tables_cover_every_paper_count() {
        let (initial, fixed, tables) = measure(2001);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 7);
        // The headline sanity: fixes kill the unrecovered class.
        assert!(initial.unrecovered >= 2);
        assert_eq!(fixed.unrecovered, 0);
    }
}
