//! A2 — pessimistic logging under crash injection.
//!
//! The §4.2.1 scenario: "after MyAlertBuddy receives and acknowledges an
//! IM alert and before it finishes processing the alert, MyAlertBuddy may
//! crash ... Since the sender has received the acknowledgement and will
//! not resend the alert, the alert would be lost." The log closes that
//! window; the residual cost is duplicates (crash after routing, before
//! the processed mark), which timestamp dedup discards at the user.
//!
//! This ablation drives MyAlertBuddy directly with crash points at every
//! pipeline stage and counts lost / duplicated / delivered alerts with the
//! log enabled vs disabled.

use crate::experiments::ExperimentOutput;
use crate::harness::standard_config;
use crate::report::Table;
use simba_core::alert::{Alert, AlertId, IncomingAlert, Urgency};
use simba_core::dedup::DuplicateDetector;
use simba_core::mab::{CrashPoint, MabCommand, MabEvent, MyAlertBuddy};
use simba_core::wal::InMemoryWal;
use simba_sim::{SimRng, SimTime};

/// Alerts pushed through the buddy per arm.
pub const ALERTS: u64 = 5_000;

/// Probability an alert's processing is interrupted by a crash.
pub const CRASH_PROB: f64 = 0.08;

/// Result of one arm.
#[derive(Debug, Clone, Copy)]
pub struct A2Arm {
    /// Whether the log (and restart replay) was enabled.
    pub logging: bool,
    /// Alerts whose sender got an ack but the user never got the alert.
    pub acked_but_lost: u64,
    /// Duplicate deliveries discarded by the user's timestamp dedup.
    pub duplicates_discarded: u64,
    /// Alerts delivered to the user (post-dedup).
    pub delivered: u64,
    /// Crashes injected.
    pub crashes: u64,
}

fn routed_count(commands: &[MabCommand]) -> u64 {
    u64::from(commands.iter().any(|c| matches!(c, MabCommand::Channel { .. })))
}

fn run_arm(seed: u64, logging: bool) -> A2Arm {
    let mut rng = SimRng::new(seed ^ 0xA2);
    let config = standard_config();
    let mut mab = MyAlertBuddy::new(config.clone(), InMemoryWal::new(), SimTime::ZERO);
    let mut dedup = DuplicateDetector::daily();

    let mut acked_without_delivery = 0u64;
    let mut delivered = 0u64;
    let mut crashes = 0u64;

    for i in 0..ALERTS {
        let now = SimTime::from_secs(10 + i * 30);
        let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor event {i} ON"), now);

        // Some alerts get a crash at a random pipeline stage.
        if rng.chance(CRASH_PROB) {
            let point = *rng
                .pick(&[
                    CrashPoint::BeforeLog,
                    CrashPoint::AfterLogBeforeAck,
                    CrashPoint::AfterAckBeforeRoute,
                    CrashPoint::AfterRouteBeforeMark,
                ])
                .expect("non-empty");
            mab.inject_crash_at(point);
        }

        let commands = mab.handle(MabEvent::AlertByIm(alert.clone()), now);
        let acked = commands.iter().any(|c| matches!(c, MabCommand::AckIm { .. }));
        let mut routed = routed_count(&commands);

        if mab.is_crashed() {
            crashes += 1;
            // The MDC restarts the buddy. With logging, the new incarnation
            // replays unprocessed records; without, it starts blank.
            let wal = if logging { mab.into_wal() } else { InMemoryWal::new() };
            mab = MyAlertBuddy::new(config.clone(), wal, now);
            let recovery = mab.recover(now);
            routed += routed_count(&recovery);
        }

        // User side: each routed copy is a delivery; dedup drops replays.
        let mut got_fresh = false;
        for _ in 0..routed {
            let delivered_alert = Alert {
                id: AlertId(i),
                source: "aladdin-gw".into(),
                category: "Home.Security".into(),
                text: alert.body.clone(),
                origin_timestamp: alert.origin_timestamp,
                received_at: now,
                urgency: Urgency::Critical,
            };
            if dedup.observe(&delivered_alert, now) {
                got_fresh = true;
            }
        }
        if got_fresh {
            delivered += 1;
        } else if acked {
            acked_without_delivery += 1;
        }
    }

    A2Arm {
        logging,
        acked_but_lost: acked_without_delivery,
        duplicates_discarded: dedup.duplicates(),
        delivered,
        crashes,
    }
}

/// Runs both arms.
pub fn measure(seed: u64) -> (A2Arm, A2Arm, Vec<Table>) {
    let with_log = run_arm(seed, true);
    let without = run_arm(seed, false);

    let mut t = Table::new(
        "A2: pessimistic logging under crash injection (8 % crash rate, all pipeline stages)",
        &["arm", "crashes", "acked-but-lost", "duplicates (dedup'd)", "delivered"],
    );
    for arm in [&with_log, &without] {
        t.row(&[
            if arm.logging { "WAL enabled (paper)" } else { "WAL disabled" }.to_string(),
            arm.crashes.to_string(),
            arm.acked_but_lost.to_string(),
            arm.duplicates_discarded.to_string(),
            format!("{} / {}", arm.delivered, ALERTS),
        ]);
    }

    (with_log, without, vec![t])
}

/// Runs A2 and packages the result.
pub fn run(seed: u64) -> ExperimentOutput {
    let (with_log, without, tables) = measure(seed);
    ExperimentOutput {
        id: "A2",
        title: "Pessimistic logging: lost vs duplicated alerts under crashes",
        paper_claim: "logging before the ack prevents acked-alert loss; duplicates are detected by timestamps",
        tables,
        notes: vec![format!(
            "WAL turns {} acked-but-lost alerts into {} user-invisible duplicates",
            without.acked_but_lost, with_log.duplicates_discarded
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a2_wal_eliminates_acked_loss() {
        let (with_log, without, _) = measure(42);
        // Same seed → same crash schedule in both arms.
        assert_eq!(with_log.crashes, without.crashes);
        assert!(with_log.crashes > 200, "crashes {}", with_log.crashes);

        // The paper's invariant: with the log, an acked alert is never lost.
        assert_eq!(with_log.acked_but_lost, 0);
        // Without it, the AfterAckBeforeRoute window loses alerts.
        assert!(without.acked_but_lost > 20, "lost {}", without.acked_but_lost);

        // The cost of safety is only duplicates, all discarded silently.
        assert!(with_log.duplicates_discarded > 0);
        assert!(with_log.delivered > without.delivered);
    }
}
