//! E1 — IM delivery latency and acknowledgement RTT.
//!
//! Paper (§5): "The one-way IM delivery time from any of the alert sources
//! to MyAlertBuddy is typically less than one second. With pessimistic
//! logging, the alert source receives an acknowledgement in about 1.5
//! seconds."

use crate::harness::{build, handle, Ev, PipelineOptions};
use crate::report::{dist, secs, Table};
use crate::experiments::ExperimentOutput;
use simba_core::alert::IncomingAlert;
use simba_sim::SimTime;

/// Number of alerts measured.
pub const ALERTS: u64 = 2_000;

/// Measured headline numbers, exposed for regression tests.
#[derive(Debug, Clone, Copy)]
pub struct E1Numbers {
    /// Mean one-way IM latency, seconds.
    pub one_way_mean: f64,
    /// Fraction of one-way deliveries under one second.
    pub one_way_sub_second: f64,
    /// Mean ack RTT with pessimistic logging, seconds.
    pub ack_rtt_mean: f64,
    /// Mean ack RTT without pessimistic logging, seconds.
    pub ack_rtt_no_log_mean: f64,
}

/// Runs the measurement and returns the headline numbers plus tables.
pub fn measure(seed: u64) -> (E1Numbers, Vec<Table>) {
    let mut tables = Vec::new();
    let mut by_logging = Vec::new();

    for logging in [true, false] {
        let horizon = SimTime::from_secs(60 * ALERTS + 3_600);
        let mut options = PipelineOptions::new(seed, horizon);
        options.pessimistic_logging = logging;
        let mut engine = build(options);
        for i in 0..ALERTS {
            let at = SimTime::from_secs(30 + i * 60);
            let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor ping {i} ON"), at);
            engine.schedule_at(at, Ev::Emit { tag: i, alert });
        }
        engine.run_until(horizon, handle);
        let (world, _) = engine.into_parts();
        let one_way = world.metrics.summary("im.one_way").cloned().unwrap_or_default();
        let rtt = world.metrics.summary("source.ack_rtt").cloned().unwrap_or_default();
        by_logging.push((logging, one_way, rtt));
    }

    let (_, one_way, rtt) = &by_logging[0];
    let (_, _, rtt_no_log) = &by_logging[1];

    let sub_second = one_way.fraction_below(1.0);

    let mut t = Table::new(
        "E1: IM one-way latency and ack RTT (source → MyAlertBuddy)",
        &["metric", "measured mean/p50/p95", "paper"],
    );
    t.row(&[
        "one-way IM".to_string(),
        dist(one_way),
        "typically < 1 s".to_string(),
    ]);
    t.row(&[
        "ack RTT (pessimistic logging)".to_string(),
        dist(rtt),
        "about 1.5 s".to_string(),
    ]);
    t.row(&[
        "ack RTT (logging disabled)".to_string(),
        dist(rtt_no_log),
        "n/a (ablation)".to_string(),
    ]);
    t.row(&[
        "one-way deliveries under 1 s".to_string(),
        format!("{:.0} %", sub_second * 100.0),
        "\"typically\"".to_string(),
    ]);
    tables.push(t);

    (
        E1Numbers {
            one_way_mean: one_way.mean(),
            one_way_sub_second: sub_second,
            ack_rtt_mean: rtt.mean(),
            ack_rtt_no_log_mean: rtt_no_log.mean(),
        },
        tables,
    )
}

/// Runs E1 and packages the result.
pub fn run(seed: u64) -> ExperimentOutput {
    let (numbers, tables) = measure(seed);
    ExperimentOutput {
        id: "E1",
        title: "IM delivery latency and acknowledgement RTT",
        paper_claim: "one-way IM typically < 1 s; ack with pessimistic logging ≈ 1.5 s",
        tables,
        notes: vec![format!(
            "pessimistic logging adds {} to the ack path (the pre-ack fsync)",
            secs(numbers.ack_rtt_mean - numbers.ack_rtt_no_log_mean)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_matches_paper_envelope() {
        let (n, _) = measure(42);
        assert!(n.one_way_mean < 1.0, "one-way mean {}", n.one_way_mean);
        assert!(n.one_way_sub_second >= 0.90, "sub-second {}", n.one_way_sub_second);
        assert!(
            (1.0..2.2).contains(&n.ack_rtt_mean),
            "ack rtt {}",
            n.ack_rtt_mean
        );
        // Logging must cost something, but well under a second.
        let overhead = n.ack_rtt_mean - n.ack_rtt_no_log_mean;
        assert!((0.05..0.8).contains(&overhead), "overhead {overhead}");
    }
}
