//! A5 — "monkey thread" dialog-scan period sweep.
//!
//! §4.1.1: blocking dialog boxes "stay on the screen forever and prevent
//! the entire application from making progress"; the monkey thread scans
//! for them — every 20 seconds in the paper's deployment (§4.2.1). The
//! sweep trades scan frequency against the time the client spends blocked.

use crate::experiments::ExperimentOutput;
use crate::report::Table;
use simba_client::dialogs::DialogBox;
use simba_client::manager::ManagerCore;
use simba_client::process::ClientProcess;
use simba_sim::{SimDuration, SimRng, SimTime, Summary};

/// The sweep points.
pub const PERIODS_SECS: [u64; 5] = [5, 20, 60, 300, 1_800];

/// Days simulated per point.
pub const DAYS: u64 = 30;

/// Mean time between dialog pop-ups.
pub const DIALOG_MTBF_HOURS: u64 = 4;

/// Result of one sweep point.
#[derive(Debug, Clone, Copy)]
pub struct A5Point {
    /// Scan period.
    pub period: SimDuration,
    /// Dialogs injected.
    pub dialogs: u64,
    /// Mean pop→dismiss latency, seconds.
    pub dismiss_mean: f64,
    /// Fraction of total time the client was blocked.
    pub blocked_fraction: f64,
    /// Scans performed.
    pub scans: u64,
}

fn run_point(seed: u64, period: SimDuration) -> A5Point {
    let mut rng = SimRng::new(seed ^ 0xA5);
    let horizon = SimTime::from_days(DAYS);
    let mut core = ManagerCore::new(ClientProcess::new("im-client", 10_000, 0), u64::MAX);
    core.ensure_started(SimTime::ZERO);
    // All captions in this sweep are *known* — the subject is scan latency,
    // not rule coverage (that is E5's unknown-dialog story).
    core.register_dialog_rule("Connection Lost", "Retry");

    // Pre-draw pop times.
    let mut pops = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        t += SimDuration::from_secs_f64(rng.exponential(DIALOG_MTBF_HOURS as f64 * 3_600.0));
        if t >= horizon {
            break;
        }
        pops.push(t);
    }

    let mut dismiss = Summary::new();
    let mut blocked = SimDuration::ZERO;
    let mut scans = 0u64;
    let mut next_pop = 0usize;
    let mut scan_at = SimTime::ZERO + period;
    while scan_at <= horizon {
        // Inject every dialog that popped before this scan.
        while next_pop < pops.len() && pops[next_pop] <= scan_at {
            core.process_mut().inject_dialog(DialogBox::blocking(
                "Connection Lost",
                "Retry",
                pops[next_pop],
            ));
            next_pop += 1;
        }
        let (dismissed, stuck) = core.pump_dialogs();
        assert!(stuck.is_empty(), "all captions are known in this sweep");
        for action in dismissed {
            if let simba_client::manager::RepairAction::DialogDismissed { .. } = action {
                // Latency = scan time − pop time; pops are FIFO-dismissed.
            }
        }
        scans += 1;
        scan_at += period;
    }
    // Latency accounting: each pop is dismissed at the first scan tick at
    // or after it.
    for &pop in &pops {
        let next_scan_ms = pop.as_millis().div_ceil(period.as_millis().max(1)) * period.as_millis();
        let dismissed_at = SimTime::from_millis(next_scan_ms.max(period.as_millis()));
        let wait = dismissed_at - pop;
        dismiss.observe(wait.as_secs_f64());
        blocked += wait;
    }

    A5Point {
        period,
        dialogs: pops.len() as u64,
        dismiss_mean: dismiss.mean(),
        blocked_fraction: blocked.as_secs_f64() / horizon.as_secs_f64(),
        scans,
    }
}

/// Runs the sweep.
pub fn measure(seed: u64) -> (Vec<A5Point>, Vec<Table>) {
    let points: Vec<A5Point> = PERIODS_SECS
        .iter()
        .map(|&secs| run_point(seed, SimDuration::from_secs(secs)))
        .collect();

    let mut t = Table::new(
        "A5: dialog-scan period sweep (blocking dialogs, MTBF 4 h, 30 days)",
        &["scan period", "dialogs", "dismiss mean", "blocked time", "scans"],
    );
    for p in &points {
        t.row(&[
            format!("{}", p.period),
            p.dialogs.to_string(),
            format!("{:.0} s", p.dismiss_mean),
            format!("{:.4} %", p.blocked_fraction * 100.0),
            p.scans.to_string(),
        ]);
    }

    (points, vec![t])
}

/// Runs A5 and packages the result.
pub fn run(seed: u64) -> ExperimentOutput {
    let (points, tables) = measure(seed);
    let paper_point = points
        .iter()
        .find(|p| p.period == SimDuration::from_secs(20))
        .expect("20 s is in the sweep");
    ExperimentOutput {
        id: "A5",
        title: "Monkey-thread dialog-scan period sweep",
        paper_claim: "unprocessed dialog boxes are checked every 20 seconds",
        tables,
        notes: vec![format!(
            "at the paper's 20 s period a blocking dialog stalls the client for {:.0} s on average",
            paper_point.dismiss_mean
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a5_dismiss_latency_is_half_the_period() {
        let (points, _) = measure(42);
        for p in &points {
            assert!(p.dialogs > 100, "dialogs {}", p.dialogs);
            // Uniform pop within a period → mean wait ≈ period / 2.
            let expected = p.period.as_secs_f64() / 2.0;
            let tolerance = expected.mul_add(0.25, 2.0);
            assert!(
                (p.dismiss_mean - expected).abs() < tolerance,
                "period {} mean {} expected {}",
                p.period,
                p.dismiss_mean,
                expected
            );
        }
        // Blocked fraction grows with the period.
        assert!(points[0].blocked_fraction < points[4].blocked_fraction / 10.0);
    }
}
