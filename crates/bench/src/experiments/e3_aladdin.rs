//! E3 — Aladdin end-to-end: remote control → powerline → SSS →
//! multicast → gateway → IM alert.
//!
//! Paper (§5): "From the time the button on the remote control was pushed
//! to the time an IM popped up on the user's screen, the end-to-end
//! delivery took an average of 11 seconds."

use crate::experiments::ExperimentOutput;
use crate::harness::{build, handle, Ev, PipelineOptions};
use crate::report::{dist, secs, Table};
use simba_sim::{SimDuration, SimRng, SimTime, Summary};
use simba_sources::aladdin::{AladdinHome, HomeNetwork, HopLatencies, Sensor};
use std::collections::BTreeMap;

/// Number of button presses simulated.
pub const PRESSES: u64 = 500;

/// Measured numbers.
#[derive(Debug, Clone, Copy)]
pub struct E3Numbers {
    /// Mean button→user-screen latency, seconds (paper: 11).
    pub end_to_end_mean: f64,
    /// Mean in-home chain latency (button → home server), seconds.
    pub chain_mean: f64,
}

/// Runs E3.
pub fn measure(seed: u64) -> (E3Numbers, Vec<Table>) {
    let mut rng = SimRng::new(seed ^ 0xE3);
    let mut home = AladdinHome::new("aladdin-gw", HopLatencies::default());
    home.add_sensor(
        Sensor {
            id: "security-disarm".into(),
            name: "Security Disarm".into(),
            network: HomeNetwork::Rf,
            critical: true,
            heartbeat: SimDuration::from_mins(10),
            max_missing: 5_000, // heartbeats not exercised here
        },
        SimTime::ZERO,
    );

    // Walk the in-home chain for each press; collect per-hop stats and the
    // alert to feed the SIMBA pipeline.
    let mut chain = Summary::new();
    let mut hop_sums: BTreeMap<&'static str, Summary> = BTreeMap::new();
    let mut emissions = Vec::new();
    for i in 0..PRESSES {
        let pressed_at = SimTime::from_secs(60 + i * 120);
        let result = home.trigger_sensor("security-disarm", i % 2 == 0, pressed_at, &mut rng);
        chain.observe(result.total.as_secs_f64());
        for (name, d) in &result.hops {
            hop_sums.entry(name).or_default().observe(d.as_secs_f64());
        }
        let alert = result.alert.expect("critical sensor state change alerts");
        emissions.push((pressed_at + result.total, pressed_at, alert));
    }

    let horizon = emissions.last().expect("presses generated").0 + SimDuration::from_hours(1);
    let mut engine = build(PipelineOptions::new(seed, horizon));
    let mut press_times: BTreeMap<u64, SimTime> = BTreeMap::new();
    for (tag, (emit_at, pressed_at, alert)) in emissions.into_iter().enumerate() {
        press_times.insert(tag as u64, pressed_at);
        engine.schedule_at(emit_at, Ev::Emit { tag: tag as u64, alert });
    }
    engine.run_until(horizon, handle);
    let (world, _) = engine.into_parts();

    // End-to-end = button press → alert reaches the user's screen.
    let mut end_to_end = Summary::new();
    for (tag, track) in &world.tracks {
        if let (Some(pressed), Some(reached)) = (press_times.get(tag), track.reached_user_at) {
            end_to_end.observe((reached - *pressed).as_secs_f64());
        }
    }

    let mut t = Table::new(
        "E3: Aladdin security-disarm scenario, button → user's screen",
        &["stage", "measured mean/p50/p95", "paper"],
    );
    for (name, summary) in &hop_sums {
        t.row(&[format!("  hop: {name}"), dist(summary), "—".to_string()]);
    }
    t.row(&[
        "in-home chain (button → home server)".to_string(),
        dist(&chain),
        "—".to_string(),
    ]);
    t.row(&[
        "end-to-end (button → IM on screen)".to_string(),
        dist(&end_to_end),
        "11 s average".to_string(),
    ]);

    (
        E3Numbers {
            end_to_end_mean: end_to_end.mean(),
            chain_mean: chain.mean(),
        },
        vec![t],
    )
}

/// Runs E3 and packages the result.
pub fn run(seed: u64) -> ExperimentOutput {
    let (numbers, tables) = measure(seed);
    ExperimentOutput {
        id: "E3",
        title: "Aladdin home-networking end-to-end delivery",
        paper_claim: "remote-control button to IM popup averaged 11 seconds",
        tables,
        notes: vec![format!(
            "the in-home chain contributes {} of the total; the rest is SIMBA routing",
            secs(numbers.chain_mean)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_end_to_end_near_eleven_seconds() {
        let (n, _) = measure(42);
        assert!(
            (9.0..13.0).contains(&n.end_to_end_mean),
            "end-to-end {} (paper 11)",
            n.end_to_end_mean
        );
        assert!(n.chain_mean > 6.0 && n.chain_mean < n.end_to_end_mean);
    }
}
