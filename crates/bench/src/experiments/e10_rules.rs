//! E10 — rules hot path throughput + storm correlation into digests.
//!
//! Two claims, one harness. First, the rule engine's `evaluate` call is
//! cheap enough to sit on the ingestion hot path: a single thread pushes
//! a mixed workload (no match / deliver-override / suppress / digest
//! absorb) through per-user indexed rule sets and must clear a floor in
//! evaluations per second. Second, the storm scenario from the paper's
//! motivation (§1: one flapping source must not cost the user thousands
//! of interruptions): a flapping source fires 10 000 alarms at one user
//! through a digest rule and the user receives exactly **one** digest
//! delivery; a critical alert inside the storm cuts through immediately;
//! and interleaved non-storm traffic is delivered exactly once — nothing
//! lost, nothing doubled.
//!
//! The storm half runs on the deterministic tokio shim (virtual time),
//! so the window flush and the exactly-once counts are reproducible; the
//! throughput half times real single-thread wall-clock work.

use crate::benchjson::{BenchMode, BenchReport};
use crate::experiments::ExperimentOutput;
use crate::report::Table;
use simba_core::address::{Address, AddressBook, CommType};
use simba_core::alert::{IncomingAlert, Urgency};
use simba_core::classify::{Classifier, KeywordField};
use simba_core::mab::MabStats;
use simba_core::mode::DeliveryMode;
use simba_core::rejuvenate::RejuvenationPolicy;
use simba_core::subscription::{SubscriptionRegistry, UserId};
use simba_core::MabConfig;
use simba_rules::{Decision, DigestConfig, RuleEngine, RuleSpec, RulesConfig};
use simba_runtime::{
    HostConfig, HostNotice, LoopbackChannels, MabHost, RuntimeNotice, SharedChannels,
};
use simba_sim::{SimDuration, SimTime};
use simba_telemetry::{RingBufferSink, Telemetry};
use std::time::Duration;

/// Workload shape. [`E10Options::full`] is the recorded configuration;
/// [`E10Options::smoke`] is the CI gate.
#[derive(Debug, Clone, Copy)]
pub struct E10Options {
    /// Users in the throughput half (each owns three rules).
    pub users: usize,
    /// Single-thread evaluations timed (multiple of 4: the workload
    /// cycles through four alert shapes).
    pub evals: usize,
    /// Flapping alarms fired into the digest window.
    pub storm_alarms: usize,
    /// Interleaved non-storm alerts that must survive the storm.
    pub normals: usize,
}

impl E10Options {
    /// Full scale: 512 rule-owning users, 400 k timed evaluations,
    /// the paper-shaped 10 k-alarm storm.
    pub fn full() -> Self {
        E10Options { users: 512, evals: 400_000, storm_alarms: 10_000, normals: 100 }
    }

    /// CI smoke: smaller timed half, same 10 k storm (absorption is
    /// cheap — the storm never reaches the delivery pipeline).
    pub fn smoke() -> Self {
        E10Options { users: 64, evals: 80_000, storm_alarms: 10_000, normals: 50 }
    }

    fn validate(&self) {
        assert!(self.users > 0 && self.evals > 0, "empty workload");
        assert!(self.evals.is_multiple_of(4), "evals must be a multiple of 4");
        assert!(self.storm_alarms >= 2 && self.normals >= 1, "storm too small to mean anything");
    }
}

/// Measured headline numbers, exposed for regression tests.
#[derive(Debug, Clone, Copy)]
pub struct E10Numbers {
    /// Rule-owning users in the throughput half.
    pub users: usize,
    /// Timed evaluations.
    pub evals: usize,
    /// Wall seconds for the timed loop.
    pub wall_secs: f64,
    /// Evaluations per second (single thread).
    pub evals_per_sec: f64,
    /// Storm alarms fired.
    pub storm_alarms: u64,
    /// Alarms absorbed into the digest window (storm minus the critical
    /// cut-through).
    pub absorbed: u64,
    /// Digest deliveries the storm user received (must be exactly 1).
    pub digest_deliveries: u64,
    /// Critical alerts that bypassed the window (must be exactly 1).
    pub critical_bypass: u64,
    /// Non-storm alerts submitted alongside the storm.
    pub normals: u64,
    /// Non-storm alerts delivered (must equal `normals`, each once).
    pub normals_delivered: u64,
    /// Total channel sends the storm user saw (critical + digest = 2).
    pub storm_user_sends: u64,
}

/// Throughput half: one engine, `users` × 3 rules, a four-shape alert
/// cycle timed over `evals` single-thread evaluations.
fn eval_throughput(opts: E10Options) -> (f64, f64) {
    let engine = RuleEngine::open(RulesConfig::in_memory()).expect("in-memory engine");
    for i in 0..opts.users {
        let user = format!("user{i:04}");
        engine
            .upsert(&user, None, RuleSpec::suppress("mute-heartbeats", "body contains \"heartbeat\""))
            .expect("suppress rule");
        let mut deploy = RuleSpec::deliver("deploys-are-low", "source == \"deploy-bot\"");
        deploy.severity = Some(Urgency::Low);
        engine.upsert(&user, None, deploy).expect("deliver rule");
        engine
            .upsert(
                &user,
                None,
                RuleSpec::digest("collapse-flaps", "source == \"flappy\"", DigestConfig::default()),
            )
            .expect("digest rule");
    }

    // Four shapes: pass-through, severity override, digest absorb,
    // suppress. Exactly a quarter of the workload each.
    let shapes = [
        IncomingAlert::from_im("calm-gw", "Sensor nominal", SimTime::ZERO),
        IncomingAlert::from_im("deploy-bot", "Sensor deploy ok", SimTime::ZERO),
        IncomingAlert::from_im("flappy", "Sensor flapping", SimTime::ZERO),
        IncomingAlert::from_im("calm-gw", "heartbeat tick", SimTime::ZERO),
    ];
    let users: Vec<String> = (0..opts.users).map(|i| format!("user{i:04}")).collect();

    let (mut passed, mut overridden, mut absorbed, mut suppressed) = (0u64, 0u64, 0u64, 0u64);
    let wall = std::time::Instant::now();
    for i in 0..opts.evals {
        let user = &users[i % opts.users];
        match engine.evaluate(user, &shapes[i % 4], 0) {
            Decision::Deliver { rule: None, .. } => passed += 1,
            Decision::Deliver { rule: Some(_), .. } => overridden += 1,
            Decision::Digest { .. } => absorbed += 1,
            Decision::Suppress { .. } => suppressed += 1,
        }
    }
    let wall_secs = wall.elapsed().as_secs_f64();

    let quarter = (opts.evals / 4) as u64;
    assert_eq!(passed, quarter, "pass-through shape miscounted");
    assert_eq!(overridden, quarter, "override shape miscounted");
    assert_eq!(absorbed, quarter, "digest shape miscounted");
    assert_eq!(suppressed, quarter, "suppress shape miscounted");
    assert!(
        engine.pending_digests() <= opts.users,
        "digest state unbounded: one key per user must stay one window per user"
    );

    let rate = if wall_secs > 0.0 { opts.evals as f64 / wall_secs } else { f64::INFINITY };
    (wall_secs, rate)
}

/// One storm-half user: accepts the flapping and steady sources, IM
/// first with a 5 s (virtual) ack window, email fallback.
fn storm_user_config(name: &str) -> MabConfig {
    let mut classifier = Classifier::new();
    classifier.accept_source("flappy", KeywordField::Body, "cfg");
    classifier.accept_source("steady-gw", KeywordField::Body, "cfg");
    classifier.map_keyword("Sensor", "Home");
    let mut registry = SubscriptionRegistry::new();
    let user = UserId::new(name);
    let profile = registry.register_user(user.clone());
    let mut book = AddressBook::new();
    book.add(Address::new("IM", CommType::Im, format!("im:{name}"))).unwrap();
    book.add(Address::new("EM", CommType::Email, format!("{name}@mail"))).unwrap();
    profile.address_book = book;
    profile.define_mode(DeliveryMode::im_then_email(
        "Urgent",
        "IM",
        "EM",
        SimDuration::from_secs(5),
    ));
    registry.subscribe("Home", user, "Urgent").unwrap();
    MabConfig { classifier, registry, rejuvenation: RejuvenationPolicy::default() }
}

struct StormRaw {
    absorbed: u64,
    digest_deliveries: u64,
    critical_bypass: u64,
    normals_delivered: u64,
    storm_user_sends: u64,
}

/// Storm half: 1 flapping source × `storm_alarms` alarms against a
/// digest rule, a critical alert mid-storm, `normals` interleaved
/// non-storm alerts to a second user. Runs on virtual time.
async fn storm(opts: E10Options) -> StormRaw {
    let telemetry = Telemetry::with_sink(std::sync::Arc::new(RingBufferSink::new(256)));
    let engine = std::sync::Arc::new(
        RuleEngine::open_with_telemetry(RulesConfig::in_memory(), telemetry.clone())
            .expect("in-memory engine"),
    );
    engine
        .upsert(
            "storm",
            None,
            RuleSpec::digest(
                "collapse-flaps",
                "source == \"flappy\"",
                DigestConfig { window_ms: 60_000, max_count: 0, max_exemplars: 3, key: None },
            ),
        )
        .expect("digest rule");

    let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(10)));
    let host_config = HostConfig {
        wal_dir: None,
        retirement_grace: SimDuration::ZERO,
        completed_ring: 8,
        notice_capacity: (opts.normals + 8).max(simba_runtime::DEFAULT_NOTICE_CAPACITY),
    };
    let (host, mut notices) = MabHost::new(shared.clone(), host_config);
    let mut host = host.with_rules(engine.clone());
    let storm_user = UserId::new("storm");
    let steady_user = UserId::new("steady");
    host.add_user(storm_user.clone(), storm_user_config("storm")).expect("storm user");
    host.add_user(steady_user.clone(), storm_user_config("steady")).expect("steady user");

    // Interleave: every (storm_alarms / normals)-th alarm is followed by
    // one non-storm alert; the lone critical alarm lands mid-storm.
    let stride = (opts.storm_alarms / opts.normals).max(1);
    let mut normals_sent = 0u64;
    for i in 0..opts.storm_alarms {
        let mut alarm =
            IncomingAlert::from_im("flappy", format!("Sensor flap {i}"), SimTime::ZERO);
        if i == opts.storm_alarms / 2 {
            alarm.urgency = Urgency::Critical;
            alarm.body = "Sensor CRIT meltdown".to_string();
        }
        assert!(host.submit_im(&storm_user, alarm).await, "storm user is hosted");
        if i.is_multiple_of(stride) && normals_sent < opts.normals as u64 {
            let steady =
                IncomingAlert::from_im("steady-gw", format!("Sensor steady {i}"), SimTime::ZERO);
            assert!(host.submit_im(&steady_user, steady).await, "steady user is hosted");
            normals_sent += 1;
        }
    }
    assert_eq!(normals_sent, opts.normals as u64, "stride failed to place every normal alert");

    // Everything except the digest finishes now: the normals plus the
    // critical cut-through. The flap storm is parked in one window.
    let before_flush = normals_sent + 1;
    let mut finished = 0u64;
    while finished < before_flush {
        match notices.recv().await {
            Some(HostNotice { notice: RuntimeNotice::DeliveryFinished { .. }, .. }) => {
                finished += 1;
            }
            Some(_) => {}
            None => panic!("notice stream closed before the pre-flush traffic drained"),
        }
    }
    assert_eq!(engine.pending_digests(), 1, "the storm must collapse into one pending window");
    assert_eq!(host.pump_digests().await, 0, "nothing flushes before the window deadline");

    // Past the deadline the pump delivers exactly one digest.
    tokio::time::sleep(Duration::from_secs(70)).await;
    let digest_deliveries = host.pump_digests().await as u64;
    let mut digest_finished = 0u64;
    while digest_finished < digest_deliveries {
        match notices.recv().await {
            Some(HostNotice { notice: RuntimeNotice::DeliveryFinished { .. }, .. }) => {
                digest_finished += 1;
            }
            Some(_) => {}
            None => panic!("notice stream closed before the digest delivery drained"),
        }
    }
    assert_eq!(engine.pending_digests(), 0, "flush left the window behind");

    let per_user = host.shutdown().await;
    let mut merged = MabStats::default();
    let mut per_name = std::collections::HashMap::new();
    for (user, stats) in &per_user {
        merged.merge(*stats);
        per_name.insert(user.0.clone(), *stats);
    }
    let storm_stats = per_name.get("storm").copied().unwrap_or_default();
    let steady_stats = per_name.get("steady").copied().unwrap_or_default();

    // Exactly-once accounting straight off the channel transcript: the
    // storm user hears twice (critical + digest), the steady user once
    // per alert, and the digest send names the full storm count.
    let sent = shared.with(|c| c.sent().to_vec());
    let storm_sends: Vec<&String> =
        sent.iter().filter(|(_, addr, _)| addr.contains("storm")).map(|(_, _, text)| text).collect();
    let steady_sends = sent.iter().filter(|(_, addr, _)| addr.contains("steady")).count() as u64;
    let digest_text = format!("{} alerts from flappy", opts.storm_alarms as u64 - 1);
    assert!(
        storm_sends.iter().any(|text| text.contains(&digest_text)),
        "digest send must carry the full absorbed count ({digest_text:?}); got {storm_sends:?}"
    );
    assert!(
        storm_sends.iter().any(|text| text.contains("CRIT meltdown")),
        "critical alarm must cut through the window"
    );

    let metrics = telemetry.metrics().snapshot();
    assert_eq!(
        metrics.counter("rules.digest_absorbed"),
        opts.storm_alarms as u64 - 1,
        "every non-critical alarm is absorbed"
    );
    assert_eq!(merged.deliveries_started, normals_sent + 2, "normals + critical + digest");
    assert_eq!(steady_stats.deliveries_started, normals_sent, "no non-storm alert lost");
    assert_eq!(steady_sends, normals_sent, "no non-storm alert double-delivered");
    assert_eq!(storm_stats.deliveries_started, 2, "storm user hears exactly twice");

    StormRaw {
        absorbed: metrics.counter("rules.digest_absorbed"),
        digest_deliveries,
        critical_bypass: metrics.counter("rules.critical_bypass"),
        normals_delivered: steady_stats.deliveries_started,
        storm_user_sends: storm_sends.len() as u64,
    }
}

/// Runs both halves and returns the headline numbers plus tables. The
/// exactly-once and collapse assertions run inside; a violated invariant
/// panics rather than reporting a degraded number.
pub fn measure(opts: E10Options) -> (E10Numbers, Vec<Table>) {
    opts.validate();
    let (wall_secs, evals_per_sec) = eval_throughput(opts);
    let raw = tokio::runtime::block_on_test(true, async move { storm(opts).await });

    let numbers = E10Numbers {
        users: opts.users,
        evals: opts.evals,
        wall_secs,
        evals_per_sec,
        storm_alarms: opts.storm_alarms as u64,
        absorbed: raw.absorbed,
        digest_deliveries: raw.digest_deliveries,
        critical_bypass: raw.critical_bypass,
        normals: opts.normals as u64,
        normals_delivered: raw.normals_delivered,
        storm_user_sends: raw.storm_user_sends,
    };

    let mut hot = Table::new(
        "E10: rule-evaluation hot path (single thread)",
        &["users", "rules", "evaluations", "wall (s)", "evals/s"],
    );
    hot.row(&[
        numbers.users.to_string(),
        (numbers.users * 3).to_string(),
        numbers.evals.to_string(),
        format!("{:.3}", numbers.wall_secs),
        format!("{:.0}", numbers.evals_per_sec),
    ]);

    let mut storm_table = Table::new(
        "E10: storm correlation (virtual time)",
        &["alarms", "absorbed", "digest deliveries", "critical bypass", "normals", "delivered"],
    );
    storm_table.row(&[
        numbers.storm_alarms.to_string(),
        numbers.absorbed.to_string(),
        numbers.digest_deliveries.to_string(),
        numbers.critical_bypass.to_string(),
        numbers.normals.to_string(),
        numbers.normals_delivered.to_string(),
    ]);

    (numbers, vec![hot, storm_table])
}

/// Full-run floor: the hot path must clear 100 k single-thread
/// evaluations per second — comfortably off the ingestion critical path.
pub const FULL_EVAL_FLOOR: f64 = 100_000.0;
/// See [`FULL_EVAL_FLOOR`] — relaxed for loaded CI machines.
pub const SMOKE_EVAL_FLOOR: f64 = 40_000.0;

/// Runs E10 with `opts`, writes `BENCH_e10.json`, and asserts the floors.
pub fn run_with(opts: E10Options, mode: BenchMode) -> ExperimentOutput {
    let (numbers, tables) = measure(opts);

    let mut bench = BenchReport::new("E10", mode);
    bench
        .metric("evals_per_sec", numbers.evals_per_sec, "evals/s")
        .metric("evals", numbers.evals as f64, "evals")
        .metric("eval_wall_secs", numbers.wall_secs, "s")
        .metric("storm_alarms", numbers.storm_alarms as f64, "alerts")
        .metric("storm_absorbed", numbers.absorbed as f64, "alerts")
        .metric("digest_deliveries", numbers.digest_deliveries as f64, "deliveries")
        .metric("critical_bypass", numbers.critical_bypass as f64, "alerts")
        .metric("normals", numbers.normals as f64, "alerts")
        .metric("normals_delivered", numbers.normals_delivered as f64, "deliveries")
        .metric("storm_user_sends", numbers.storm_user_sends as f64, "sends");
    let floor = match mode {
        BenchMode::Full => FULL_EVAL_FLOOR,
        BenchMode::Smoke => SMOKE_EVAL_FLOOR,
    };
    bench.floor("evals_per_sec", floor, numbers.evals_per_sec);
    // Structural floors: the storm collapses to one delivery, critical
    // cuts through, and non-storm traffic is neither lost nor doubled.
    bench.floor("digest_single", 0.0, -((numbers.digest_deliveries as f64) - 1.0).abs());
    bench.floor("critical_bypass", 1.0, numbers.critical_bypass as f64);
    bench.floor(
        "normals_exact",
        0.0,
        -((numbers.normals_delivered as f64) - (numbers.normals as f64)).abs(),
    );
    bench.write();
    assert!(
        numbers.evals_per_sec >= floor,
        "evaluation floor: {:.0} evals/s < {floor:.0}",
        numbers.evals_per_sec
    );

    ExperimentOutput {
        id: "E10",
        title: "rule-evaluation hot path and storm correlation into digests",
        paper_claim: "§1 motivation: a flapping source must interrupt the user once, not \
                      thousands of times — without costing the ingestion path its throughput",
        tables,
        notes: vec![
            format!(
                "{} single-thread evaluations over {} users × 3 rules at {:.0} evals/s \
                 (floor {:.0})",
                numbers.evals, numbers.users, numbers.evals_per_sec, floor
            ),
            format!(
                "storm: {} alarms collapsed into {} digest delivery ({} absorbed), {} critical \
                 cut-through; {} / {} interleaved non-storm alerts delivered exactly once",
                numbers.storm_alarms,
                numbers.digest_deliveries,
                numbers.absorbed,
                numbers.critical_bypass,
                numbers.normals_delivered,
                numbers.normals,
            ),
        ],
    }
}

/// Runs E10 at full scale (the recorded shape).
pub fn run(_seed: u64) -> ExperimentOutput {
    run_with(E10Options::full(), BenchMode::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_tiny_storm_collapses_and_loses_nothing() {
        // Deterministic shape at test scale: the exactly-once and
        // single-digest assertions run inside measure(); no throughput
        // floor here.
        let opts = E10Options { users: 8, evals: 4_000, storm_alarms: 500, normals: 10 };
        let (numbers, tables) = measure(opts);
        assert_eq!(numbers.digest_deliveries, 1);
        assert_eq!(numbers.critical_bypass, 1);
        assert_eq!(numbers.absorbed, 499);
        assert_eq!(numbers.normals_delivered, 10);
        assert_eq!(numbers.storm_user_sends, 2);
        assert_eq!(tables.len(), 2);
    }
}
