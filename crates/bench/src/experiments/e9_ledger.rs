//! E9 — durable delivery ledger under crash fire: a worker pool drains
//! a disk-backed leased queue while workers are killed mid-send and
//! every outstanding lease is forcibly expired, and the acceptance
//! invariant holds — zero accepted-then-lost, zero double-visible-send.
//!
//! The tentpole claim (DESIGN.md §13): once a channel attempt is
//! committed to the `alert_deliveries` ledger, *some* worker eventually
//! produces its visible effect exactly once, regardless of which workers
//! die in between. The experiment drives that end to end:
//!
//! * enqueue `deliveries` records (full scale: 100 000) into an on-disk
//!   ledger and group-commit them — this is the §4.2.1 durable-before-ack
//!   boundary moved down a layer;
//! * drain with `workers` OS threads (the thread-per-shard runner shape),
//!   leases granted durably before any send;
//! * at ~25 % progress, throw the kill switch on `kills` workers (they
//!   stop dead between sends, recording nothing) and force-expire every
//!   outstanding lease — the worst legal interleaving;
//! * survivors reclaim the abandoned leases; the channel adapter counts
//!   effects per idempotency key;
//! * assert the matrix: ledger fully drained, every key's effect count
//!   exactly 1, expiries and reclaims actually happened.
//!
//! Throughput (deliveries per wall second over the drain window) is
//! recorded in `BENCH_e9.json` and guarded by floors: the full shape
//! must clear 50 k deliveries/s, the CI smoke shape 20 k.

use crate::benchjson::{BenchMode, BenchReport};
use crate::experiments::ExperimentOutput;
use crate::report::Table;
use simba_core::address::CommType;
use simba_core::subscription::UserId;
use simba_ledger::{
    ChannelResult, DeliveryLedger, LedgerChannels, LedgerClock, LedgerConfig, LedgerWorkerPool,
    LeasedWork, PoolStats, WorkerPoolConfig,
};
use simba_sim::{SimDuration, SimTime};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

/// Experiment shape. [`E9Options::full`] is the recorded configuration;
/// [`E9Options::smoke`] the CI shape (same code paths, reduced scale).
#[derive(Debug, Clone, Copy)]
pub struct E9Options {
    /// Channel attempts enqueued (one ledger record each).
    pub deliveries: usize,
    /// Pool workers (OS threads in the measured shape).
    pub workers: usize,
    /// Workers killed mid-run. Must be < `workers`.
    pub kills: usize,
    /// Leases granted per worker cycle (commit amortization lever).
    pub batch: usize,
    /// Thread-per-worker (the measured shape) vs. local tasks on a
    /// paused executor (the deterministic unit-test shape).
    pub threads: bool,
}

impl E9Options {
    /// Full scale: 4 workers × 100 k deliveries, 2 killed.
    pub fn full() -> Self {
        E9Options { deliveries: 100_000, workers: 4, kills: 2, batch: 256, threads: true }
    }

    /// CI smoke: 4 workers × 20 k deliveries, 2 killed.
    pub fn smoke() -> Self {
        E9Options { deliveries: 20_000, workers: 4, kills: 2, batch: 256, threads: true }
    }

    fn validate(&self) {
        assert!(self.workers >= 1, "need at least one worker");
        assert!(self.kills < self.workers, "at least one worker must survive the kills");
        assert!(self.deliveries >= 1, "need at least one delivery");
    }
}

/// Measured headline numbers, exposed for regression tests.
#[derive(Debug, Clone, Copy)]
pub struct E9Numbers {
    /// Records enqueued (== deliveries requested).
    pub deliveries: u64,
    /// Distinct idempotency keys that produced a visible effect.
    pub effects: u64,
    /// Keys whose effect happened more than once (must be zero).
    pub double_effects: u64,
    /// Workers killed mid-run.
    pub killed: u64,
    /// Leases that expired and were reclaimed by another grant.
    pub lease_expiries: u64,
    /// Sends the adapters absorbed as idempotent duplicates.
    pub deduped: u64,
    /// Outcome reports rejected as stale (the losing side of races).
    pub stale_reports: u64,
    /// Failed sends retried under backoff.
    pub retried: u64,
    /// Records dead-lettered (must be zero — no send is permanently
    /// failing in this shape).
    pub dead_lettered: u64,
    /// Group commits the ledger performed.
    pub commit_batches: u64,
    /// Ledger records per group commit.
    pub records_per_commit: f64,
    /// Journal segments rotated during the run.
    pub segments_rotated: u64,
    /// Wall-clock seconds from pool spawn to drain.
    pub wall_secs: f64,
    /// Deliveries per wall-clock second.
    pub throughput: f64,
}

/// The counting adapter: one entry per idempotency key, `Duplicate` on
/// re-sight — the same contract `runtime::LedgerChannelBridge` installs
/// over real channels, reduced to its observable core so the bench
/// measures the ledger, not a channel simulation.
struct CountingChannels {
    effects: Arc<Mutex<HashMap<String, u32>>>,
}

impl LedgerChannels for CountingChannels {
    fn send(&mut self, work: &LeasedWork) -> ChannelResult {
        let mut effects = self.effects.lock().unwrap_or_else(PoisonError::into_inner);
        let count = effects.entry(work.idempotency_key.clone()).or_insert(0);
        if *count > 0 {
            ChannelResult::Duplicate
        } else {
            *count += 1;
            ChannelResult::Sent
        }
    }
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simba-e9-ledger-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create E9 scratch dir");
    dir
}

struct RawE9 {
    pool: PoolStats,
    ledger: simba_ledger::LedgerStats,
    effects: HashMap<String, u32>,
    wall_secs: f64,
}

async fn drive(opts: E9Options, dir: &PathBuf, clock: LedgerClock) -> RawE9 {
    let config = LedgerConfig {
        // Short leases: abandoned work must be reclaimable well inside
        // the bench window even without the forced expiry.
        lease_duration: SimDuration::from_millis(200),
        base_backoff: SimDuration::from_millis(1),
        max_backoff: SimDuration::from_millis(20),
        ..LedgerConfig::on_disk(dir)
    };
    let ledger = Arc::new(Mutex::new(DeliveryLedger::open(config).expect("open E9 ledger")));
    let effects: Arc<Mutex<HashMap<String, u32>>> = Arc::new(Mutex::new(HashMap::new()));

    // Accept everything up front: one enqueue per delivery, one group
    // commit for the lot. From here on the records are owned durably.
    {
        let mut guard = ledger.lock().unwrap_or_else(PoisonError::into_inner);
        for i in 0..opts.deliveries {
            let user = UserId::new(format!("user-{i}"));
            guard.enqueue(&user, i as u64, CommType::Im, "im:addr", "alert", SimTime::ZERO);
        }
        guard.commit().expect("commit enqueues");
        // One worker "crashed" before the pool even started: a batch of
        // leases durably granted to an id that will never report. The
        // forced expiry below hands them to the live pool — so the
        // reclaim path is exercised even on the deterministic
        // single-task executor, where the pool's own kill always lands
        // between (atomic) batch cycles.
        if opts.kills > 0 {
            let phantom = simba_ledger::WorkerId::new("pre-crash");
            let orphaned = guard.lease(&phantom, SimTime::ZERO, opts.batch);
            assert!(!orphaned.is_empty(), "phantom worker must orphan some leases");
            guard.commit().expect("commit phantom leases");
        }
    }

    let adapters: Vec<Box<dyn LedgerChannels>> = (0..opts.workers)
        .map(|_| {
            Box::new(CountingChannels { effects: Arc::clone(&effects) })
                as Box<dyn LedgerChannels>
        })
        .collect();
    let wall = std::time::Instant::now();
    let pool = LedgerWorkerPool::spawn(
        Arc::clone(&ledger),
        adapters,
        clock,
        WorkerPoolConfig {
            workers: opts.workers,
            batch: opts.batch,
            threads: opts.threads,
            ..WorkerPoolConfig::default()
        },
    )
    .expect("spawn E9 pool");

    // Crash injection at ~25 % progress: kill switches stop the victims
    // dead between sends (they record nothing), and the forced expiry
    // hands every outstanding lease — the victims' and the survivors' —
    // to whoever leases next.
    if opts.kills > 0 {
        let quarter = (opts.deliveries / 4).max(1);
        loop {
            let done = effects.lock().unwrap_or_else(PoisonError::into_inner).len();
            if done >= quarter {
                break;
            }
            tokio::time::sleep(std::time::Duration::from_millis(1)).await;
        }
        for victim in 0..opts.kills {
            pool.kill(victim);
        }
        ledger.lock().unwrap_or_else(PoisonError::into_inner).force_expire_leases();
    }

    let pool_stats = pool.drain().await;
    let wall_secs = wall.elapsed().as_secs_f64();

    let guard = ledger.lock().unwrap_or_else(PoisonError::into_inner);
    assert!(guard.is_drained(), "ledger must drain: {:?}", guard.counts());
    let ledger_stats = guard.stats();
    drop(guard);
    let effects = Arc::try_unwrap(effects)
        .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
        .unwrap_or_else(|arc| arc.lock().unwrap_or_else(PoisonError::into_inner).clone());
    RawE9 { pool: pool_stats, ledger: ledger_stats, effects, wall_secs }
}

/// Runs E9 and returns the headline numbers plus tables.
pub fn measure(opts: E9Options) -> (E9Numbers, Vec<Table>) {
    opts.validate();
    let dir = scratch_dir();
    let raw = if opts.threads {
        let epoch = std::time::Instant::now();
        let clock: LedgerClock =
            Arc::new(move || SimTime::from_millis(epoch.elapsed().as_millis() as u64));
        let dir = dir.clone();
        tokio::runtime::block_on(async move { drive(opts, &dir, clock).await })
    } else {
        let dir = dir.clone();
        tokio::runtime::block_on_test(true, async move {
            let epoch = tokio::time::Instant::now();
            let clock: LedgerClock = Arc::new(move || {
                SimTime::from_millis(
                    tokio::time::Instant::now().duration_since(epoch).as_millis() as u64,
                )
            });
            drive(opts, &dir, clock).await
        })
    };
    let _ = std::fs::remove_dir_all(&dir);

    let total = opts.deliveries as u64;
    let double_effects = raw.effects.values().filter(|&&c| c > 1).count() as u64;
    let commits = raw.ledger.commit_batches.max(1);
    let numbers = E9Numbers {
        deliveries: total,
        effects: raw.effects.len() as u64,
        double_effects,
        killed: raw.pool.killed,
        lease_expiries: raw.ledger.lease_expired,
        deduped: raw.ledger.deduped,
        stale_reports: raw.pool.stale_reports,
        retried: raw.ledger.retried,
        dead_lettered: raw.ledger.dead_lettered,
        commit_batches: raw.ledger.commit_batches,
        records_per_commit: (raw.ledger.enqueued + raw.ledger.leased + raw.ledger.sent) as f64
            / commits as f64,
        segments_rotated: raw.ledger.segments_rotated,
        wall_secs: raw.wall_secs,
        throughput: if raw.wall_secs > 0.0 {
            total as f64 / raw.wall_secs
        } else {
            f64::INFINITY
        },
    };

    // The acceptance matrix — all hard assertions, not report lines.
    assert_eq!(numbers.effects, total, "zero accepted-then-lost");
    assert_eq!(numbers.double_effects, 0, "zero double-visible-send");
    assert_eq!(numbers.killed, opts.kills as u64, "every kill switch landed");
    assert_eq!(numbers.dead_lettered, 0, "nothing may dead-letter in the clean shape");
    if opts.kills > 0 {
        assert!(
            numbers.lease_expiries > 0,
            "the forced expiry must actually reclaim leases"
        );
    }

    let mut config = Table::new(
        "E9: ledger crash-drain configuration",
        &["deliveries", "workers", "killed", "batch", "threads"],
    );
    config.row(&[
        total.to_string(),
        opts.workers.to_string(),
        opts.kills.to_string(),
        opts.batch.to_string(),
        opts.threads.to_string(),
    ]);

    let mut matrix = Table::new(
        "E9: exactly-once matrix (all asserted)",
        &["enqueued", "effects", "double effects", "lost", "dead-lettered"],
    );
    matrix.row(&[
        total.to_string(),
        numbers.effects.to_string(),
        numbers.double_effects.to_string(),
        (total - numbers.effects).to_string(),
        numbers.dead_lettered.to_string(),
    ]);

    let mut crash = Table::new(
        "E9: crash traffic absorbed",
        &["workers killed", "lease expiries", "idempotent dedups", "stale reports", "retries"],
    );
    crash.row(&[
        numbers.killed.to_string(),
        numbers.lease_expiries.to_string(),
        numbers.deduped.to_string(),
        numbers.stale_reports.to_string(),
        numbers.retried.to_string(),
    ]);

    let mut durability = Table::new(
        "E9: group-commit journal",
        &["group commits", "records/commit", "segments rotated"],
    );
    durability.row(&[
        numbers.commit_batches.to_string(),
        format!("{:.1}", numbers.records_per_commit),
        numbers.segments_rotated.to_string(),
    ]);

    let mut perf = Table::new(
        "E9: wall-clock throughput",
        &["deliveries", "wall seconds", "deliveries/s"],
    );
    perf.row(&[
        total.to_string(),
        format!("{:.2}", numbers.wall_secs),
        format!("{:.0}", numbers.throughput),
    ]);

    (numbers, vec![config, matrix, crash, durability, perf])
}

/// Throughput floors (deliveries/s), regression guards on the recorded
/// numbers with headroom for a loaded CI box. The full 100 k shape
/// clears well above 50 k/s on the reference machine; the smoke shape
/// pays the same fixed costs over a fifth of the work.
pub const FULL_THROUGHPUT_FLOOR: f64 = 50_000.0;
/// See [`FULL_THROUGHPUT_FLOOR`].
pub const SMOKE_THROUGHPUT_FLOOR: f64 = 20_000.0;

/// Runs E9 at the given shape, writes `BENCH_e9.json`, asserts floors.
pub fn run_with(opts: E9Options, mode: BenchMode) -> ExperimentOutput {
    let (numbers, tables) = measure(opts);

    let mut bench = BenchReport::new("E9", mode);
    bench
        .metric("throughput", numbers.throughput, "deliveries/s")
        .metric("deliveries", numbers.deliveries as f64, "deliveries")
        .metric("effects", numbers.effects as f64, "effects")
        .metric("double_effects", numbers.double_effects as f64, "effects")
        .metric("workers_killed", numbers.killed as f64, "workers")
        .metric("lease_expiries", numbers.lease_expiries as f64, "leases")
        .metric("idempotent_dedups", numbers.deduped as f64, "sends")
        .metric("stale_reports", numbers.stale_reports as f64, "reports")
        .metric("retries", numbers.retried as f64, "sends")
        .metric("commit_batches", numbers.commit_batches as f64, "commits")
        .metric("records_per_commit", numbers.records_per_commit, "records")
        .metric("segments_rotated", numbers.segments_rotated as f64, "segments")
        .metric("wall_secs", numbers.wall_secs, "s");
    let floor = match mode {
        BenchMode::Full => FULL_THROUGHPUT_FLOOR,
        BenchMode::Smoke => SMOKE_THROUGHPUT_FLOOR,
    };
    bench.floor("throughput", floor, numbers.throughput);
    // Structural floors: nothing lost, nothing doubled.
    bench.floor("effects", numbers.deliveries as f64, numbers.effects as f64);
    bench.floor("double_effects_zero", 0.0, -(numbers.double_effects as f64));
    bench.write();
    assert!(
        numbers.throughput >= floor,
        "throughput floor: {:.0} deliveries/s < {floor:.0}",
        numbers.throughput
    );

    ExperimentOutput {
        id: "E9",
        title: "durable delivery ledger under worker kills and forced lease expiry",
        paper_claim: "§4.2.1 durable-before-ack, generalized: a committed channel attempt \
                      survives any worker crash and produces exactly one visible send",
        tables,
        notes: vec![
            format!(
                "{} deliveries drained by {} workers ({} killed mid-run) at {:.0} deliveries/s; \
                 {} leases force-expired and reclaimed, {} redeliveries absorbed as idempotent \
                 duplicates — zero lost, zero double-effect",
                numbers.deliveries,
                opts.workers,
                numbers.killed,
                numbers.throughput,
                numbers.lease_expiries,
                numbers.deduped,
            ),
            format!(
                "group commit amortized {:.1} ledger records per fsync-equivalent commit \
                 across {} commits ({} segment rotations)",
                numbers.records_per_commit, numbers.commit_batches, numbers.segments_rotated
            ),
        ],
    }
}

/// Runs E9 at full scale (the recorded shape).
pub fn run(_seed: u64) -> ExperimentOutput {
    run_with(E9Options::full(), BenchMode::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_tiny_shape_holds_the_matrix() {
        // Deterministic shape: local tasks on the paused executor, one
        // kill. The exactly-once assertions run inside measure(); no
        // throughput floor at test scale.
        let opts =
            E9Options { deliveries: 300, workers: 3, kills: 1, batch: 16, threads: false };
        let (n, _) = measure(opts);
        assert_eq!(n.deliveries, 300);
        assert_eq!(n.effects, 300);
        assert_eq!(n.double_effects, 0);
        assert_eq!(n.killed, 1);
        assert!(n.lease_expiries > 0, "the kill must abandon at least one lease");
        assert!(n.commit_batches > 0);
    }
}
