//! E6 — alert ingestion gateway under multi-connection TCP load.
//!
//! The paper's dependability argument starts at the front door: an alert
//! that the service *accepted* must never be silently lost, and overload
//! must be refused explicitly rather than by stalling (§3, §4.2). This
//! harness drives the `simba-gateway` TCP server with a multi-connection
//! loadgen — injected connection drops, an optional slow-loris client —
//! into a live 50-user [`MabHost`], and checks the ledger balances:
//!
//! * **zero accepted-then-lost**: every client-side `Ack` shows up as a
//!   pump-routed submission and a started delivery;
//! * **no silent drops**: `sent == accepted + rejected`, and every
//!   rejection is accounted under `gateway.shed` / `gateway.unknown_user`
//!   / `gateway.decode_err`;
//! * **throughput**: the accepted stream sustains ≥ 10 k alerts/s over
//!   localhost TCP (asserted at full scale, reported always);
//! * a rate-limit sweep shows the shed curve: tighter buckets shed more,
//!   and the accounting still balances at every point.

use crate::benchjson::{BenchMode, BenchReport};
use crate::experiments::ExperimentOutput;
use crate::report::Table;
use simba_core::address::{Address, AddressBook, CommType};
use simba_core::classify::{Classifier, KeywordField};
use simba_core::mode::DeliveryMode;
use simba_core::rejuvenate::RejuvenationPolicy;
use simba_core::subscription::{SubscriptionRegistry, UserId};
use simba_core::MabConfig;
use simba_gateway::proto::WireChannel;
use simba_gateway::{
    intake, pump_into_host, ClientConfig, GatewayClient, GatewayConfig, GatewayServer, RateLimit,
    SubmitResult,
};
use simba_runtime::{HostConfig, LoopbackChannels, MabHost, SharedChannels};
use simba_sim::SimDuration;
use simba_telemetry::{RingBufferSink, Telemetry};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load shape for one gateway run.
#[derive(Debug, Clone, Copy)]
pub struct GatewayBenchOptions {
    /// Hosted users (alerts round-robin across them).
    pub users: usize,
    /// Concurrent loadgen connections.
    pub connections: usize,
    /// Alerts submitted per connection.
    pub alerts_per_conn: usize,
    /// Sever and transparently re-dial every Nth submission (client
    /// crash injection); `None` keeps connections up.
    pub drop_every: Option<usize>,
    /// Add a connection that sends half a frame header and stalls.
    pub slow_loris: bool,
    /// Per-source token bucket handed to the gateway.
    pub rate_limit: Option<RateLimit>,
    /// Intake queue capacity between the workers and the host pump.
    pub queue: usize,
}

impl GatewayBenchOptions {
    /// Full-scale defaults: 50 users, 8 connections × 2 500 alerts, a
    /// drop every 500 submissions, one slow loris, no rate limit.
    pub fn full() -> Self {
        GatewayBenchOptions {
            users: 50,
            connections: 8,
            alerts_per_conn: 2_500,
            drop_every: Some(500),
            slow_loris: true,
            rate_limit: None,
            queue: 4_096,
        }
    }

    /// CI smoke: 1 000 alerts over 2 connections, drops injected, no
    /// throughput floor asserted.
    pub fn smoke() -> Self {
        GatewayBenchOptions {
            users: 10,
            connections: 2,
            alerts_per_conn: 500,
            drop_every: Some(100),
            slow_loris: true,
            rate_limit: None,
            queue: 1_024,
        }
    }
}

/// The balanced ledger from one run, exposed for regression tests.
#[derive(Debug, Clone, Copy)]
pub struct GatewayNumbers {
    /// Submissions the clients sent (acked or nacked).
    pub sent: u64,
    /// ... acked by the gateway.
    pub accepted: u64,
    /// ... nacked with a shed reason (queue-full / rate-limited / busy).
    pub rejected_shed: u64,
    /// ... nacked as unknown users.
    pub rejected_unknown: u64,
    /// Client reconnections performed (injected drops).
    pub reconnects: u64,
    /// Submissions the pump handed to a hosted user's service.
    pub routed: u64,
    /// Deliveries the host fleet actually started.
    pub deliveries_started: u64,
    /// `gateway.shed` as the server counted it.
    pub counter_shed: u64,
    /// `gateway.decode_err` as the server counted it.
    pub counter_decode_err: u64,
    /// `gateway.idle_closed` (the slow loris shows up here).
    pub counter_idle_closed: u64,
    /// Wall-clock seconds of the submission phase.
    pub wall_secs: f64,
    /// Accepted alerts per wall-clock second.
    pub throughput: f64,
}

fn user_config(name: &str) -> MabConfig {
    let mut classifier = Classifier::new();
    classifier.accept_source("bench-gw", KeywordField::Body, "cfg");
    classifier.map_keyword("Sensor", "Home");
    let mut registry = SubscriptionRegistry::new();
    let user = UserId::new(name);
    let profile = registry.register_user(user.clone());
    let mut book = AddressBook::new();
    book.add(Address::new("IM", CommType::Im, format!("im:{name}"))).unwrap();
    book.add(Address::new("EM", CommType::Email, format!("{name}@mail"))).unwrap();
    profile.address_book = book;
    profile.define_mode(DeliveryMode::im_then_email(
        "Urgent",
        "IM",
        "EM",
        SimDuration::from_secs(60),
    ));
    registry.subscribe("Home", user, "Urgent").unwrap();
    MabConfig { classifier, registry, rejuvenation: RejuvenationPolicy::default() }
}

/// What one loadgen connection observed.
#[derive(Debug, Default, Clone, Copy)]
struct ConnLedger {
    sent: u64,
    accepted: u64,
    rejected_shed: u64,
    rejected_unknown: u64,
    reconnects: u64,
}

/// Runs one full gateway → host pipeline and returns the ledger.
pub fn measure(opts: GatewayBenchOptions) -> GatewayNumbers {
    let telemetry = Telemetry::with_sink(Arc::new(RingBufferSink::new(1_024)));
    let (intake_tx, intake_rx) = intake(opts.queue);
    let names: Vec<String> = (0..opts.users).map(|i| format!("user{i:03}")).collect();
    let config = GatewayConfig {
        // One worker per loadgen connection plus slack for the loris and
        // reconnect transients: contention stays on the intake queue,
        // where the admission story lives, not on worker starvation.
        workers: opts.connections + 2,
        idle_timeout: Duration::from_millis(500),
        rate_limit: opts.rate_limit,
        known_users: Some(names.iter().cloned().collect()),
        ..GatewayConfig::default()
    };
    let server = GatewayServer::bind(config, intake_tx, telemetry.clone())
        .expect("bind gateway on an ephemeral port");
    let addr = server.local_addr();

    let started = Instant::now();
    let loadgens: Vec<_> = (0..opts.connections)
        .map(|conn| {
            let users = opts.users;
            let alerts = opts.alerts_per_conn;
            let drop_every = opts.drop_every;
            std::thread::spawn(move || {
                let mut client = GatewayClient::connect(addr.to_string(), ClientConfig::default())
                    .expect("loadgen connects");
                let mut ledger = ConnLedger::default();
                for i in 0..alerts {
                    if let Some(n) = drop_every {
                        if i > 0 && i % n == 0 {
                            client.drop_connection();
                        }
                    }
                    let user = format!("user{:03}", (conn + i * 7) % users);
                    let body = format!("Sensor wave {i} ON");
                    match client
                        .submit(WireChannel::Im, &user, "bench-gw", &body)
                        .expect("submit survives reconnects")
                    {
                        SubmitResult::Accepted => ledger.accepted += 1,
                        SubmitResult::Rejected { reason, .. } if reason.is_shed() => {
                            ledger.rejected_shed += 1
                        }
                        SubmitResult::Rejected { .. } => ledger.rejected_unknown += 1,
                    }
                    ledger.sent += 1;
                }
                ledger.reconnects = client.reconnects;
                ledger
            })
        })
        .collect();

    let loris = opts.slow_loris.then(|| {
        std::thread::spawn(move || {
            use std::io::Write as _;
            let mut stream = std::net::TcpStream::connect(addr).expect("loris connects");
            let partial =
                simba_gateway::proto::encode_to_vec(&simba_gateway::Frame::Probe { nonce: 1 });
            stream.write_all(&partial[..simba_gateway::proto::HEADER_LEN / 2]).unwrap();
            // Stall well past the gateway's idle_timeout, then go away.
            std::thread::sleep(Duration::from_millis(1_500));
        })
    });

    // The supervisor joins the load, then shuts the server down — that
    // drops the worker-held intake senders, which is what ends the pump.
    let supervisor = std::thread::spawn(move || {
        let ledgers: Vec<ConnLedger> = loadgens.into_iter().map(|t| t.join().unwrap()).collect();
        let wall_secs = started.elapsed().as_secs_f64();
        if let Some(loris) = loris {
            let _ = loris.join();
        }
        server.shutdown();
        (ledgers, wall_secs)
    });

    let pump_telemetry = telemetry.clone();
    let (report, per_user) = tokio::runtime::block_on(async move {
        let shared = SharedChannels::new(LoopbackChannels::always_ack(Duration::from_millis(5)));
        let (host, _notices) = MabHost::new(shared, HostConfig::default());
        let mut host = host.with_telemetry(pump_telemetry.clone());
        for name in &names {
            host.add_user(UserId::new(name.clone()), user_config(name)).expect("fresh user");
        }
        let report = pump_into_host(&host, intake_rx, &pump_telemetry).await;
        let per_user = host.shutdown().await;
        (report, per_user)
    });
    let (ledgers, wall_secs) = supervisor.join().unwrap();

    let mut totals = ConnLedger::default();
    for l in &ledgers {
        totals.sent += l.sent;
        totals.accepted += l.accepted;
        totals.rejected_shed += l.rejected_shed;
        totals.rejected_unknown += l.rejected_unknown;
        totals.reconnects += l.reconnects;
    }
    let deliveries_started: u64 = per_user.iter().map(|(_, s)| s.deliveries_started).sum();
    let snap = telemetry.metrics().snapshot();

    let numbers = GatewayNumbers {
        sent: totals.sent,
        accepted: totals.accepted,
        rejected_shed: totals.rejected_shed,
        rejected_unknown: totals.rejected_unknown,
        reconnects: totals.reconnects,
        routed: report.routed,
        deliveries_started,
        counter_shed: snap.counter("gateway.shed"),
        counter_decode_err: snap.counter("gateway.decode_err"),
        counter_idle_closed: snap.counter("gateway.idle_closed"),
        wall_secs,
        throughput: if wall_secs > 0.0 { totals.accepted as f64 / wall_secs } else { 0.0 },
    };

    // The dependability ledger. These hold at every scale — a violation
    // is a bug, not a tuning problem.
    assert_eq!(
        numbers.sent,
        numbers.accepted + numbers.rejected_shed + numbers.rejected_unknown,
        "every submission resolved to exactly one ack or nack"
    );
    assert_eq!(
        numbers.accepted, numbers.routed,
        "zero accepted-then-lost: every ack was routed into the host"
    );
    assert_eq!(report.unrouted, 0, "the known-user gate admits only hosted users");
    assert_eq!(
        numbers.routed, numbers.deliveries_started,
        "every routed alert started a delivery"
    );
    assert_eq!(
        numbers.accepted,
        snap.counter("gateway.accepted"),
        "client-side ack count matches the server's counter"
    );
    assert_eq!(
        numbers.rejected_shed, numbers.counter_shed,
        "every shed nack is accounted under gateway.shed"
    );
    assert_eq!(
        numbers.rejected_unknown,
        snap.counter("gateway.unknown_user"),
        "every unknown-user nack is accounted"
    );
    if opts.slow_loris {
        assert!(numbers.counter_idle_closed >= 1, "the slow loris must be reaped");
    }
    if let Some(n) = opts.drop_every {
        let expected: u64 =
            ledgers.iter().map(|_| ((opts.alerts_per_conn - 1) / n) as u64).sum();
        assert_eq!(numbers.reconnects, expected, "every injected drop forced a reconnect");
    }
    numbers
}

/// Regression floor for the full-scale gateway load (recorded ≈ 34 k
/// accepted alerts/s over localhost TCP).
pub const FULL_THROUGHPUT_FLOOR: f64 = 10_000.0;
/// Regression floor for the CI smoke shape (`make gateway-smoke`).
pub const SMOKE_THROUGHPUT_FLOOR: f64 = 1_000.0;

/// Runs the headline load plus a rate-limit shed sweep, writes
/// `BENCH_e6.json`, asserts the throughput floor, and renders the tables.
pub fn run_with(opts: GatewayBenchOptions, mode: BenchMode) -> ExperimentOutput {
    let n = measure(opts);

    let mut bench = BenchReport::new("E6", mode);
    bench
        .metric("throughput", n.throughput, "alerts/s")
        .metric("accepted", n.accepted as f64, "alerts")
        .metric("shed", n.rejected_shed as f64, "alerts")
        .metric("reconnects", n.reconnects as f64, "reconnects")
        .metric("deliveries_started", n.deliveries_started as f64, "deliveries")
        .metric("wall_secs", n.wall_secs, "s");
    let floor = match mode {
        BenchMode::Full => FULL_THROUGHPUT_FLOOR,
        BenchMode::Smoke => SMOKE_THROUGHPUT_FLOOR,
    };
    bench.floor("throughput", floor, n.throughput);
    // The dependability floor: nothing accepted may vanish before the
    // host fleet (asserted exactly inside `measure`).
    bench.floor("accepted_all_routed", 0.0, (n.routed as f64) - (n.accepted as f64));
    bench.write();
    assert!(
        n.throughput >= floor,
        "throughput floor: {:.0} alerts/s < {floor:.0}",
        n.throughput
    );

    let mut config = Table::new(
        "E6: gateway load shape",
        &["users", "connections", "alerts/conn", "drop every", "slow loris"],
    );
    config.row(&[
        opts.users.to_string(),
        opts.connections.to_string(),
        opts.alerts_per_conn.to_string(),
        opts.drop_every.map_or("—".into(), |n| n.to_string()),
        opts.slow_loris.to_string(),
    ]);

    let mut ledger = Table::new(
        "E6: the dependability ledger balances",
        &["sent", "accepted", "shed", "unknown", "routed", "deliveries", "reconnects"],
    );
    ledger.row(&[
        n.sent.to_string(),
        n.accepted.to_string(),
        n.rejected_shed.to_string(),
        n.rejected_unknown.to_string(),
        n.routed.to_string(),
        n.deliveries_started.to_string(),
        n.reconnects.to_string(),
    ]);

    let mut perf = Table::new(
        "E6: localhost TCP throughput into a live host fleet",
        &["accepted", "wall seconds", "accepted/s", "idle closed", "decode errors"],
    );
    perf.row(&[
        n.accepted.to_string(),
        format!("{:.2}", n.wall_secs),
        format!("{:.0}", n.throughput),
        n.counter_idle_closed.to_string(),
        n.counter_decode_err.to_string(),
    ]);

    // Shed curve: tighten the per-source bucket and watch explicit
    // refusals grow while the ledger still balances (asserted inside
    // measure). Sources submit flat out, so the bucket binds hard.
    let mut shed = Table::new(
        "E6: rate-limit shed curve (2 connections, 1000 alerts, one source)",
        &["bucket (alerts/s)", "sent", "accepted", "shed", "shed %"],
    );
    for per_sec in [500u32, 2_000, 10_000] {
        let sweep = measure(GatewayBenchOptions {
            users: 10,
            connections: 2,
            alerts_per_conn: 500,
            drop_every: None,
            slow_loris: false,
            rate_limit: Some(RateLimit { burst: per_sec / 2, per_sec }),
            queue: 1_024,
        });
        shed.row(&[
            per_sec.to_string(),
            sweep.sent.to_string(),
            sweep.accepted.to_string(),
            sweep.rejected_shed.to_string(),
            format!("{:.0} %", 100.0 * sweep.rejected_shed as f64 / sweep.sent.max(1) as f64),
        ]);
    }

    ExperimentOutput {
        id: "E6",
        title: "alert ingestion gateway: framed TCP, admission control, load shedding",
        paper_claim: "§3/§4.2: the service interposes on all alert sources; accepted alerts are delivered dependably, overload is refused explicitly",
        tables: vec![config, ledger, perf, shed],
        notes: vec![
            format!(
                "{} accepted alerts, {} injected connection drops, zero accepted-then-lost \
                 (acked == routed == deliveries started, asserted)",
                n.accepted, n.reconnects
            ),
            format!(
                "{:.0} accepted alerts/s over localhost TCP into a {}-user MabHost",
                n.throughput, opts.users
            ),
            "every rejection is a counted, explicit nack: sent == accepted + gateway.shed \
             + gateway.unknown_user at every sweep point"
                .to_string(),
        ],
    }
}

/// Full-scale E6 (the seed only labels the run; the load is deterministic).
pub fn run(_seed: u64) -> ExperimentOutput {
    run_with(GatewayBenchOptions::full(), BenchMode::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_smoke_ledger_balances_with_zero_lost() {
        // 1 000 alerts over real TCP with injected drops and a loris; the
        // zero-accepted-then-lost and full-accounting assertions run
        // inside measure().
        let n = measure(GatewayBenchOptions::smoke());
        assert_eq!(n.sent, 1_000);
        assert_eq!(n.accepted, n.routed);
        assert!(n.reconnects > 0, "drops must actually be injected");
        assert!(n.counter_idle_closed >= 1);
    }

    #[test]
    fn e6_rate_limit_sheds_explicitly() {
        let n = measure(GatewayBenchOptions {
            users: 5,
            connections: 2,
            alerts_per_conn: 250,
            drop_every: None,
            slow_loris: false,
            rate_limit: Some(RateLimit { burst: 50, per_sec: 500 }),
            queue: 256,
        });
        assert!(n.rejected_shed > 0, "a tight bucket must shed");
        assert_eq!(n.rejected_shed, n.counter_shed);
        assert_eq!(n.sent, n.accepted + n.rejected_shed + n.rejected_unknown);
    }
}
