//! E3H — multi-user `MabHost` soak: K per-user buddies × M alerts each.
//!
//! Paper (§3.3): MyAlertBuddy is a *per-user* always-on agent, so a
//! deployment runs many of them concurrently. This harness drives a
//! [`MabHost`] fleet under mixed ack/timeout/failure traffic on the
//! deterministic tokio shim (virtual time) and asserts the delivery
//! lifecycle keeps every in-memory table bounded: once the load drains,
//! in-flight deliveries, the `attempt_owner` routing map, the live-task
//! table, and pending timer tasks all return to zero, and the
//! completed-rings stay at their caps. Wall-clock throughput is reported
//! alongside (the virtual clock makes the traffic pattern reproducible;
//! the wall cost is real scheduler + state-machine work).

use crate::benchjson::{BenchMode, BenchReport};
use crate::experiments::ExperimentOutput;
use crate::report::Table;
use simba_core::address::{Address, AddressBook, CommType};
use simba_core::alert::IncomingAlert;
use simba_core::classify::{Classifier, KeywordField};
use simba_core::delivery::{DeliveryStatus, SendFailure};
use simba_core::mab::MabStats;
use simba_core::mode::DeliveryMode;
use simba_core::rejuvenate::RejuvenationPolicy;
use simba_core::subscription::{SubscriptionRegistry, UserId};
use simba_core::MabConfig;
use simba_runtime::{
    Channels, HostConfig, HostNotice, MabHost, RuntimeNotice, SendOutcome, SharedChannels,
};
use simba_sim::{SimDuration, SimRng, SimTime};
use simba_telemetry::{RingBufferSink, Telemetry};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// Soak shape. [`SoakOptions::new`] gives the full-scale defaults used by
/// `make soak` and the recorded EXPERIMENTS.md numbers.
#[derive(Debug, Clone, Copy)]
pub struct SoakOptions {
    /// Seed for the scripted channel outcomes.
    pub seed: u64,
    /// Hosted users (each with its own MabService).
    pub users: usize,
    /// Alerts submitted to every user.
    pub alerts_per_user: usize,
    /// Per-user completed-ring capacity.
    pub completed_ring: usize,
}

impl SoakOptions {
    /// Full-scale defaults: 50 users × 200 alerts, ring of 32.
    pub fn new(seed: u64) -> Self {
        SoakOptions { seed, users: 50, alerts_per_user: 200, completed_ring: 32 }
    }
}

/// Measured headline numbers, exposed for regression tests.
#[derive(Debug, Clone, Copy)]
pub struct SoakNumbers {
    /// Hosted users.
    pub users: usize,
    /// Alerts per user.
    pub alerts_per_user: usize,
    /// Total alerts driven.
    pub total_alerts: u64,
    /// Deliveries that reached a terminal state (must equal the total).
    pub finished: u64,
    /// ... confirmed by a user ack.
    pub acked: u64,
    /// ... handed off unconfirmed (email fallback).
    pub unconfirmed: u64,
    /// ... exhausted.
    pub exhausted: u64,
    /// Stale timer/ack wakeups dropped by generation tagging.
    pub stale_dropped: u64,
    /// Alerts the host's routing front door handed to a hosted user
    /// (`host.routed`).
    pub routed: u64,
    /// Alerts refused because the user was not hosted (`host.unrouted`).
    pub unrouted: u64,
    /// Highest concurrent in-flight delivery count sampled.
    pub peak_in_flight: usize,
    /// Highest `attempt_owner` occupancy sampled.
    pub peak_attempt_owner: usize,
    /// Highest pending timer/ack task count sampled.
    pub peak_pending_tasks: usize,
    /// Total completed-ring occupancy after the drain (≤ users × cap).
    pub retired_ring: usize,
    /// Wall-clock seconds for the whole soak.
    pub wall_secs: f64,
    /// Alerts per wall-clock second.
    pub throughput: f64,
}

/// Mixed-outcome gateway: 45 % of IM sends ack within the window, 25 %
/// are accepted but never acked (ack-window timeout → email fallback),
/// 30 % fail synchronously (immediate fallback). Email always accepts.
struct SoakChannels {
    rng: SimRng,
}

impl Channels for SoakChannels {
    fn send(&mut self, comm_type: CommType, _address: &str, _text: &str) -> SendOutcome {
        match comm_type {
            CommType::Im => {
                let roll = self.rng.range(0, 100);
                if roll < 45 {
                    SendOutcome::AcceptedWithAck(Duration::from_millis(self.rng.range(200, 4_800)))
                } else if roll < 70 {
                    SendOutcome::Accepted
                } else {
                    SendOutcome::Failed(SendFailure::RecipientUnreachable)
                }
            }
            _ => SendOutcome::Accepted,
        }
    }
}

/// One user's registry: IM-then-email with a 5 s (virtual) ack window.
fn user_config(name: &str) -> MabConfig {
    let mut classifier = Classifier::new();
    classifier.accept_source("soak-gw", KeywordField::Body, "cfg");
    classifier.map_keyword("Sensor", "Home");
    let mut registry = SubscriptionRegistry::new();
    let user = UserId::new(name);
    let profile = registry.register_user(user.clone());
    let mut book = AddressBook::new();
    book.add(Address::new("IM", CommType::Im, format!("im:{name}"))).unwrap();
    book.add(Address::new("EM", CommType::Email, format!("{name}@mail"))).unwrap();
    profile.address_book = book;
    profile.define_mode(DeliveryMode::im_then_email(
        "Urgent",
        "IM",
        "EM",
        SimDuration::from_secs(5),
    ));
    registry.subscribe("Home", user, "Urgent").unwrap();
    MabConfig { classifier, registry, rejuvenation: RejuvenationPolicy::default() }
}

#[derive(Debug, Default, Clone, Copy)]
struct Outcomes {
    finished: u64,
    acked: u64,
    unconfirmed: u64,
    exhausted: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct Peaks {
    in_flight: usize,
    attempt_owner: usize,
    pending_tasks: usize,
}

impl Peaks {
    fn observe(&mut self, snap: &simba_runtime::HostSnapshot) {
        self.in_flight = self.in_flight.max(snap.in_flight);
        self.attempt_owner = self.attempt_owner.max(snap.attempt_owner);
        self.pending_tasks = self.pending_tasks.max(snap.pending_tasks);
    }
}

struct RawSoak {
    outcomes: Outcomes,
    peaks: Peaks,
    retired_ring: usize,
    stale_dropped: u64,
    routed: u64,
    unrouted: u64,
    merged: MabStats,
}

async fn soak(opts: SoakOptions) -> RawSoak {
    let telemetry = Telemetry::with_sink(std::sync::Arc::new(RingBufferSink::new(1_024)));
    let shared = SharedChannels::new(SoakChannels { rng: SimRng::new(opts.seed) });
    let host_config = HostConfig {
        wal_dir: None,
        retirement_grace: SimDuration::ZERO,
        completed_ring: opts.completed_ring,
        // The soak counts every terminal notice, so the (bounded) merged
        // stream is sized to the load rather than the operator default.
        notice_capacity: (opts.users * opts.alerts_per_user)
            .max(simba_runtime::DEFAULT_NOTICE_CAPACITY),
    };
    let (host, mut notices) = MabHost::new(shared, host_config);
    let mut host = host.with_telemetry(telemetry.clone());

    let users: Vec<UserId> = (0..opts.users).map(|i| UserId::new(format!("user{i:03}"))).collect();
    for user in &users {
        host.add_user(user.clone(), user_config(&user.0)).expect("fresh user");
    }

    // Count terminal outcomes off the merged notice stream as they land.
    // (The shim executor is single-threaded, so Rc<RefCell<_>> is safe.)
    let outcomes = Rc::new(RefCell::new(Outcomes::default()));
    let drained_outcomes = Rc::clone(&outcomes);
    let drainer = tokio::spawn(async move {
        while let Some(HostNotice { notice, .. }) = notices.recv().await {
            if let RuntimeNotice::DeliveryFinished { status, .. } = notice {
                let mut o = drained_outcomes.borrow_mut();
                o.finished += 1;
                match status {
                    DeliveryStatus::Acked { .. } => o.acked += 1,
                    DeliveryStatus::Unconfirmed { .. } => o.unconfirmed += 1,
                    DeliveryStatus::Exhausted { .. } => o.exhausted += 1,
                    DeliveryStatus::InProgress => {}
                }
            }
        }
    });

    let total = (opts.users * opts.alerts_per_user) as u64;
    let mut peaks = Peaks::default();
    for round in 0..opts.alerts_per_user {
        for user in &users {
            let alert = IncomingAlert::from_im(
                "soak-gw",
                format!("Sensor wave {round} ON"),
                SimTime::ZERO,
            );
            assert!(host.submit_im(user, alert).await, "routing front door rejected a hosted user");
        }
        // 250 ms (virtual) between waves: with the 5 s ack window roughly
        // twenty waves overlap per user at steady state.
        tokio::time::sleep(Duration::from_millis(250)).await;
        if round.is_multiple_of(20) {
            peaks.observe(&host.snapshot().await);
        }
    }

    // Drain and assert the bounded floor. Every outcome resolves within
    // the 5 s window, so a bounded number of sampling rounds must reach
    // all-zero tables — anything else is a lifecycle leak.
    let mut floor = None;
    for _ in 0..60 {
        tokio::time::sleep(Duration::from_millis(500)).await;
        let snap = host.snapshot().await;
        peaks.observe(&snap);
        let done = outcomes.borrow().finished == total;
        if done
            && snap.in_flight == 0
            && snap.tracked == 0
            && snap.live == 0
            && snap.attempt_owner == 0
            && snap.pending_tasks == 0
        {
            floor = Some(snap);
            break;
        }
    }
    let floor = floor.expect("delivery state failed to drain to the floor: lifecycle leak");
    assert!(
        floor.retired <= opts.users * opts.completed_ring,
        "completed-rings exceeded their caps: {} > {}",
        floor.retired,
        opts.users * opts.completed_ring
    );

    let per_user = host.shutdown().await;
    drainer.await.expect("notice drainer");
    let mut merged = MabStats::default();
    for (_, stats) in &per_user {
        merged.merge(*stats);
    }
    assert_eq!(merged.deliveries_started, total, "every alert starts exactly one delivery");
    assert_eq!(merged.retired, total, "every delivery retires exactly once");

    let outcomes = *outcomes.borrow();
    let metrics = telemetry.metrics().snapshot();
    RawSoak {
        outcomes,
        peaks,
        retired_ring: floor.retired,
        stale_dropped: metrics.counter("runtime.stale_dropped"),
        routed: metrics.counter("host.routed"),
        unrouted: metrics.counter("host.unrouted"),
        merged,
    }
}

/// Runs the soak and returns the headline numbers plus tables.
pub fn measure(opts: SoakOptions) -> (SoakNumbers, Vec<Table>) {
    let wall = std::time::Instant::now();
    let raw = tokio::runtime::block_on_test(true, async move { soak(opts).await });
    let wall_secs = wall.elapsed().as_secs_f64();
    let total = (opts.users * opts.alerts_per_user) as u64;

    let numbers = SoakNumbers {
        users: opts.users,
        alerts_per_user: opts.alerts_per_user,
        total_alerts: total,
        finished: raw.outcomes.finished,
        acked: raw.outcomes.acked,
        unconfirmed: raw.outcomes.unconfirmed,
        exhausted: raw.outcomes.exhausted,
        stale_dropped: raw.stale_dropped,
        routed: raw.routed,
        unrouted: raw.unrouted,
        peak_in_flight: raw.peaks.in_flight,
        peak_attempt_owner: raw.peaks.attempt_owner,
        peak_pending_tasks: raw.peaks.pending_tasks,
        retired_ring: raw.retired_ring,
        wall_secs,
        throughput: if wall_secs > 0.0 { total as f64 / wall_secs } else { f64::INFINITY },
    };

    let mut config = Table::new(
        "E3H: host soak configuration",
        &["users", "alerts/user", "total alerts", "ring cap", "seed"],
    );
    config.row(&[
        numbers.users.to_string(),
        numbers.alerts_per_user.to_string(),
        numbers.total_alerts.to_string(),
        opts.completed_ring.to_string(),
        opts.seed.to_string(),
    ]);

    let pct = |n: u64| format!("{n} ({:.0} %)", 100.0 * n as f64 / total.max(1) as f64);
    let mut mix = Table::new(
        "E3H: terminal outcome mix",
        &["finished", "acked", "unconfirmed (fallback)", "exhausted", "stale wakeups dropped"],
    );
    mix.row(&[
        numbers.finished.to_string(),
        pct(numbers.acked),
        pct(numbers.unconfirmed),
        pct(numbers.exhausted),
        numbers.stale_dropped.to_string(),
    ]);

    let mut bounds = Table::new(
        "E3H: delivery state stays bounded (peak under load → floor after drain)",
        &["table", "peak", "floor"],
    );
    bounds.row(&["in-flight deliveries".into(), numbers.peak_in_flight.to_string(), "0".into()]);
    bounds.row(&[
        "attempt_owner entries".into(),
        numbers.peak_attempt_owner.to_string(),
        "0".into(),
    ]);
    bounds.row(&[
        "pending timer/ack tasks".into(),
        numbers.peak_pending_tasks.to_string(),
        "0".into(),
    ]);
    bounds.row(&[
        "completed-ring occupancy".into(),
        format!("≤ {}", opts.users * opts.completed_ring),
        numbers.retired_ring.to_string(),
    ]);

    let mut perf = Table::new(
        "E3H: wall-clock throughput",
        &["alerts", "wall seconds", "alerts/s"],
    );
    perf.row(&[
        numbers.total_alerts.to_string(),
        format!("{:.2}", numbers.wall_secs),
        format!("{:.0}", numbers.throughput),
    ]);

    let _ = raw.merged; // totals already asserted inside the soak
    (numbers, vec![config, mix, bounds, perf])
}

/// Regression floor for the full-scale soak (recorded ≈ 65 k alerts/s on
/// the reference single core).
pub const FULL_THROUGHPUT_FLOOR: f64 = 30_000.0;
/// Regression floor for the CI smoke shape (`make soak`).
pub const SMOKE_THROUGHPUT_FLOOR: f64 = 5_000.0;

/// Runs E3H at a custom scale, writes `BENCH_e3h.json`, asserts the
/// throughput floor, and packages the result.
pub fn run_with(opts: SoakOptions, mode: BenchMode) -> ExperimentOutput {
    let (numbers, tables) = measure(opts);

    let mut bench = BenchReport::new("E3H", mode);
    bench
        .metric("throughput", numbers.throughput, "alerts/s")
        .metric("total_alerts", numbers.total_alerts as f64, "alerts")
        .metric("users", numbers.users as f64, "users")
        .metric("finished", numbers.finished as f64, "deliveries")
        .metric("peak_in_flight", numbers.peak_in_flight as f64, "deliveries")
        .metric("wall_secs", numbers.wall_secs, "s");
    let floor = match mode {
        BenchMode::Full => FULL_THROUGHPUT_FLOOR,
        BenchMode::Smoke => SMOKE_THROUGHPUT_FLOOR,
    };
    bench.floor("throughput", floor, numbers.throughput);
    bench.write();
    assert!(
        numbers.throughput >= floor,
        "throughput floor: {:.0} alerts/s < {floor:.0}",
        numbers.throughput
    );

    ExperimentOutput {
        id: "E3H",
        title: "multi-user MabHost soak (delivery lifecycle retirement)",
        paper_claim: "§3.3: MyAlertBuddy is a per-user always-on agent; a deployment hosts many concurrently",
        tables,
        notes: vec![
            format!(
                "{} deliveries finished with every state table back at its floor; \
                 {:.0} alerts/s wall throughput",
                numbers.finished, numbers.throughput
            ),
            "in-flight, attempt_owner, live and pending-task tables all returned to zero \
             after the drain (asserted, not just observed)"
                .to_string(),
        ],
    }
}

/// Runs E3H at full scale with the given seed.
pub fn run(seed: u64) -> ExperimentOutput {
    run_with(SoakOptions::new(seed), BenchMode::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3h_soak_drains_to_the_floor() {
        // Reduced scale for CI; the floor assertions run inside soak().
        let opts = SoakOptions { seed: 42, users: 10, alerts_per_user: 30, completed_ring: 8 };
        let (n, _) = measure(opts);
        assert_eq!(n.finished, 300);
        assert_eq!(n.acked + n.unconfirmed + n.exhausted, 300);
        assert!(n.acked > 0, "some deliveries must ack");
        assert!(n.unconfirmed > 0, "some deliveries must fall back");
        assert!(n.retired_ring <= 80);
        assert!(n.peak_in_flight > 0, "the load must actually overlap");
        assert_eq!(n.routed, 300, "the host counts every routed alert");
        assert_eq!(n.unrouted, 0);
    }

    #[test]
    fn outcome_mix_tracks_the_channel_script() {
        let opts = SoakOptions { seed: 7, users: 8, alerts_per_user: 25, completed_ring: 16 };
        let (n, _) = measure(opts);
        // The script acks ~45 % of IM sends; allow a wide band.
        let acked_frac = n.acked as f64 / n.total_alerts as f64;
        assert!((0.25..0.65).contains(&acked_frac), "acked fraction {acked_frac}");
    }
}
