//! A3 — watchdog ping-interval sweep.
//!
//! The paper runs AreYouWorking() every 3 minutes (§4.2.1). The trade-off:
//! a shorter interval detects a hung MyAlertBuddy sooner (less dead time)
//! but burns more probes. This sweep injects hangs and measures detection
//! latency against probe count per day.

use crate::experiments::ExperimentOutput;
use crate::harness::{build, handle, Ev, PipelineOptions};
use crate::report::Table;
use simba_core::alert::IncomingAlert;
use simba_core::mdc::MdcConfig;
use simba_sim::{SimDuration, SimTime, Summary};

/// The sweep points.
pub const INTERVALS_SECS: [u64; 5] = [30, 60, 180, 600, 1_800];

/// Days simulated per point.
pub const DAYS: u64 = 10;

/// Result of one sweep point.
#[derive(Debug, Clone, Copy)]
pub struct A3Point {
    /// The ping interval.
    pub interval: SimDuration,
    /// Hangs injected.
    pub hangs: u64,
    /// Mean hang→restart latency, seconds.
    pub detection_mean: f64,
    /// 95th percentile detection latency, seconds.
    pub detection_p95: f64,
    /// Probes issued per day.
    pub pings_per_day: f64,
    /// Alert delivery rate over the run.
    pub delivery_rate: f64,
}

fn run_point(seed: u64, interval: SimDuration) -> A3Point {
    let horizon = SimTime::from_days(DAYS);
    let mut options = PipelineOptions::new(seed, horizon);
    options.mdc = MdcConfig {
        ping_interval: interval,
        reply_timeout: SimDuration::from_secs(30),
        reboot_threshold: 50, // keep reboots out of this sweep
    };
    options.mab_hang_mtbf = Some(SimDuration::from_hours(8));
    let mut engine = build(options);
    // A light alert workload to measure delivery impact.
    let total_alerts = DAYS * 24;
    for i in 0..total_alerts {
        let at = SimTime::from_mins(13 + i * 60);
        let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor probe {i} ON"), at);
        engine.schedule_at(at, Ev::Emit { tag: i, alert });
    }
    engine.run_until(horizon, handle);
    let (world, trace) = engine.into_parts();

    // Pair each hang with the next MDC restart to get detection latency.
    let mut detection = Summary::new();
    let mut pending_hang: Option<SimTime> = None;
    for entry in trace.entries() {
        match entry.category.as_str() {
            "mab.hang" => pending_hang = Some(entry.at),
            "mdc.restart" => {
                if let Some(hung_at) = pending_hang.take() {
                    detection.observe((entry.at - hung_at).as_secs_f64());
                }
            }
            _ => {}
        }
    }

    let seen = world
        .tracks
        .values()
        .filter(|t| t.emitted_at.is_some() && t.seen_at.is_some())
        .count() as f64;
    A3Point {
        interval,
        hangs: world.metrics.counter("mab.hangs"),
        detection_mean: detection.mean(),
        detection_p95: {
            let mut d = detection;
            d.percentile(95.0)
        },
        pings_per_day: world.mdc.pings() as f64 / DAYS as f64,
        delivery_rate: seen / total_alerts as f64,
    }
}

/// Runs the sweep.
pub fn measure(seed: u64) -> (Vec<A3Point>, Vec<Table>) {
    let points: Vec<A3Point> = INTERVALS_SECS
        .iter()
        .map(|&secs| run_point(seed, SimDuration::from_secs(secs)))
        .collect();

    let mut t = Table::new(
        "A3: AreYouWorking() interval sweep under MyAlertBuddy hangs (MTBF 8 h)",
        &[
            "ping interval",
            "hangs",
            "detect mean",
            "detect p95",
            "pings/day",
            "delivery",
        ],
    );
    for p in &points {
        t.row(&[
            format!("{}", p.interval),
            p.hangs.to_string(),
            format!("{:.0} s", p.detection_mean),
            format!("{:.0} s", p.detection_p95),
            format!("{:.0}", p.pings_per_day),
            format!("{:.1} %", p.delivery_rate * 100.0),
        ]);
    }

    (points, vec![t])
}

/// Runs A3 and packages the result.
pub fn run(seed: u64) -> ExperimentOutput {
    let (points, tables) = measure(seed);
    let three_min = points
        .iter()
        .find(|p| p.interval == SimDuration::from_mins(3))
        .expect("3 min is in the sweep");
    ExperimentOutput {
        id: "A3",
        title: "Watchdog ping-interval sweep",
        paper_claim: "the AreYouWorking() callback is invoked every three minutes",
        tables,
        notes: vec![format!(
            "at the paper's 3 min interval, hangs are detected in {:.0} s mean at {:.0} probes/day",
            three_min.detection_mean, three_min.pings_per_day
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a3_detection_scales_with_interval() {
        let (points, _) = measure(42);
        // Detection latency grows monotonically (within noise) with the
        // interval; probe cost shrinks.
        let first = &points[0];
        let last = &points[points.len() - 1];
        assert!(first.hangs > 10, "hangs {}", first.hangs);
        assert!(
            last.detection_mean > 4.0 * first.detection_mean,
            "{} vs {}",
            last.detection_mean,
            first.detection_mean
        );
        assert!(first.pings_per_day > 20.0 * last.pings_per_day);
        // Detection latency is bounded by interval + reply timeout.
        for p in &points {
            assert!(
                p.detection_mean <= p.interval.as_secs_f64() + 31.0,
                "interval {} mean {}",
                p.interval,
                p.detection_mean
            );
            assert!(p.delivery_rate > 0.85, "delivery {}", p.delivery_rate);
        }
    }
}
