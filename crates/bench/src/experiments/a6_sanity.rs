//! A6 — Communication Manager sanity-check interval sweep.
//!
//! §4.2.1: "the sanity checking APIs are invoked every minute". The check
//! is what notices a silently logged-out IM client and re-logs it in; the
//! sweep measures how the interval trades logged-out time (during which
//! incoming IM alerts bounce to the slow email path) against check volume.

use crate::experiments::ExperimentOutput;
use crate::report::Table;
use simba_client::im_manager::ImManager;
use simba_net::im::{ImHandle, ImService};
use simba_sim::{SimDuration, SimRng, SimTime, Summary};

/// The sweep points.
pub const INTERVALS_SECS: [u64; 5] = [15, 60, 300, 1_200, 3_600];

/// Days simulated per point.
pub const DAYS: u64 = 30;

/// Mean time between forced logouts.
pub const LOGOUT_MTBF_HOURS: f64 = 6.0;

/// Result of one sweep point.
#[derive(Debug, Clone, Copy)]
pub struct A6Point {
    /// Sanity-check interval.
    pub interval: SimDuration,
    /// Logouts injected.
    pub logouts: u64,
    /// Mean logged-out episode length, seconds.
    pub outage_mean: f64,
    /// Fraction of total time spent logged out.
    pub logged_out_fraction: f64,
    /// Fraction of incoming alerts that found the buddy logged out.
    pub alerts_bounced: f64,
    /// Sanity checks performed.
    pub checks: u64,
}

fn run_point(seed: u64, interval: SimDuration) -> A6Point {
    let mut rng = SimRng::new(seed ^ 0xA6);
    let horizon = SimTime::from_days(DAYS);

    let mut service = ImService::new(rng.fork(1));
    let mab = ImHandle::new("mab-im");
    service.register(mab.clone());
    let mut manager = ImManager::new(mab.clone());
    manager.start(&mut service, SimTime::ZERO).expect("service up");

    // Pre-draw logout times and alert arrival times.
    let draw_times = |mtbf_secs: f64, rng: &mut SimRng| {
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            t += SimDuration::from_secs_f64(rng.exponential(mtbf_secs));
            if t >= horizon {
                return out;
            }
            out.push(t);
        }
    };
    let logouts = draw_times(LOGOUT_MTBF_HOURS * 3_600.0, &mut rng);
    let alerts = draw_times(1_800.0, &mut rng); // an alert every 30 min

    // Walk sanity ticks; between ticks, replay the logout/alert streams.
    let mut outage = Summary::new();
    let mut logged_out_total = SimDuration::ZERO;
    let mut bounced = 0u64;
    let mut checks = 0u64;
    let mut li = 0usize;
    let mut ai = 0usize;
    let mut logged_out_since: Option<SimTime> = None;
    let mut tick = SimTime::ZERO + interval;
    while tick <= horizon + interval {
        // Events before this tick, in time order.
        loop {
            let next_logout = logouts.get(li).copied().unwrap_or(SimTime::MAX);
            let next_alert = alerts.get(ai).copied().unwrap_or(SimTime::MAX);
            let next = next_logout.min(next_alert);
            if next > tick || next >= horizon {
                break;
            }
            if next == next_logout {
                li += 1;
                if logged_out_since.is_none() {
                    service.force_logout(&mab);
                    logged_out_since = Some(next);
                }
            } else {
                ai += 1;
                if logged_out_since.is_some() {
                    bounced += 1;
                }
            }
        }
        if tick >= horizon {
            break;
        }
        // The sanity check repairs any logout.
        checks += 1;
        let report = manager.sanity_check(&mut service, tick);
        if let Some(since) = logged_out_since.take() {
            assert!(
                report
                    .repairs
                    .contains(&simba_client::manager::RepairAction::ReLogon),
                "sanity check must re-logon"
            );
            let episode = tick - since;
            outage.observe(episode.as_secs_f64());
            logged_out_total += episode;
        }
        tick += interval;
    }

    A6Point {
        interval,
        logouts: logouts.len() as u64,
        outage_mean: outage.mean(),
        logged_out_fraction: logged_out_total.as_secs_f64() / horizon.as_secs_f64(),
        alerts_bounced: bounced as f64 / alerts.len().max(1) as f64,
        checks,
    }
}

/// Runs the sweep.
pub fn measure(seed: u64) -> (Vec<A6Point>, Vec<Table>) {
    let points: Vec<A6Point> = INTERVALS_SECS
        .iter()
        .map(|&secs| run_point(seed, SimDuration::from_secs(secs)))
        .collect();

    let mut t = Table::new(
        "A6: sanity-check interval sweep (forced logouts, MTBF 6 h, 30 days)",
        &[
            "check interval",
            "logouts",
            "episode mean",
            "logged-out time",
            "alerts bounced",
            "checks",
        ],
    );
    for p in &points {
        t.row(&[
            format!("{}", p.interval),
            p.logouts.to_string(),
            format!("{:.0} s", p.outage_mean),
            format!("{:.3} %", p.logged_out_fraction * 100.0),
            format!("{:.2} %", p.alerts_bounced * 100.0),
            p.checks.to_string(),
        ]);
    }

    (points, vec![t])
}

/// Runs A6 and packages the result.
pub fn run(seed: u64) -> ExperimentOutput {
    let (points, tables) = measure(seed);
    let paper_point = points
        .iter()
        .find(|p| p.interval == SimDuration::from_mins(1))
        .expect("1 min is in the sweep");
    ExperimentOutput {
        id: "A6",
        title: "Sanity-check interval sweep",
        paper_claim: "the sanity checking APIs are invoked every minute",
        tables,
        notes: vec![format!(
            "at the paper's 1 min interval a logout costs {:.0} s and {:.2} % of alerts bounce",
            paper_point.outage_mean,
            paper_point.alerts_bounced * 100.0
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a6_logged_out_time_scales_with_interval() {
        let (points, _) = measure(42);
        assert!(points[0].logouts > 50);
        // Mean episode ≈ half the interval.
        for p in &points {
            let expected = p.interval.as_secs_f64() / 2.0;
            assert!(
                (p.outage_mean - expected).abs() < expected.mul_add(0.5, 5.0),
                "interval {} mean {}",
                p.interval,
                p.outage_mean
            );
        }
        // Bounced alerts grow with the interval.
        assert!(points[0].alerts_bounced < points[4].alerts_bounced);
        assert!(
            points[4].alerts_bounced < 0.15,
            "hourly checks bounce {}",
            points[4].alerts_bounced
        );
    }
}
