//! E7 — soft-state store under concurrent write/read/subscribe load.
//!
//! WISH-style context facts are only useful if publishing them is cheap
//! enough to do on every send and reading them never returns stale truth
//! (§4.3: presence and channel health steer routing, but an *expired*
//! fact must behave exactly like an absent one). This harness hammers a
//! [`SoftStateStore`] with many writer threads publishing TTL'd facts —
//! a mix of short TTLs that decay mid-run and long TTLs that survive —
//! while every writer interleaves reads of other writers' keys and a
//! pool of bounded-channel subscribers drains the change feed, and
//! checks:
//!
//! * **zero expired-fact reads**: no `get` ever returns a fact already
//!   expired at the `now` the reader passed (asserted per read);
//! * **accounting balances**: hits + misses == reads, puts match the
//!   `store.puts` counter, and a final sweep leaves only live facts;
//! * **writers never block on observers**: laggy subscribers are shed
//!   (counted under `store.sub_dropped`), never waited on;
//! * **throughput**: the combined put/get stream sustains ≥ 100 k ops/s
//!   (asserted at full scale, reported always).

use crate::benchjson::{BenchMode, BenchReport};
use crate::experiments::ExperimentOutput;
use crate::report::Table;
use simba_sim::{SimDuration, SimTime};
use simba_store::{SoftStateStore, StoreConfig};
use simba_telemetry::{RingBufferSink, Telemetry};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::sync::mpsc::error::TryRecvError;

/// Load shape for one store run.
#[derive(Debug, Clone, Copy)]
pub struct StoreBenchOptions {
    /// Concurrent writer threads.
    pub writers: usize,
    /// Facts each writer publishes (each put is paired with one read).
    pub facts_per_writer: usize,
    /// Subscriber threads draining the change feed.
    pub subscribers: usize,
    /// Distinct keys per writer; smaller means more refresh churn.
    pub keyspace: usize,
    /// Store tuning for the run.
    pub config: StoreConfig,
}

impl StoreBenchOptions {
    /// Full-scale defaults: 50 writers × 10 000 facts with 20
    /// subscribers on the default 16-shard store.
    pub fn full() -> Self {
        StoreBenchOptions {
            writers: 50,
            facts_per_writer: 10_000,
            subscribers: 20,
            keyspace: 128,
            config: StoreConfig::default(),
        }
    }

    /// CI smoke: 8 writers × 2 000 facts, 4 subscribers, no throughput
    /// floor asserted.
    pub fn smoke() -> Self {
        StoreBenchOptions {
            writers: 8,
            facts_per_writer: 2_000,
            subscribers: 4,
            keyspace: 64,
            config: StoreConfig::default(),
        }
    }
}

/// The ledger from one run, exposed for regression tests.
#[derive(Debug, Clone, Copy)]
pub struct StoreNumbers {
    /// Facts published.
    pub puts: u64,
    /// Reads issued (one per put, of another writer's key).
    pub reads: u64,
    /// ... that returned a live fact.
    pub hits: u64,
    /// ... that found nothing (absent, expired, or evicted).
    pub misses: u64,
    /// Reads that returned an already-expired fact. Must be zero.
    pub expired_reads: u64,
    /// `store.expired` as the store counted it (lazy + swept).
    pub counter_expired: u64,
    /// `store.evicted` (per-scope LRU shedding).
    pub counter_evicted: u64,
    /// Subscriber events the pool drained.
    pub events_seen: u64,
    /// Subscribers shed for lagging (`store.sub_dropped`).
    pub subs_dropped: u64,
    /// Live facts left after the final sweep.
    pub final_size: u64,
    /// Wall-clock seconds of the write/read phase.
    pub wall_secs: f64,
    /// Combined puts + reads per wall-clock second.
    pub ops_per_sec: f64,
}

/// Runs one concurrent store workload and returns the balanced ledger.
///
/// Time is a shared virtual clock that ticks once per operation, so TTLs
/// are measured in *operations*, not wall time: a short-TTL fact decays
/// after a deterministic amount of surrounding load at any machine speed.
pub fn measure(opts: StoreBenchOptions, seed: u64) -> StoreNumbers {
    let telemetry = Telemetry::with_sink(Arc::new(RingBufferSink::new(256)));
    let store = SoftStateStore::new(opts.config, telemetry.clone());
    let clock = Arc::new(AtomicU64::new(1));
    let done = Arc::new(AtomicBool::new(false));

    // Short TTLs sized so roughly half the facts decay under full load;
    // long TTLs outlive the whole run.
    let ops_total = (opts.writers * opts.facts_per_writer) as u64;
    let short_ttl = SimDuration::from_millis((ops_total / 4).max(64));
    let long_ttl = SimDuration::from_millis(u64::MAX / 4);

    let subscribers: Vec<_> = (0..opts.subscribers)
        .map(|i| {
            let mut feed = store.subscribe(Some("bench"));
            let done = Arc::clone(&done);
            // Odd-numbered subscribers drain slowly, exercising the
            // bounded-channel shed path under full load.
            let laggy = i % 2 == 1;
            std::thread::spawn(move || {
                let mut seen = 0u64;
                loop {
                    match feed.try_recv() {
                        Ok(event) => {
                            debug_assert_eq!(event.scope(), "bench");
                            seen += 1;
                            if laggy && seen.is_multiple_of(32) {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                        }
                        Err(TryRecvError::Disconnected) => break seen,
                        Err(TryRecvError::Empty) => {
                            if done.load(Ordering::Acquire) {
                                break seen;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            })
        })
        .collect();

    let started = Instant::now();
    let writers: Vec<_> = (0..opts.writers)
        .map(|w| {
            let store = store.clone();
            let clock = Arc::clone(&clock);
            let facts = opts.facts_per_writer;
            let keyspace = opts.keyspace.max(1);
            let total_writers = opts.writers;
            // Per-writer deterministic stream (splitmix64 on seed + id).
            let mut rng = seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(w as u64 + 1));
            std::thread::spawn(move || {
                let mut next = move || {
                    rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let mut z = rng;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                    z ^ (z >> 31)
                };
                let (mut hits, mut misses, mut expired_reads) = (0u64, 0u64, 0u64);
                for i in 0..facts {
                    let r = next();
                    let ttl = if r % 2 == 0 { short_ttl } else { long_ttl };
                    let key = format!("w{w}-k{}", i % keyspace);
                    let now = SimTime::from_millis(clock.fetch_add(1, Ordering::Relaxed));
                    store.put("bench", &key, "on", ttl, "bench-e7", now);

                    // Read a peer's keyspace with a fresh now: the store
                    // must hand back a live fact or nothing at all.
                    let peer = (r as usize) % total_writers;
                    let peer_key = format!("w{peer}-k{}", (r >> 32) as usize % keyspace);
                    let read_now = SimTime::from_millis(clock.fetch_add(1, Ordering::Relaxed));
                    match store.get("bench", &peer_key, read_now) {
                        Some(fact) if fact.is_expired(read_now) => expired_reads += 1,
                        Some(_) => hits += 1,
                        None => misses += 1,
                    }
                }
                (hits, misses, expired_reads)
            })
        })
        .collect();

    let (mut hits, mut misses, mut expired_reads) = (0u64, 0u64, 0u64);
    for t in writers {
        let (h, m, e) = t.join().unwrap();
        hits += h;
        misses += m;
        expired_reads += e;
    }
    let wall_secs = started.elapsed().as_secs_f64();

    // Advance past every short TTL and sweep: only long-TTL facts may
    // survive, and a post-sweep scan must see zero expired facts.
    let final_now =
        SimTime::from_millis(clock.load(Ordering::Relaxed) + short_ttl.as_millis() + 1);
    store.sweep(final_now);
    let survivors = store.snapshot_scope("bench", final_now);
    for (key, fact) in &survivors {
        assert!(!fact.is_expired(final_now), "sweep left expired fact {key:?}");
    }

    done.store(true, Ordering::Release);
    let events_seen: u64 = subscribers.into_iter().map(|t| t.join().unwrap()).sum();

    let snap = telemetry.metrics().snapshot();
    let numbers = StoreNumbers {
        puts: ops_total,
        reads: ops_total,
        hits,
        misses,
        expired_reads,
        counter_expired: snap.counter("store.expired"),
        counter_evicted: snap.counter("store.evicted"),
        events_seen,
        subs_dropped: snap.counter("store.sub_dropped"),
        final_size: survivors.len() as u64,
        wall_secs,
        ops_per_sec: if wall_secs > 0.0 {
            (2 * ops_total) as f64 / wall_secs
        } else {
            0.0
        },
    };

    // The staleness ledger. These hold at every scale — a violation is a
    // bug, not a tuning problem.
    assert_eq!(numbers.expired_reads, 0, "a get returned an already-expired fact");
    assert_eq!(numbers.hits + numbers.misses, numbers.reads, "every read resolved");
    assert_eq!(snap.counter("store.puts"), numbers.puts, "every put was counted");
    assert_eq!(
        snap.counter("store.hits") + snap.counter("store.misses"),
        numbers.reads,
        "the store's own hit/miss accounting matches the readers'"
    );
    numbers
}

/// Regression floor for the full-scale store workload (recorded ≈ 1.2 M
/// combined ops/s on the reference single core).
pub const FULL_THROUGHPUT_FLOOR: f64 = 100_000.0;
/// Regression floor for the CI smoke shape (`make store-smoke`).
pub const SMOKE_THROUGHPUT_FLOOR: f64 = 10_000.0;

/// Runs the headline load, writes `BENCH_e7.json`, asserts the
/// throughput floor, and renders the tables.
pub fn run_with(opts: StoreBenchOptions, seed: u64, mode: BenchMode) -> ExperimentOutput {
    let n = measure(opts, seed);

    let mut bench = BenchReport::new("E7", mode);
    bench
        .metric("throughput", n.ops_per_sec, "ops/s")
        .metric("puts", n.puts as f64, "facts")
        .metric("reads", n.reads as f64, "reads")
        .metric("hits", n.hits as f64, "reads")
        .metric("expired_reads", n.expired_reads as f64, "reads")
        .metric("wall_secs", n.wall_secs, "s");
    let floor = match mode {
        BenchMode::Full => FULL_THROUGHPUT_FLOOR,
        BenchMode::Smoke => SMOKE_THROUGHPUT_FLOOR,
    };
    bench.floor("throughput", floor, n.ops_per_sec);
    // The staleness floor: an expired fact must read as absent, never as
    // a stale hit (asserted per read inside `measure`).
    bench.floor("zero_expired_reads", 0.0, -(n.expired_reads as f64));
    bench.write();
    assert!(
        n.ops_per_sec >= floor,
        "throughput floor: {:.0} ops/s < {floor:.0}",
        n.ops_per_sec
    );

    let mut config = Table::new(
        "E7: store load shape",
        &["writers", "facts/writer", "subscribers", "keyspace", "shards"],
    );
    config.row(&[
        opts.writers.to_string(),
        opts.facts_per_writer.to_string(),
        opts.subscribers.to_string(),
        opts.keyspace.to_string(),
        opts.config.shards.to_string(),
    ]);

    let mut ledger = Table::new(
        "E7: the staleness ledger balances",
        &["puts", "reads", "hits", "misses", "expired reads", "live after sweep"],
    );
    ledger.row(&[
        n.puts.to_string(),
        n.reads.to_string(),
        n.hits.to_string(),
        n.misses.to_string(),
        n.expired_reads.to_string(),
        n.final_size.to_string(),
    ]);

    let mut perf = Table::new(
        "E7: concurrent throughput and decay churn",
        &["ops/s", "wall seconds", "expired", "evicted", "sub events", "subs dropped"],
    );
    perf.row(&[
        format!("{:.0}", n.ops_per_sec),
        format!("{:.2}", n.wall_secs),
        n.counter_expired.to_string(),
        n.counter_evicted.to_string(),
        n.events_seen.to_string(),
        n.subs_dropped.to_string(),
    ]);

    ExperimentOutput {
        id: "E7",
        title: "soft-state store: sharded TTL'd facts under write/read/subscribe load",
        paper_claim: "§4.3: presence/context is soft state — cheap to publish on every send, and an expired fact must behave exactly like an absent one",
        tables: vec![config, ledger, perf],
        notes: vec![
            format!(
                "{} puts + {} reads across {} writers: zero expired-fact reads (asserted \
                 per read, and again after the final sweep)",
                n.puts, n.reads, opts.writers
            ),
            format!(
                "{:.0} combined ops/s; {} facts decayed and {} were LRU-shed while {} \
                 subscriber events were drained without ever blocking a writer",
                n.ops_per_sec, n.counter_expired, n.counter_evicted, n.events_seen
            ),
        ],
    }
}

/// Full-scale E7.
pub fn run(seed: u64) -> ExperimentOutput {
    run_with(StoreBenchOptions::full(), seed, BenchMode::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_smoke_ledger_balances_with_zero_expired_reads() {
        // 16 000 puts + 16 000 reads; the zero-expired-reads and
        // accounting assertions run inside measure().
        let n = measure(StoreBenchOptions::smoke(), 42);
        assert_eq!(n.puts, 16_000);
        assert_eq!(n.expired_reads, 0);
        assert!(n.counter_expired > 0, "short TTLs must actually decay mid-run");
        assert!(n.hits > 0, "peers must observe each other's live facts");
    }

    #[test]
    fn e7_tiny_store_evicts_instead_of_growing() {
        let n = measure(
            StoreBenchOptions {
                writers: 4,
                facts_per_writer: 500,
                subscribers: 2,
                keyspace: 64,
                config: StoreConfig { shards: 2, scope_capacity: 16, subscriber_capacity: 8 },
            },
            7,
        );
        assert!(n.counter_evicted > 0, "a tiny per-scope cap must shed");
        // 2 shards × 16 cap bounds the scope at 32 live facts.
        assert!(n.final_size <= 32, "final size {} exceeds the LRU bound", n.final_size);
    }
}
