//! E4 — WISH location alert end-to-end.
//!
//! Paper (§5): "From the time the laptop sends out the information
//! wirelessly to the time the subscriber gets notified by an IM alert, the
//! average delivery time was measured to be 5 seconds."

use crate::experiments::ExperimentOutput;
use crate::harness::{build, handle, Ev, PipelineOptions};
use crate::report::{dist, Table};
use simba_sim::{SimDuration, SimRng, SimTime, Summary};
use simba_sources::wish::{
    AccessPoint, LocationSubscription, LocationTrigger, Measurement, Point, RadioModel, WishClient,
    WishServer,
};
use std::collections::BTreeMap;

/// Number of building transitions simulated.
pub const TRANSITIONS: u64 = 400;

/// Server-side processing before the alert leaves WISH: wireless uplink +
/// server location estimation + Soft-State-Store update + alert-service
/// matching. Median seconds, drawn log-normally.
pub const WISH_PROCESSING_MEDIAN_SECS: f64 = 1.6;

/// Measured numbers.
#[derive(Debug, Clone, Copy)]
pub struct E4Numbers {
    /// Mean laptop-send→subscriber-notified latency, seconds (paper: 5).
    pub end_to_end_mean: f64,
    /// Location alerts fired.
    pub alerts: u64,
    /// Mean estimate confidence on accepted updates, percent.
    pub mean_confidence: f64,
}

fn campus() -> Vec<AccessPoint> {
    vec![
        AccessPoint {
            id: "ap-b31-w".into(),
            position: Point { x: 0.0, y: 0.0 },
            building: "B31".into(),
            area: "1F-west".into(),
        },
        AccessPoint {
            id: "ap-b31-e".into(),
            position: Point { x: 60.0, y: 0.0 },
            building: "B31".into(),
            area: "1F-east".into(),
        },
        AccessPoint {
            id: "ap-b40".into(),
            position: Point { x: 400.0, y: 300.0 },
            building: "B40".into(),
            area: "lobby".into(),
        },
    ]
}

/// Runs E4.
pub fn measure(seed: u64) -> (E4Numbers, Vec<Table>) {
    let mut rng = SimRng::new(seed ^ 0xE4);
    let mut server = WishServer::new("wish-svc", campus(), RadioModel::default());
    server.subscribe(LocationSubscription {
        tracked: "bob".into(),
        watcher: "alice".into(),
        trigger: LocationTrigger::Enter("B31".into()),
    });
    server.subscribe(LocationSubscription {
        tracked: "bob".into(),
        watcher: "alice".into(),
        trigger: LocationTrigger::Leave("B31".into()),
    });
    let client = WishClient {
        user: "bob".into(),
        report_every: SimDuration::from_secs(10),
    };

    // Bob shuttles between B31 and B40; each arrival generates a client
    // measurement whose report fires Enter/Leave alerts.
    let mut confidence = Summary::new();
    let mut emissions = Vec::new();
    let aps = campus();
    let model = *server.model();
    for i in 0..TRANSITIONS {
        let send_at = SimTime::from_secs(30 + i * 90);
        let position = if i % 2 == 0 {
            Point { x: 10.0, y: 2.0 } // inside B31 west
        } else {
            Point { x: 398.0, y: 301.0 } // inside B40
        };
        let Some(measurement) = client.measure(position, &aps, &model, "active", send_at, &mut rng)
        else {
            continue;
        };
        let m = Measurement { taken_at: send_at, ..measurement };
        let (estimate, alerts) = server.report(&m);
        confidence.observe(estimate.confidence);
        // WISH-side processing before SIMBA sees the alert.
        let processing =
            SimDuration::from_secs_f64(rng.lognormal(WISH_PROCESSING_MEDIAN_SECS, 0.3));
        for alert in alerts {
            emissions.push((send_at + processing, send_at, alert));
        }
    }

    let alerts_fired = emissions.len() as u64;
    let horizon = emissions.last().expect("transitions fired").0 + SimDuration::from_hours(1);
    let mut engine = build(PipelineOptions::new(seed, horizon));
    let mut send_times: BTreeMap<u64, SimTime> = BTreeMap::new();
    for (tag, (emit_at, send_at, mut alert)) in emissions.into_iter().enumerate() {
        send_times.insert(tag as u64, send_at);
        // The harness classifier keys on the body text, which carries the
        // transition verb ("entered"/"left").
        alert.source = "wish-svc".into();
        engine.schedule_at(emit_at, Ev::Emit { tag: tag as u64, alert });
    }
    engine.run_until(horizon, handle);
    let (world, _) = engine.into_parts();

    let mut end_to_end = Summary::new();
    for (tag, track) in &world.tracks {
        if let (Some(sent), Some(reached)) = (send_times.get(tag), track.reached_user_at) {
            end_to_end.observe((reached - *sent).as_secs_f64());
        }
    }

    let mut t = Table::new(
        "E4: WISH location alert, laptop send → subscriber notified",
        &["metric", "measured mean/p50/p95", "paper"],
    );
    t.row(&[
        "end-to-end delivery".to_string(),
        dist(&end_to_end),
        "5 s average".to_string(),
    ]);
    t.row(&[
        "estimate confidence (%)".to_string(),
        dist(&confidence),
        "\"confidence percentage with each estimate\"".to_string(),
    ]);
    t.row(&[
        "location alerts fired".to_string(),
        format!("{alerts_fired}"),
        format!("{TRANSITIONS} transitions injected"),
    ]);

    (
        E4Numbers {
            end_to_end_mean: end_to_end.mean(),
            alerts: alerts_fired,
            mean_confidence: confidence.mean(),
        },
        vec![t],
    )
}

/// Runs E4 and packages the result.
pub fn run(seed: u64) -> ExperimentOutput {
    let (_, tables) = measure(seed);
    ExperimentOutput {
        id: "E4",
        title: "WISH wireless location alert end-to-end",
        paper_claim: "laptop send to subscriber IM notification averaged 5 seconds",
        tables,
        notes: vec![format!(
            "WISH-side processing modelled log-normally with median {WISH_PROCESSING_MEDIAN_SECS} s (uplink + estimation + SSS + subscription match)"
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_end_to_end_near_five_seconds() {
        let (n, _) = measure(42);
        assert!(
            (3.8..6.5).contains(&n.end_to_end_mean),
            "end-to-end {} (paper 5)",
            n.end_to_end_mean
        );
        // Every transition fires Enter or Leave for B31.
        assert!(n.alerts >= TRANSITIONS - 4, "alerts {}", n.alerts);
        assert!(n.mean_confidence > 50.0, "confidence {}", n.mean_confidence);
    }
}
