//! A4 — nightly software rejuvenation vs letting leaks accumulate.
//!
//! §4.2.1: "Rejuvenation is a technique that gracefully terminates an
//! application and immediately restarts it at a clean internal state ...
//! Every night at 11:30 PM, MyAlertBuddy requests an orderly shutdown."
//! The rationale: "memory leaks in rarely executed branch of code or in
//! third-party software" accumulate until the process dies at an arbitrary
//! (bad) moment. This ablation models a leaky MyAlertBuddy and compares
//! scheduled rejuvenation against crash-driven restarts.

use crate::experiments::ExperimentOutput;
use crate::report::Table;
use simba_core::rejuvenate::RejuvenationPolicy;
use simba_core::stabilize::{check_invariants, Correction, HealthSnapshot, StabilizationConfig};
use simba_sim::{SimDuration, SimRng, SimTime};

/// Days simulated per arm.
pub const DAYS: u64 = 30;

/// Leak per processed alert, KB.
pub const LEAK_PER_ALERT_KB: u64 = 400;

/// Background leak per hour, KB.
pub const LEAK_PER_HOUR_KB: u64 = 2_000;

/// Hard crash threshold, KB (the process dies here).
pub const CRASH_AT_KB: u64 = 400_000;

/// Result of one arm.
#[derive(Debug, Clone, Copy)]
pub struct A4Arm {
    /// Nightly rejuvenation + stabilization memory checks enabled.
    pub rejuvenation: bool,
    /// Graceful restarts performed.
    pub graceful_restarts: u64,
    /// Hard crashes suffered.
    pub crashes: u64,
    /// Fraction of time the buddy was up.
    pub availability: f64,
    /// Alerts that arrived while the buddy was down.
    pub alerts_missed: u64,
    /// Peak resident memory, KB.
    pub peak_memory_kb: u64,
}

fn run_arm(seed: u64, rejuvenation: bool) -> A4Arm {
    let mut rng = SimRng::new(seed ^ 0xA4);
    let policy = RejuvenationPolicy::default();
    let stabilization = StabilizationConfig::default(); // 150 MB soft limit
    let horizon = SimTime::from_days(DAYS);

    let graceful_downtime = SimDuration::from_secs(12);
    let crash_downtime = SimDuration::from_mins(5); // MDC detect + restart

    let mut memory_kb = 60_000u64;
    let mut peak = memory_kb;
    let mut down_until = SimTime::ZERO;
    let mut downtime = SimDuration::ZERO;
    let mut graceful = 0u64;
    let mut crashes = 0u64;
    let mut missed = 0u64;

    let mut next_nightly = policy.next_nightly(SimTime::ZERO).expect("nightly on");
    let mut next_alert = SimTime::from_secs_f64_checked(rng.exponential(360.0));
    let mut last_hour = 0u64;
    let mut stabilize_tick = SimTime::ZERO + stabilization.health_interval;

    let mut t = SimTime::ZERO;
    while t < horizon {
        // Advance to the next event among: alert, nightly, stabilization.
        t = next_alert.min(next_nightly).min(stabilize_tick);
        if t >= horizon {
            break;
        }
        // Background leak accrues per elapsed hour.
        let hour = t.as_secs() / 3_600;
        if hour > last_hour {
            memory_kb += (hour - last_hour) * LEAK_PER_HOUR_KB;
            last_hour = hour;
        }

        let up = t >= down_until;
        if t == next_alert {
            next_alert = t + SimDuration::from_secs_f64(rng.exponential(360.0));
            if up {
                memory_kb += LEAK_PER_ALERT_KB;
            } else {
                missed += 1;
            }
        }
        if t == next_nightly {
            next_nightly = policy.next_nightly(t).expect("nightly on");
            if rejuvenation && up {
                graceful += 1;
                memory_kb = 60_000;
                down_until = t + graceful_downtime;
                downtime += graceful_downtime;
            }
        }
        if t == stabilize_tick {
            stabilize_tick = t + stabilization.health_interval;
            if rejuvenation && up {
                let snapshot = HealthSnapshot {
                    memory_kb,
                    last_progress_at: t,
                    threads_alive: true,
                    ..HealthSnapshot::default()
                };
                let violations = check_invariants(&stabilization, &snapshot, t);
                if violations.iter().any(|(_, c)| *c == Correction::Rejuvenate) {
                    graceful += 1;
                    memory_kb = 60_000;
                    down_until = t + graceful_downtime;
                    downtime += graceful_downtime;
                }
            }
        }

        peak = peak.max(memory_kb);
        if memory_kb >= CRASH_AT_KB && t >= down_until {
            crashes += 1;
            memory_kb = 60_000;
            down_until = t + crash_downtime;
            downtime += crash_downtime;
        }
    }

    A4Arm {
        rejuvenation,
        graceful_restarts: graceful,
        crashes,
        availability: 1.0 - downtime.as_secs_f64() / horizon.as_secs_f64(),
        alerts_missed: missed,
        peak_memory_kb: peak,
    }
}

// SimTime helper local to this experiment.
trait FromSecsF64 {
    fn from_secs_f64_checked(secs: f64) -> SimTime;
}
impl FromSecsF64 for SimTime {
    fn from_secs_f64_checked(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }
}

/// Runs both arms.
pub fn measure(seed: u64) -> (A4Arm, A4Arm, Vec<Table>) {
    let on = run_arm(seed, true);
    let off = run_arm(seed, false);

    let mut t = Table::new(
        "A4: nightly rejuvenation under a leaking MyAlertBuddy (30 days)",
        &[
            "arm",
            "graceful restarts",
            "hard crashes",
            "availability",
            "alerts missed",
            "peak memory",
        ],
    );
    for arm in [&on, &off] {
        t.row(&[
            if arm.rejuvenation { "rejuvenation on (paper)" } else { "rejuvenation off" }.to_string(),
            arm.graceful_restarts.to_string(),
            arm.crashes.to_string(),
            format!("{:.4} %", arm.availability * 100.0),
            arm.alerts_missed.to_string(),
            format!("{} MB", arm.peak_memory_kb / 1_000),
        ]);
    }

    (on, off, vec![t])
}

/// Runs A4 and packages the result.
pub fn run(seed: u64) -> ExperimentOutput {
    let (on, off, tables) = measure(seed);
    ExperimentOutput {
        id: "A4",
        title: "Software rejuvenation vs crash-driven restarts",
        paper_claim: "nightly 11:30 PM rejuvenation plus stabilization checks keep the buddy at a clean state",
        tables,
        notes: vec![format!(
            "rejuvenation converts {} hard crashes into {} scheduled restarts",
            off.crashes, on.graceful_restarts
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a4_rejuvenation_prevents_crashes() {
        let (on, off, _) = measure(42);
        assert_eq!(on.crashes, 0, "rejuvenated buddy must not hit the hard limit");
        assert!(off.crashes > 5, "leaky buddy crashes: {}", off.crashes);
        assert!(on.availability > off.availability);
        assert!(on.peak_memory_kb < off.peak_memory_kb);
        assert!(on.alerts_missed <= off.alerts_missed);
        // Roughly one graceful restart per night.
        assert!(
            (25..=70).contains(&(on.graceful_restarts as i64)),
            "graceful {}",
            on.graceful_restarts
        );
    }
}
