//! One module per experiment; each reproduces one measured claim from the
//! paper's §5 (E1–E7) or one design-choice ablation (A1–A6). See
//! `DESIGN.md` §5 for the index and `EXPERIMENTS.md` for recorded results.

pub mod a1_strategies;
pub mod a2_wal;
pub mod a3_watchdog;
pub mod a4_rejuvenation;
pub mod a5_dialogs;
pub mod a6_sanity;
pub mod e1_im_latency;
pub mod e2_proxy;
pub mod e3_aladdin;
pub mod e3_host_soak;
pub mod e4_wish;
pub mod e5_faultlog;
pub mod e6_gateway;
pub mod e7_store;
pub mod e8_sharded;
pub mod e9_ledger;
pub mod e10_rules;

use crate::report::Table;

/// The output of one experiment run.
#[derive(Debug)]
pub struct ExperimentOutput {
    /// Short id, e.g. `"E1"`.
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The paper's reported value(s), quoted.
    pub paper_claim: &'static str,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Free-form observations appended to the report.
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Prints the experiment as aligned text to stdout.
    pub fn print(&self) {
        println!("================================================================");
        println!("{} — {}", self.id, self.title);
        println!("paper: {}", self.paper_claim);
        println!("================================================================");
        for t in &self.tables {
            t.print();
        }
        for n in &self.notes {
            println!("note: {n}");
        }
        println!();
    }

    /// Renders the experiment as markdown (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n*Paper:* {}\n\n", self.id, self.title, self.paper_claim);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("*Note:* {n}\n\n"));
        }
        out
    }
}

/// Runs every experiment with the default seed, in order.
pub fn run_all(seed: u64) -> Vec<ExperimentOutput> {
    vec![
        e1_im_latency::run(seed),
        e2_proxy::run(seed),
        e3_aladdin::run(seed),
        e3_host_soak::run(seed),
        e4_wish::run(seed),
        e5_faultlog::run(seed),
        e6_gateway::run(seed),
        e7_store::run(seed),
        e8_sharded::run(seed),
        e9_ledger::run(seed),
        e10_rules::run(seed),
        a1_strategies::run(seed),
        a2_wal::run(seed),
        a3_watchdog::run(seed),
        a4_rejuvenation::run(seed),
        a5_dialogs::run(seed),
        a6_sanity::run(seed),
    ]
}
