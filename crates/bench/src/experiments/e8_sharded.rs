//! E8 — million-user sharded host: registration at population scale,
//! traffic on an active subset, hibernation bounding memory, group
//! commit bounding log work.
//!
//! The tentpole claim (DESIGN.md §12): a deployment hosts *registered*
//! users in the millions while only the *active* fraction costs memory
//! and CPU. [`simba_runtime::ShardedHost`] multiplexes thousands of
//! buddies per shard worker, appends every alert to a group-committed
//! shard log, and hibernates idle buddies to compact snapshots. This
//! experiment drives that architecture end to end:
//!
//! * register `users` (full scale: 1 000 000) — one bulk message per
//!   shard, roster entries only, no buddy state;
//! * drive `waves` rounds of alerts over the first `active` users
//!   through the full §4.2.1 pipeline (log → ack → classify → route →
//!   deliver → mark), acked within a 1 ms window;
//! * assert the ledger: every alert logged, delivered, acked, marked,
//!   with zero crashes and zero unrouted;
//! * let the idle sweep park the whole active set and assert memory
//!   tracks *activations*, not registrations.
//!
//! Wall-clock throughput is compared against E3H's task-per-user soak.
//! On multi-core hardware the share-nothing shards are the scale-out
//! lever (each worker owns its roster, wheel, and log; nothing is
//! shared), but this repository's reference environment is a single
//! core, where E3H's ~65 k alerts/s already saturates the CPU with the
//! same §4.2.1 pipeline — so E8's honest single-core payoff is *memory
//! bounded by active users* and *~500 log writes per fsync-equivalent
//! commit*, at roughly E3H parity throughput. The asserted floor is a
//! regression guard on that measured number, not the aspirational
//! multi-core multiplier; `BENCH_e8.json` records the real value so the
//! trajectory across PRs stays machine-readable.

use crate::benchjson::{BenchMode, BenchReport};
use crate::experiments::ExperimentOutput;
use crate::report::Table;
use simba_core::alert::IncomingAlert;
use simba_core::subscription::UserId;
use simba_core::Telemetry;
use simba_runtime::{
    Channels, ConfigFactory, SendOutcome, ShardedHost, ShardedHostConfig, ShardedSnapshot,
};
use simba_sim::{SimDuration, SimTime};
use std::sync::Arc;
use std::time::Duration;

/// Experiment shape. [`E8Options::full`] is the recorded configuration;
/// [`E8Options::smoke`] the CI shape (same code paths, reduced scale).
#[derive(Debug, Clone, Copy)]
pub struct E8Options {
    /// Registered users (roster entries; memory is *not* proportional
    /// to this).
    pub users: usize,
    /// Users that actually receive traffic (buddies built, memory *is*
    /// proportional to this).
    pub active: usize,
    /// Alert waves over the active set; total alerts = active × waves.
    pub waves: usize,
    /// Shard workers multiplexing the fleet.
    pub shards: usize,
    /// Idle threshold before the sweep parks a buddy (virtual time on
    /// the single-threaded path, wall time with `threads`).
    pub hibernate_after: SimDuration,
    /// Thread-per-shard: run each shard worker on a dedicated OS thread
    /// with its own real-time event loop. The drive switches from the
    /// paused virtual clock to wall-clock pacing, so this is the
    /// multi-core measurement shape, not the deterministic one.
    pub threads: bool,
}

impl E8Options {
    /// Full scale: 1 M registered, 100 k active, 10 waves (1 M alerts).
    pub fn full() -> Self {
        E8Options {
            users: 1_000_000,
            active: 100_000,
            waves: 10,
            shards: 8,
            hibernate_after: SimDuration::from_secs(30),
            threads: false,
        }
    }

    /// CI smoke: 20 k registered, 2 k active, 5 waves (10 k alerts).
    pub fn smoke() -> Self {
        E8Options {
            users: 20_000,
            active: 2_000,
            waves: 5,
            shards: 4,
            hibernate_after: SimDuration::from_secs(30),
            threads: false,
        }
    }

    /// The multi-core comparison shape: CI-sized, real-time, `shards`
    /// threads. The same shape with `shards = 1` is the single-core
    /// baseline the multiplier divides by.
    pub fn multicore(shards: usize, mode: BenchMode) -> Self {
        let (users, active, waves) = match mode {
            BenchMode::Full => (200_000, 20_000, 10),
            BenchMode::Smoke => (40_000, 8_000, 5),
        };
        E8Options {
            users,
            active,
            waves,
            shards: shards.max(1),
            // Wall time: short enough that the post-drain park completes
            // in a bench run, long enough to stay out of the traffic.
            hibernate_after: SimDuration::from_millis(250),
            threads: true,
        }
    }

    fn total_alerts(&self) -> u64 {
        (self.active * self.waves) as u64
    }
}

/// Measured headline numbers, exposed for regression tests.
#[derive(Debug, Clone, Copy)]
pub struct E8Numbers {
    /// Registered users.
    pub users: usize,
    /// Users that received traffic.
    pub active: usize,
    /// Total alerts driven.
    pub total_alerts: u64,
    /// Deliveries confirmed by an ack (must equal the total).
    pub acked: u64,
    /// Highest concurrent live-buddy count sampled.
    pub peak_active: usize,
    /// Buddies parked by the idle sweep after the drain.
    pub hibernated_final: u64,
    /// Log appends (one per alert) and processed-marks.
    pub log_appends: u64,
    /// Group commits covering all appends + marks.
    pub group_commits: u64,
    /// Appends + marks amortized per fsync-equivalent commit.
    pub writes_per_commit: f64,
    /// Wall-clock seconds for register + drive + drain.
    pub wall_secs: f64,
    /// Alerts per wall-clock second.
    pub throughput: f64,
    /// Buddy crashes (must be zero).
    pub crashes: u64,
    /// OS threads the shard workers ran on (1 on the single-threaded
    /// executor, `shards` in thread-per-shard mode).
    pub shard_threads: usize,
}

/// Every IM send is accepted and acked 1 ms later — the cheapest honest
/// full-pipeline outcome (ack timers still flow through the shard wheel).
#[derive(Clone)]
struct AckFast;

impl Channels for AckFast {
    fn send(&mut self, _comm_type: simba_core::CommType, _address: &str, _text: &str) -> SendOutcome {
        SendOutcome::AcceptedWithAck(Duration::from_millis(1))
    }
}

/// One shared profile shape per user, rebuilt on every activation (the
/// factory is the rehydration path's config source).
fn factory() -> ConfigFactory {
    use simba_core::address::{Address, AddressBook, CommType};
    use simba_core::classify::{Classifier, KeywordField};
    use simba_core::mode::DeliveryMode;
    use simba_core::rejuvenate::RejuvenationPolicy;
    use simba_core::subscription::SubscriptionRegistry;

    Arc::new(|user: &UserId| {
        let mut classifier = Classifier::new();
        classifier.accept_source("shard-gw", KeywordField::Body, "cfg");
        classifier.map_keyword("Sensor", "Home");
        let mut registry = SubscriptionRegistry::new();
        let profile = registry.register_user(user.clone());
        let mut book = AddressBook::new();
        book.add(Address::new("IM", CommType::Im, format!("im:{}", user.0)))
            .expect("fresh book");
        book.add(Address::new("EM", CommType::Email, format!("{}@mail", user.0)))
            .expect("fresh book");
        profile.address_book = book;
        profile.define_mode(DeliveryMode::im_then_email(
            "Urgent",
            "IM",
            "EM",
            SimDuration::from_secs(60),
        ));
        registry.subscribe("Home", user.clone(), "Urgent").expect("fresh subscription");
        simba_core::MabConfig { classifier, registry, rejuvenation: RejuvenationPolicy::default() }
    })
}

struct RawE8 {
    final_snap: ShardedSnapshot,
    peak_active: usize,
}

async fn drive(opts: E8Options) -> RawE8 {
    let config = ShardedHostConfig {
        shards: opts.shards,
        hibernate_after: opts.hibernate_after,
        ..ShardedHostConfig::default()
    };
    let (host, _notices) =
        ShardedHost::new(AckFast, config, factory(), Telemetry::disabled()).expect("in-memory host");

    // Population-scale registration: one bulk message per shard.
    let users: Vec<UserId> = (0..opts.users).map(|i| UserId::new(format!("user{i:06}"))).collect();
    let active: Vec<UserId> = users[..opts.active].to_vec();
    host.register_many(users).await;

    let total = opts.total_alerts();
    let mut peak_active = 0usize;
    for wave in 0..opts.waves {
        let body = format!("Sensor wave {wave} ON");
        for user in &active {
            let alert = IncomingAlert::from_im("shard-gw", body.clone(), SimTime::ZERO);
            assert!(host.submit_im(user, alert).await, "shard worker died mid-bench");
        }
        // 5 ms virtual: the 1 ms ack timers of this wave fire and retire
        // before the next wave lands.
        tokio::time::sleep(Duration::from_millis(5)).await;
    }

    // Drain: every delivery acked, nothing in flight. Sampled sparsely —
    // a snapshot walks the full roster.
    let mut drained = None;
    for _ in 0..120 {
        let snap = host.snapshot().await;
        peak_active = peak_active.max(snap.active);
        if snap.acked == total && snap.in_flight == 0 {
            drained = Some(snap);
            break;
        }
        tokio::time::sleep(Duration::from_millis(50)).await;
    }
    let drained = drained.expect("deliveries failed to drain: lifecycle leak");
    assert_eq!(drained.stats.received_im, total, "every alert entered the pipeline");
    assert_eq!(drained.unrouted, 0, "every user was registered");
    assert_eq!(drained.crashes, 0, "no buddy may crash in the clean run");

    // Let the idle sweep park the whole active set: memory tracks
    // activations, not registrations.
    tokio::time::sleep(Duration::from_secs(90)).await;
    let final_snap = host.shutdown().await;
    assert_eq!(final_snap.active, 0, "idle buddies must all hibernate");
    assert_eq!(final_snap.hibernated, opts.active, "every activation parked");
    assert_eq!(final_snap.log.appends, total, "one log append per alert");
    assert_eq!(final_snap.log.marks, total, "one processed-mark per alert");
    RawE8 { final_snap, peak_active }
}

/// Real-time counterpart of [`drive`] for the thread-per-shard shape:
/// the workers run wall-anchored event loops on their own threads, so
/// the pacing sleeps are real and the drain/park phases poll instead of
/// jumping virtual time. Returns the raw outcome plus the wall seconds
/// of the traffic window (first submit through drain), which is what
/// the multi-core multiplier divides — the park wait afterwards is a
/// fixed idle cost, not pipeline work.
async fn drive_threaded(opts: E8Options) -> (RawE8, f64) {
    let config = ShardedHostConfig {
        shards: opts.shards,
        threads: true,
        hibernate_after: opts.hibernate_after,
        ..ShardedHostConfig::default()
    };
    let (host, _notices) =
        ShardedHost::new(AckFast, config, factory(), Telemetry::disabled()).expect("in-memory host");

    let users: Vec<UserId> = (0..opts.users).map(|i| UserId::new(format!("user{i:06}"))).collect();
    let active: Vec<UserId> = users[..opts.active].to_vec();
    host.register_many(users).await;

    let total = opts.total_alerts();
    let traffic = std::time::Instant::now();
    let mut peak_active = 0usize;
    for wave in 0..opts.waves {
        let body = format!("Sensor wave {wave} ON");
        for user in &active {
            let alert = IncomingAlert::from_im("shard-gw", body.clone(), SimTime::ZERO);
            assert!(host.submit_im(user, alert).await, "shard worker died mid-bench");
        }
    }

    // Drain under real time: poll until every delivery is acked and
    // retired (the 1 ms ack timers fire on the shard threads' wheels).
    let mut drained = None;
    for _ in 0..2_000 {
        let snap = host.snapshot().await;
        peak_active = peak_active.max(snap.active);
        if snap.acked == total && snap.in_flight == 0 {
            drained = Some(snap);
            break;
        }
        tokio::time::sleep(Duration::from_millis(5)).await;
    }
    let traffic_secs = traffic.elapsed().as_secs_f64();
    let drained = drained.expect("deliveries failed to drain: lifecycle leak");
    assert_eq!(drained.stats.received_im, total, "every alert entered the pipeline");
    assert_eq!(drained.unrouted, 0, "every user was registered");
    assert_eq!(drained.crashes, 0, "no buddy may crash in the clean run");

    // Park: poll until the idle sweep hibernates the whole active set.
    let mut final_snap = None;
    for _ in 0..2_000 {
        let snap = host.snapshot().await;
        if snap.active == 0 && snap.hibernated == opts.active {
            final_snap = Some(snap);
            break;
        }
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    assert!(final_snap.is_some(), "idle buddies must all hibernate");
    let final_snap = host.shutdown().await;
    assert_eq!(final_snap.active, 0, "idle buddies must all hibernate");
    assert_eq!(final_snap.hibernated, opts.active, "every activation parked");
    assert_eq!(final_snap.log.appends, total, "one log append per alert");
    assert_eq!(final_snap.log.marks, total, "one processed-mark per alert");
    (RawE8 { final_snap, peak_active }, traffic_secs)
}

/// Runs E8 and returns the headline numbers plus tables. Dispatches on
/// [`E8Options::threads`]: the deterministic paused-clock drive, or the
/// real-time thread-per-shard one.
pub fn measure(opts: E8Options) -> (E8Numbers, Vec<Table>) {
    let (raw, wall_secs) = if opts.threads {
        tokio::runtime::block_on(async move { drive_threaded(opts).await })
    } else {
        let wall = std::time::Instant::now();
        let raw = tokio::runtime::block_on_test(true, async move { drive(opts).await });
        (raw, wall.elapsed().as_secs_f64())
    };
    let total = opts.total_alerts();
    let commits = raw.final_snap.log.group_commits.max(1);

    let numbers = E8Numbers {
        users: opts.users,
        active: opts.active,
        total_alerts: total,
        acked: raw.final_snap.acked,
        peak_active: raw.peak_active,
        hibernated_final: raw.final_snap.hibernated as u64,
        log_appends: raw.final_snap.log.appends,
        group_commits: raw.final_snap.log.group_commits,
        writes_per_commit: (raw.final_snap.log.appends + raw.final_snap.log.marks) as f64
            / commits as f64,
        wall_secs,
        throughput: if wall_secs > 0.0 { total as f64 / wall_secs } else { f64::INFINITY },
        crashes: raw.final_snap.crashes,
        shard_threads: if opts.threads { opts.shards } else { 1 },
    };

    let mut config = Table::new(
        "E8: sharded host configuration",
        &["registered", "active", "waves", "total alerts", "shards", "threads"],
    );
    config.row(&[
        numbers.users.to_string(),
        numbers.active.to_string(),
        opts.waves.to_string(),
        total.to_string(),
        opts.shards.to_string(),
        numbers.shard_threads.to_string(),
    ]);

    let mut ledger = Table::new(
        "E8: delivery ledger (all asserted)",
        &["alerts", "acked", "log appends", "marks", "crashes", "unrouted"],
    );
    ledger.row(&[
        total.to_string(),
        numbers.acked.to_string(),
        numbers.log_appends.to_string(),
        raw.final_snap.log.marks.to_string(),
        numbers.crashes.to_string(),
        raw.final_snap.unrouted.to_string(),
    ]);

    let mut bounded = Table::new(
        "E8: memory tracks active users, not registered",
        &["registered", "peak live buddies", "hibernated after sweep", "live floor"],
    );
    bounded.row(&[
        numbers.users.to_string(),
        numbers.peak_active.to_string(),
        numbers.hibernated_final.to_string(),
        "0".into(),
    ]);

    let mut log = Table::new(
        "E8: group commit amortization",
        &["appends + marks", "group commits", "writes/commit", "segments rotated"],
    );
    log.row(&[
        (numbers.log_appends + raw.final_snap.log.marks).to_string(),
        numbers.group_commits.to_string(),
        format!("{:.1}", numbers.writes_per_commit),
        raw.final_snap.log.segments_rotated.to_string(),
    ]);

    let mut perf = Table::new(
        "E8: wall-clock throughput",
        &["alerts", "wall seconds", "alerts/s"],
    );
    perf.row(&[
        total.to_string(),
        format!("{:.2}", numbers.wall_secs),
        format!("{:.0}", numbers.throughput),
    ]);

    (numbers, vec![config, ledger, bounded, log, perf])
}

/// Floor thresholds (alerts/s), regression guards on the recorded
/// single-core numbers (full ≈ 55 k, smoke ≈ 110 k on the reference
/// machine), set low enough to tolerate run-to-run variance and a loaded
/// CI box. The design target of 10× E3H is a multi-core property (one
/// core per share-nothing shard); a single core cannot express it, so it
/// is documented in `EXPERIMENTS.md` rather than asserted here.
pub const FULL_THROUGHPUT_FLOOR: f64 = 30_000.0;
/// See [`FULL_THROUGHPUT_FLOOR`].
pub const SMOKE_THROUGHPUT_FLOOR: f64 = 20_000.0;

/// Runs E8 at the given shape, writes `BENCH_e8.json`, asserts floors.
pub fn run_with(opts: E8Options, mode: BenchMode) -> ExperimentOutput {
    let (numbers, tables) = measure(opts);

    let mut bench = BenchReport::new("E8", mode);
    bench
        .metric("throughput", numbers.throughput, "alerts/s")
        .metric("total_alerts", numbers.total_alerts as f64, "alerts")
        .metric("registered_users", numbers.users as f64, "users")
        .metric("active_users", numbers.active as f64, "users")
        .metric("peak_live_buddies", numbers.peak_active as f64, "buddies")
        .metric("hibernated_final", numbers.hibernated_final as f64, "buddies")
        .metric("writes_per_commit", numbers.writes_per_commit, "writes")
        .metric("wall_secs", numbers.wall_secs, "s")
        .metric("shard_threads", numbers.shard_threads as f64, "threads")
        .metric("cores", available_cores() as f64, "cores");
    let floor = match mode {
        BenchMode::Full => FULL_THROUGHPUT_FLOOR,
        BenchMode::Smoke => SMOKE_THROUGHPUT_FLOOR,
    };
    bench.floor("throughput", floor, numbers.throughput);
    // The structural floor: live buddies never exceed the active subset.
    bench.floor(
        "peak_live_buddies_bounded",
        0.0,
        (numbers.active as f64) - (numbers.peak_active as f64),
    );
    bench.write();
    assert!(
        numbers.throughput >= floor,
        "throughput floor: {:.0} alerts/s < {floor:.0}",
        numbers.throughput
    );
    assert!(
        numbers.peak_active <= numbers.active,
        "live buddies exceeded the active subset: {} > {}",
        numbers.peak_active,
        numbers.active
    );

    ExperimentOutput {
        id: "E8",
        title: "million-user sharded host (hibernation + group-commit shard logs)",
        paper_claim: "§3.3/§4.2.1: per-user agents at deployment scale with pessimistic logging — \
                      reproduced as shard workers multiplexing hibernating buddies",
        tables,
        notes: vec![
            format!(
                "{} alerts across {} active of {} registered users at {:.0} alerts/s \
                 ({:.1}× E3H's recorded 65 k/s task-per-user soak, on one core; \
                 shards are share-nothing, so cores scale the multiplier)",
                numbers.total_alerts,
                numbers.active,
                numbers.users,
                numbers.throughput,
                numbers.throughput / 65_000.0
            ),
            format!(
                "group commit amortized {:.1} log writes per commit; every buddy parked \
                 back to a snapshot after the idle sweep (live floor 0)",
                numbers.writes_per_commit
            ),
        ],
    }
}

/// Runs E8 at full scale (the recorded shape).
pub fn run(_seed: u64) -> ExperimentOutput {
    run_with(E8Options::full(), BenchMode::Full)
}

fn available_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The asserted multi-core multiplier: with ≥ 4 cores, `threads` shard
/// threads must deliver at least twice the single-thread throughput of
/// the same build. Below 4 cores the multiplier is recorded, not
/// asserted — a 1-core box cannot express parallelism, and on 2–3 cores
/// the margin is too thin to guard without flaking.
pub const MULTICORE_MULTIPLIER_FLOOR: f64 = 2.0;

/// Runs the multi-core comparison: the same build, same shape, driven
/// once on one shard thread and once on `threads` of them, both over
/// real time. Writes `BENCH_e8.json` with `shard_threads`, `cores`, the
/// single/multi throughputs and the multiplier; asserts the multiplier
/// floor when the machine has ≥ 4 cores.
pub fn run_multicore(threads: usize, mode: BenchMode) -> ExperimentOutput {
    let threads = threads.max(2);
    let cores = available_cores();
    let (single, _) = measure(E8Options::multicore(1, mode));
    let (multi, tables) = measure(E8Options::multicore(threads, mode));
    let multiplier = if single.throughput > 0.0 {
        multi.throughput / single.throughput
    } else {
        f64::INFINITY
    };

    let mut bench = BenchReport::new("E8", mode);
    bench
        .metric("throughput", multi.throughput, "alerts/s")
        .metric("throughput_single_thread", single.throughput, "alerts/s")
        .metric("multicore_multiplier", multiplier, "x")
        .metric("total_alerts", multi.total_alerts as f64, "alerts")
        .metric("registered_users", multi.users as f64, "users")
        .metric("active_users", multi.active as f64, "users")
        .metric("peak_live_buddies", multi.peak_active as f64, "buddies")
        .metric("hibernated_final", multi.hibernated_final as f64, "buddies")
        .metric("writes_per_commit", multi.writes_per_commit, "writes")
        .metric("wall_secs", multi.wall_secs, "s")
        .metric("shard_threads", multi.shard_threads as f64, "threads")
        .metric("cores", cores as f64, "cores");
    let floor = match mode {
        BenchMode::Full => FULL_THROUGHPUT_FLOOR,
        BenchMode::Smoke => SMOKE_THROUGHPUT_FLOOR,
    };
    bench.floor("throughput", floor, multi.throughput);
    bench.floor(
        "peak_live_buddies_bounded",
        0.0,
        (multi.active as f64) - (multi.peak_active as f64),
    );
    let assert_multiplier = cores >= 4;
    if assert_multiplier {
        bench.floor("multicore_multiplier", MULTICORE_MULTIPLIER_FLOOR, multiplier);
    }
    bench.write();
    assert!(
        multi.throughput >= floor,
        "threaded throughput floor: {:.0} alerts/s < {floor:.0}",
        multi.throughput
    );
    if assert_multiplier {
        assert!(
            multiplier >= MULTICORE_MULTIPLIER_FLOOR,
            "multi-core multiplier: {threads} shard threads gave {multiplier:.2}x \
             (single {:.0} alerts/s, multi {:.0} alerts/s) on a {cores}-core machine",
            single.throughput,
            multi.throughput
        );
    }

    let mut comparison = Table::new(
        "E8: multi-core multiplier (same build, same shape)",
        &["shard threads", "cores", "single-thread alerts/s", "multi-thread alerts/s", "multiplier"],
    );
    comparison.row(&[
        threads.to_string(),
        cores.to_string(),
        format!("{:.0}", single.throughput),
        format!("{:.0}", multi.throughput),
        format!("{multiplier:.2}x"),
    ]);
    let mut tables = tables;
    tables.push(comparison);

    ExperimentOutput {
        id: "E8",
        title: "million-user sharded host, thread-per-shard multi-core mode",
        paper_claim: "§3.3/§4.2.1 at scale: share-nothing shard workers on real cores multiply \
                      throughput without relaxing durable-before-ack",
        tables,
        notes: vec![
            format!(
                "{} shard threads on {cores} core(s): {:.0} alerts/s vs {:.0} single-thread \
                 ({multiplier:.2}x){}",
                threads,
                multi.throughput,
                single.throughput,
                if assert_multiplier { "; >= 2x asserted" } else { "; multiplier recorded, asserted only with >= 4 cores" }
            ),
            format!(
                "ledger identical to the single-threaded mode: every alert appended, marked, \
                 acked; {:.1} writes per group commit; all {} activations parked after the drain",
                multi.writes_per_commit, multi.active
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_smoke_ledger_balances_and_parks() {
        // Tiny shape; the ledger + hibernation assertions run inside
        // drive(). No throughput floor at test scale.
        let opts = E8Options {
            users: 2_000,
            active: 200,
            waves: 3,
            shards: 2,
            hibernate_after: SimDuration::from_secs(30),
            threads: false,
        };
        let (n, _) = measure(opts);
        assert_eq!(n.total_alerts, 600);
        assert_eq!(n.acked, 600);
        assert_eq!(n.crashes, 0);
        assert_eq!(n.hibernated_final, 200);
        assert!(n.peak_active <= 200);
        assert!(n.peak_active > 0, "the active subset must actually build buddies");
        assert!(n.writes_per_commit > 1.0, "group commit must amortize writes");
    }
}
