//! A1 — delivery modes vs blind redundancy vs email-only.
//!
//! The §2.3/§3.1 motivation: old Aladdin's 2×email+2×SMS blind redundancy
//! "has not worked well" — no guarantee for critical alerts, irritating
//! for the rest — while email alone is unbounded-latency. SIMBA's claim is
//! that IM-with-ack plus fallback dominates both: faster *and* fewer
//! messages. This ablation measures all three (plus direct-SMS) on the
//! same alert workload and user-presence timeline.

use crate::experiments::ExperimentOutput;
use crate::report::Table;
use simba_baselines::strategy::Strategy;
use simba_baselines::trial::{run_trial, TrialSetup};
use simba_net::presence::{DwellProfile, PresenceTimeline};
use simba_sim::{SimRng, SimTime, Summary};

/// Alerts per strategy.
pub const ALERTS: u64 = 2_000;

/// Per-strategy aggregate.
#[derive(Debug, Clone)]
pub struct StrategyRow {
    /// The strategy.
    pub strategy: Strategy,
    /// Fraction seen within 5 minutes.
    pub seen_5min: f64,
    /// Fraction seen within 1 hour.
    pub seen_1h: f64,
    /// Fraction never seen within the horizon.
    pub never_seen: f64,
    /// Median time-to-seen, seconds (over seen alerts).
    pub median_latency: f64,
    /// Mean messages per alert — the irritability factor.
    pub messages_per_alert: f64,
    /// Fraction of alerts positively confirmed (acked).
    pub ack_rate: f64,
}

/// Runs the four-strategy comparison.
pub fn measure(seed: u64) -> (Vec<StrategyRow>, Vec<Table>) {
    let horizon = SimTime::from_days(14);
    let mut presence_rng = SimRng::new(seed ^ 0xA1);
    let presence = PresenceTimeline::generate(horizon, DwellProfile::default(), &mut presence_rng);
    let setup = TrialSetup::with_defaults(presence);

    let strategies = [
        Strategy::EmailOnly,
        Strategy::DirectSms,
        Strategy::aladdin_blind(),
        Strategy::simba_default(),
    ];

    let mut rows = Vec::new();
    for strategy in strategies {
        let mut rng = SimRng::new(seed ^ 0xA1A1);
        let mut latencies = Summary::new();
        let mut seen_5min = 0u64;
        let mut seen_1h = 0u64;
        let mut never = 0u64;
        let mut messages = 0u64;
        let mut acked = 0u64;
        for _ in 0..ALERTS {
            // Alerts land at arbitrary times across the fortnight, so they
            // sample every presence context.
            let at = SimTime::from_secs(rng.range(0, horizon.as_secs() - 7_200));
            let out = run_trial(&setup, strategy, at, &mut rng);
            messages += u64::from(out.messages_sent);
            if out.acked {
                acked += 1;
            }
            match out.latency_from(at) {
                Some(d) => {
                    latencies.observe(d.as_secs_f64());
                    if d.as_secs() <= 300 {
                        seen_5min += 1;
                    }
                    if d.as_secs() <= 3_600 {
                        seen_1h += 1;
                    }
                }
                None => never += 1,
            }
        }
        let n = ALERTS as f64;
        rows.push(StrategyRow {
            strategy,
            seen_5min: seen_5min as f64 / n,
            seen_1h: seen_1h as f64 / n,
            never_seen: never as f64 / n,
            median_latency: latencies.median(),
            messages_per_alert: messages as f64 / n,
            ack_rate: acked as f64 / n,
        });
    }

    // Second table: the ack-timeout knob of SIMBA's delivery modes — the
    // timeliness-vs-irritability trade-off a user tunes per category. A
    // short window escalates (and multiplies messages) before the human
    // had a chance to ack; a long one delays the fallback for absent users.
    let mut sweep_rows = Vec::new();
    for timeout_secs in [15u64, 60, 300] {
        let strategy = Strategy::SimbaImFallback {
            ack_timeout: simba_sim::SimDuration::from_secs(timeout_secs),
        };
        let mut rng = SimRng::new(seed ^ 0xA1A1);
        let mut latencies = Summary::new();
        let mut seen_5min = 0u64;
        let mut messages = 0u64;
        let mut acked = 0u64;
        for _ in 0..ALERTS {
            let at = SimTime::from_secs(rng.range(0, horizon.as_secs() - 7_200));
            let out = run_trial(&setup, strategy, at, &mut rng);
            messages += u64::from(out.messages_sent);
            if out.acked {
                acked += 1;
            }
            if let Some(d) = out.latency_from(at) {
                latencies.observe(d.as_secs_f64());
                if d.as_secs() <= 300 {
                    seen_5min += 1;
                }
            }
        }
        let n = ALERTS as f64;
        sweep_rows.push((
            timeout_secs,
            seen_5min as f64 / n,
            messages as f64 / n,
            acked as f64 / n,
        ));
    }

    let mut t = Table::new(
        "A1: delivery strategies on the same workload and presence timeline",
        &[
            "strategy",
            "seen ≤5 min",
            "seen ≤1 h",
            "never seen",
            "median latency",
            "msgs/alert",
            "confirmed",
        ],
    );
    for r in &rows {
        t.row(&[
            r.strategy.label(),
            format!("{:.1} %", r.seen_5min * 100.0),
            format!("{:.1} %", r.seen_1h * 100.0),
            format!("{:.1} %", r.never_seen * 100.0),
            format!("{:.0} s", r.median_latency),
            format!("{:.2}", r.messages_per_alert),
            format!("{:.1} %", r.ack_rate * 100.0),
        ]);
    }

    let mut t2 = Table::new(
        "A1b: SIMBA ack-timeout sensitivity (block escalation window)",
        &["ack timeout", "seen ≤5 min", "msgs/alert", "confirmed"],
    );
    for (secs, seen, msgs, ack) in &sweep_rows {
        t2.row(&[
            format!("{secs} s"),
            format!("{:.1} %", seen * 100.0),
            format!("{msgs:.2}"),
            format!("{:.1} %", ack * 100.0),
        ]);
    }

    (rows, vec![t, t2])
}

/// Runs A1 and packages the result.
pub fn run(seed: u64) -> ExperimentOutput {
    let (_, tables) = measure(seed);
    ExperimentOutput {
        id: "A1",
        title: "Delivery modes vs blind redundancy vs single channels",
        paper_claim: "\"such heavy use of redundancy has not worked well\" (§2.3); SIMBA's modes deliver dependably without being irritating",
        tables,
        notes: vec![
            "irritability = messages per alert; old Aladdin pays 4.0 unconditionally".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [StrategyRow], s: &Strategy) -> &'a StrategyRow {
        rows.iter().find(|r| &r.strategy == s).expect("strategy measured")
    }

    #[test]
    fn a1_simba_dominates_on_speed_and_messages() {
        let (rows, _) = measure(42);
        let simba = row(&rows, &Strategy::simba_default());
        let blind = row(&rows, &Strategy::aladdin_blind());
        let email = row(&rows, &Strategy::EmailOnly);

        // SIMBA reaches the user within 5 minutes at least as often as
        // blind redundancy, and far more often than email alone.
        assert!(simba.seen_5min >= blind.seen_5min - 0.02, "simba {} vs blind {}", simba.seen_5min, blind.seen_5min);
        assert!(simba.seen_5min > email.seen_5min + 0.2);

        // ...at a clearly lower message cost than 2EM+2SMS. (When the
        // user is away a lot, SIMBA escalates through all three blocks, so
        // the gap narrows — but blind redundancy pays 4 unconditionally.)
        assert!(blind.messages_per_alert > 3.9);
        assert!(
            simba.messages_per_alert < 0.75 * blind.messages_per_alert,
            "simba msgs {} vs blind {}",
            simba.messages_per_alert,
            blind.messages_per_alert
        );

        // Only SIMBA confirms delivery.
        assert!(simba.ack_rate > 0.2);
        assert_eq!(blind.ack_rate, 0.0);
        assert_eq!(email.ack_rate, 0.0);

        // Email-only is strictly slower. (The absolute medians are
        // dominated by user absence — when nobody can see any device, no
        // strategy helps — so the discriminating numbers are the ≤5 min
        // rate above and the message cost, not the unconditional median.)
        assert!(
            email.median_latency > simba.median_latency,
            "email median {} vs simba {}",
            email.median_latency,
            simba.median_latency
        );
        assert!(email.seen_1h < simba.seen_1h);
    }
}
