//! Merges the per-experiment `BENCH_e*.json` artifacts into
//! `BENCH_TRAJECTORY.json` (trajectory schema v1, see `EXPERIMENTS.md`)
//! and prints a one-line summary per experiment.
//!
//! Usage: `bench_trajectory [dir]` — default directory is
//! `BENCH_OUT_DIR`, falling back to the current directory (matching
//! where the `exp_*` bins write their artifacts).
//!
//! Exits 1 when any merged artifact recorded a failed floor, so `make
//! ci` gates on the whole trajectory, not just the last bench run.

use simba_bench::benchjson::aggregate;
use std::path::PathBuf;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("BENCH_OUT_DIR").map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("."));
    let (path, artifacts) = match aggregate(&dir) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if artifacts.is_empty() {
        println!("no BENCH_e*.json artifacts in {} — wrote empty trajectory", dir.display());
    }
    let mut all_passed = true;
    for a in &artifacts {
        let floors = a.floors.len();
        let held = a.floors.iter().filter(|(_, _, passed)| *passed).count();
        all_passed &= held == floors;
        let headline = a
            .metrics
            .first()
            .map(|(name, value, unit)| format!("{name}={value:.0} {unit}"))
            .unwrap_or_else(|| "no metrics".to_string());
        println!(
            "{:<4} [{}] {headline}; floors {held}/{floors} {}",
            a.experiment,
            a.mode,
            if held == floors { "ok" } else { "FAILED" }
        );
    }
    println!("trajectory -> {}", path.display());
    if !all_passed {
        eprintln!("error: at least one bench floor failed in the trajectory");
        std::process::exit(1);
    }
}
