//! Runs experiment A1 and prints its tables. See `DESIGN.md` §5.

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    simba_bench::experiments::a1_strategies::run(seed).print();
}
