//! Runs the E9 durable-delivery-ledger experiment and prints its tables;
//! writes `BENCH_e9.json` (see `EXPERIMENTS.md` for the schema).
//!
//! Usage: `exp_e9_ledger [--smoke] [--deliveries N] [--workers W]
//! [--kills K] [--batch B]`
//!
//! `--smoke` is the CI shape (4 workers × 20 k deliveries, 2 killed);
//! the default full shape drains 100 k deliveries and asserts the 50 k
//! deliveries/s floor. Both shapes kill workers mid-run and force-expire
//! every outstanding lease, then assert zero lost and zero
//! double-visible-send.

use simba_bench::benchjson::BenchMode;
use simba_bench::experiments::e9_ledger::{run_with, E9Options};

fn main() {
    let mut opts = E9Options::full();
    let mut mode = BenchMode::Full;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => {
                mode = BenchMode::Smoke;
                opts = E9Options::smoke();
            }
            "--deliveries" | "--workers" | "--kills" | "--batch" => {
                let Some(v) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("{flag} needs a number");
                    std::process::exit(2);
                };
                match flag.as_str() {
                    "--deliveries" => opts.deliveries = v,
                    "--workers" => opts.workers = v,
                    "--kills" => opts.kills = v,
                    _ => opts.batch = v,
                }
            }
            other => {
                eprintln!(
                    "usage: exp_e9_ledger [--smoke] [--deliveries N] [--workers W] \
                     [--kills K] [--batch B]"
                );
                eprintln!("unknown flag: {other:?}");
                std::process::exit(2);
            }
        }
    }
    if opts.workers == 0 || opts.kills >= opts.workers || opts.deliveries == 0 {
        eprintln!("need --workers >= 1, --kills < --workers, --deliveries >= 1");
        std::process::exit(2);
    }
    run_with(opts, mode).print();
}
