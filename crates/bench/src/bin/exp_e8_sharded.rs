//! Runs the E8 million-user sharded host experiment and prints its
//! tables; writes `BENCH_e8.json` (see `EXPERIMENTS.md` for the schema).
//!
//! Usage: `exp_e8_sharded [--smoke] [--users N] [--active A] [--waves W]
//! [--shards S] [--threads T]`
//!
//! `--smoke` is the CI shape (2 k active of 20 k registered); the default
//! full shape registers 1 000 000 users, drives 100 k active ones, and
//! asserts the recorded single-core throughput floor.
//!
//! `--threads T` switches to the multi-core comparison: the same build is
//! driven once on one shard thread and once on `T`, both in real time,
//! and the multiplier is recorded (asserted ≥ 2× on machines with ≥ 4
//! cores). It replaces the shape flags — the comparison runs the fixed
//! multicore shape so recorded multipliers stay comparable.

use simba_bench::benchjson::BenchMode;
use simba_bench::experiments::e8_sharded::{run_multicore, run_with, E8Options};

fn main() {
    let mut opts = E8Options::full();
    let mut mode = BenchMode::Full;
    let mut threads: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => {
                mode = BenchMode::Smoke;
                opts = E8Options::smoke();
            }
            "--users" | "--active" | "--waves" | "--shards" | "--threads" => {
                let Some(v) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("{flag} needs a number");
                    std::process::exit(2);
                };
                match flag.as_str() {
                    "--users" => opts.users = v,
                    "--active" => opts.active = v,
                    "--waves" => opts.waves = v,
                    "--threads" => threads = Some(v),
                    _ => opts.shards = v,
                }
            }
            other => {
                eprintln!(
                    "usage: exp_e8_sharded [--smoke] [--users N] [--active A] [--waves W] \
                     [--shards S] [--threads T]"
                );
                eprintln!("unknown flag: {other:?}");
                std::process::exit(2);
            }
        }
    }
    if let Some(threads) = threads {
        if threads < 2 {
            eprintln!("--threads needs at least 2 shard threads to compare against 1");
            std::process::exit(2);
        }
        run_multicore(threads, mode).print();
        return;
    }
    if opts.active > opts.users || opts.active == 0 || opts.waves == 0 {
        eprintln!("need 0 < --active <= --users and --waves >= 1");
        std::process::exit(2);
    }
    run_with(opts, mode).print();
}
