//! Runs the E8 million-user sharded host experiment and prints its
//! tables; writes `BENCH_e8.json` (see `EXPERIMENTS.md` for the schema).
//!
//! Usage: `exp_e8_sharded [--smoke] [--users N] [--active A] [--waves W]
//! [--shards S]`
//!
//! `--smoke` is the CI shape (2 k active of 20 k registered); the default
//! full shape registers 1 000 000 users, drives 100 k active ones, and
//! asserts the recorded single-core throughput floor (see
//! `FULL_THROUGHPUT_FLOOR` for why the 10×-E3H design target is not
//! asserted on one core).

use simba_bench::benchjson::BenchMode;
use simba_bench::experiments::e8_sharded::{run_with, E8Options};

fn main() {
    let mut opts = E8Options::full();
    let mut mode = BenchMode::Full;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => {
                mode = BenchMode::Smoke;
                opts = E8Options::smoke();
            }
            "--users" | "--active" | "--waves" | "--shards" => {
                let Some(v) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("{flag} needs a number");
                    std::process::exit(2);
                };
                match flag.as_str() {
                    "--users" => opts.users = v,
                    "--active" => opts.active = v,
                    "--waves" => opts.waves = v,
                    _ => opts.shards = v,
                }
            }
            other => {
                eprintln!(
                    "usage: exp_e8_sharded [--smoke] [--users N] [--active A] [--waves W] \
                     [--shards S]"
                );
                eprintln!("unknown flag: {other:?}");
                std::process::exit(2);
            }
        }
    }
    if opts.active > opts.users || opts.active == 0 || opts.waves == 0 {
        eprintln!("need 0 < --active <= --users and --waves >= 1");
        std::process::exit(2);
    }
    run_with(opts, mode).print();
}
