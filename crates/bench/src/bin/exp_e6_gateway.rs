//! Runs the E6 gateway load experiment, prints its tables, and writes
//! `BENCH_e6.json` (see `EXPERIMENTS.md` for the schema).
//!
//! Usage: `exp_e6_gateway [--smoke] [--users N] [--connections C]
//! [--alerts M] [--no-drops] [--no-loris]`
//!
//! `--smoke` is the CI shape (1 000 alerts over 2 connections, injected
//! drops, relaxed smoke floor); the default full shape drives 20 000
//! alerts over 8 connections and asserts >= 10 000 accepted alerts/s.

use simba_bench::benchjson::BenchMode;
use simba_bench::experiments::e6_gateway::{run_with, GatewayBenchOptions};

fn main() {
    let mut opts = GatewayBenchOptions::full();
    let mut mode = BenchMode::Full;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => {
                mode = BenchMode::Smoke;
                opts = GatewayBenchOptions::smoke();
            }
            "--no-drops" => opts.drop_every = None,
            "--no-loris" => opts.slow_loris = false,
            "--users" | "--connections" | "--alerts" => {
                let Some(v) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("{flag} needs a number");
                    std::process::exit(2);
                };
                match flag.as_str() {
                    "--users" => opts.users = v,
                    "--connections" => opts.connections = v,
                    _ => opts.alerts_per_conn = v,
                }
            }
            other => {
                eprintln!(
                    "usage: exp_e6_gateway [--smoke] [--users N] [--connections C] \
                     [--alerts M] [--no-drops] [--no-loris]"
                );
                eprintln!("unknown flag: {other:?}");
                std::process::exit(2);
            }
        }
    }
    run_with(opts, mode).print();
}
