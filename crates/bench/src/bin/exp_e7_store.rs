//! Runs the E7 soft-state store experiment, prints its tables, and
//! writes `BENCH_e7.json` (see `EXPERIMENTS.md` for the schema).
//!
//! Usage: `exp_e7_store [--smoke] [--writers N] [--facts M]
//! [--subscribers S] [--seed K]`
//!
//! `--smoke` is the CI shape (8 writers × 2 000 facts, 4 subscribers,
//! relaxed smoke floor); the default full shape drives 50 writers ×
//! 10 000 facts with 20 subscribers and asserts ≥ 100 000 combined ops/s.

use simba_bench::benchjson::BenchMode;
use simba_bench::experiments::e7_store::{run_with, StoreBenchOptions};

fn main() {
    let mut opts = StoreBenchOptions::full();
    let mut mode = BenchMode::Full;
    let mut seed = 42u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => {
                mode = BenchMode::Smoke;
                opts = StoreBenchOptions::smoke();
            }
            "--writers" | "--facts" | "--subscribers" | "--seed" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("{flag} needs a number");
                    std::process::exit(2);
                };
                match flag.as_str() {
                    "--writers" => opts.writers = v as usize,
                    "--facts" => opts.facts_per_writer = v as usize,
                    "--subscribers" => opts.subscribers = v as usize,
                    _ => seed = v,
                }
            }
            other => {
                eprintln!(
                    "usage: exp_e7_store [--smoke] [--writers N] [--facts M] \
                     [--subscribers S] [--seed K]"
                );
                eprintln!("unknown flag: {other:?}");
                std::process::exit(2);
            }
        }
    }
    run_with(opts, seed, mode).print();
}
