//! Runs the E3H multi-user host soak and prints its tables.
//!
//! Usage: `exp_e3_host_soak [--users N] [--alerts M] [--ring R] [--seed S]`

use simba_bench::experiments::e3_host_soak::{run_with, SoakOptions};

fn main() {
    let mut opts = SoakOptions::new(42);
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next().and_then(|v| v.parse::<u64>().ok());
        match (flag.as_str(), value) {
            ("--users", Some(v)) => opts.users = v as usize,
            ("--alerts", Some(v)) => opts.alerts_per_user = v as usize,
            ("--ring", Some(v)) => opts.completed_ring = v as usize,
            ("--seed", Some(v)) => opts.seed = v,
            (other, _) => {
                eprintln!("usage: exp_e3_host_soak [--users N] [--alerts M] [--ring R] [--seed S]");
                eprintln!("unknown or valueless flag: {other:?}");
                std::process::exit(2);
            }
        }
    }
    run_with(opts).print();
}
