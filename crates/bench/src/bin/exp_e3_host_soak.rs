//! Runs the E3H multi-user host soak, prints its tables, and writes
//! `BENCH_e3h.json` (see `EXPERIMENTS.md` for the schema).
//!
//! Usage: `exp_e3_host_soak [--smoke] [--users N] [--alerts M] [--ring R]
//! [--seed S]`
//!
//! `--smoke` is the CI shape (20 users × 50 alerts) with the relaxed
//! smoke throughput floor; the default full shape is 50 users × 200
//! alerts with the recorded-number regression floor.

use simba_bench::benchjson::BenchMode;
use simba_bench::experiments::e3_host_soak::{run_with, SoakOptions};

fn main() {
    let mut opts = SoakOptions::new(42);
    let mut mode = BenchMode::Full;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--smoke" {
            mode = BenchMode::Smoke;
            opts.users = 20;
            opts.alerts_per_user = 50;
            continue;
        }
        let value = it.next().and_then(|v| v.parse::<u64>().ok());
        match (flag.as_str(), value) {
            ("--users", Some(v)) => opts.users = v as usize,
            ("--alerts", Some(v)) => opts.alerts_per_user = v as usize,
            ("--ring", Some(v)) => opts.completed_ring = v as usize,
            ("--seed", Some(v)) => opts.seed = v,
            (other, _) => {
                eprintln!(
                    "usage: exp_e3_host_soak [--smoke] [--users N] [--alerts M] [--ring R] \
                     [--seed S]"
                );
                eprintln!("unknown or valueless flag: {other:?}");
                std::process::exit(2);
            }
        }
    }
    run_with(opts, mode).print();
}
