//! Runs the E10 rules experiment and prints its tables; writes
//! `BENCH_e10.json` (see `EXPERIMENTS.md` for the schema).
//!
//! Usage: `exp_e10_rules [--smoke] [--users N] [--evals N]
//! [--storm-alarms N] [--normals N]`
//!
//! `--smoke` is the CI shape (64 users × 80 k timed evaluations, same
//! 10 k-alarm storm); the default full shape times 400 k evaluations
//! and asserts the 100 k evals/s single-thread floor. Both shapes run
//! the storm and assert one digest delivery, one critical cut-through,
//! and exactly-once non-storm traffic.

use simba_bench::benchjson::BenchMode;
use simba_bench::experiments::e10_rules::{run_with, E10Options};

fn main() {
    let mut opts = E10Options::full();
    let mut mode = BenchMode::Full;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--smoke" => {
                mode = BenchMode::Smoke;
                opts = E10Options::smoke();
            }
            "--users" | "--evals" | "--storm-alarms" | "--normals" => {
                let Some(v) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("{flag} needs a number");
                    std::process::exit(2);
                };
                match flag.as_str() {
                    "--users" => opts.users = v,
                    "--evals" => opts.evals = v,
                    "--storm-alarms" => opts.storm_alarms = v,
                    _ => opts.normals = v,
                }
            }
            other => {
                eprintln!(
                    "usage: exp_e10_rules [--smoke] [--users N] [--evals N] \
                     [--storm-alarms N] [--normals N]"
                );
                eprintln!("unknown flag: {other:?}");
                std::process::exit(2);
            }
        }
    }
    if opts.users == 0 || opts.evals == 0 || !opts.evals.is_multiple_of(4) {
        eprintln!("need --users >= 1 and --evals a positive multiple of 4");
        std::process::exit(2);
    }
    if opts.storm_alarms < 2 || opts.normals == 0 || opts.normals > opts.storm_alarms {
        eprintln!("need --storm-alarms >= 2 and 1 <= --normals <= --storm-alarms");
        std::process::exit(2);
    }
    run_with(opts, mode).print();
}
