//! `simba-bench` — the experiment harness reproducing the SIMBA evaluation.
//!
//! The library half hosts the reusable pieces; the `src/bin` half hosts one
//! binary per experiment (see `DESIGN.md` §5 and `EXPERIMENTS.md`):
//!
//! * [`harness`] — the end-to-end pipeline world: alert sources → IM/email
//!   channels → MyAlertBuddy (with its client managers, watchdog,
//!   self-stabilization, rejuvenation) → the user's devices and eyes, all
//!   inside the deterministic `simba-sim` engine;
//! * [`faultlog`] — the 30-day fault-injection campaign behind experiment
//!   E5 (the paper's one-month recovery log);
//! * [`report`] — table formatting shared by the experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchjson;
pub mod experiments;
pub mod faultlog;
pub mod harness;
pub mod report;
