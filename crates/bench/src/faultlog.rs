//! The 30-day fault-injection campaign (experiment E5).
//!
//! Reproduces the shape of the paper's one-month recovery log (§5):
//!
//! * 5 extended IM downtimes lasting 4–103 minutes;
//! * 9 instances where a simple re-logon fixed a silent logout;
//! * 9 instances where the hanging IM client was killed and restarted;
//! * 36 restarts of MyAlertBuddy by the MDC, "most of them triggered by
//!   IM exceptions caused by the use of an earlier version of
//!   undocumented interfaces";
//! * 3 failures the automation could not recover: one power outage and
//!   two previously-unknown dialog boxes — fixed afterwards with a UPS
//!   and newly registered dialog rules.
//!
//! [`run_campaign`] runs the month twice: first with the paper's initial
//! deployment (no UPS, unknown dialogs have no rules), then with the
//! post-incident fixes, and reports both.

use crate::harness::{build, handle, Ev, PipelineOptions, World};
use simba_client::faults::ClientFaultModel;
use simba_core::alert::IncomingAlert;
use simba_net::outage::OutageSchedule;
use simba_net::presence::{DwellProfile, PresenceTimeline};
use simba_sim::{SimDuration, SimRng, SimTime, Trace};

/// One month, in simulated time.
pub const MONTH: SimTime = SimTime::from_days(30);

/// Configuration of one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// RNG seed.
    pub seed: u64,
    /// Apply the post-incident fixes (UPS + registered dialog rules).
    pub with_fixes: bool,
    /// Alerts emitted per day (the §1 portal log suggests a few per user).
    pub alerts_per_day: u64,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            seed: 2001,
            with_fixes: false,
            alerts_per_day: 24,
        }
    }
}

/// The E5 result set, one field per paper-reported count.
#[derive(Debug)]
pub struct CampaignResult {
    /// Extended IM service downtimes injected (paper: 5).
    pub im_downtimes: usize,
    /// Shortest injected downtime (paper: 4 min).
    pub shortest_downtime: SimDuration,
    /// Longest injected downtime (paper: 103 min).
    pub longest_downtime: SimDuration,
    /// Re-logons that repaired a silent logout (paper: 9).
    pub relogons: u64,
    /// Hung-client kill-and-restart repairs (paper: 9).
    pub client_restarts: u64,
    /// MDC restarts of MyAlertBuddy (paper: 36).
    pub mdc_restarts: u64,
    /// Machine reboots by the MDC.
    pub mdc_reboots: u64,
    /// Failures automation could not recover (paper: 3 = 1 power + 2 dialogs).
    pub unrecovered: u64,
    /// ... of which power outages.
    pub unrecovered_power: u64,
    /// ... of which unknown dialog boxes needing a human.
    pub unrecovered_dialogs: u64,
    /// Scheduled nightly + triggered rejuvenations.
    pub rejuvenations: u64,
    /// Alerts emitted over the month.
    pub alerts_emitted: u64,
    /// Alerts that reached the user's eyes.
    pub alerts_seen: u64,
    /// The engine trace, for the recovery-action log rendering.
    pub trace: Trace,
}

impl CampaignResult {
    /// Fraction of emitted alerts the user eventually saw.
    pub fn delivery_rate(&self) -> f64 {
        if self.alerts_emitted == 0 {
            return 0.0;
        }
        self.alerts_seen as f64 / self.alerts_emitted as f64
    }
}

/// Runs the month-long campaign.
pub fn run_campaign(options: &CampaignOptions) -> CampaignResult {
    let mut seed_rng = SimRng::new(options.seed);

    // Five-ish extended IM downtimes, 4–103 minutes (§5).
    let im_outages = OutageSchedule::generate(
        MONTH,
        SimDuration::from_days(6),
        SimDuration::from_mins(4),
        SimDuration::from_mins(103),
        &mut seed_rng.fork(100),
    );
    let downtimes: Vec<SimDuration> = im_outages.windows().iter().map(|&(s, e)| e - s).collect();

    let mut pipeline = PipelineOptions::new(options.seed, MONTH);
    pipeline.presence = PresenceTimeline::generate(MONTH, DwellProfile::default(), &mut seed_rng.fork(101));
    pipeline.im_outages = im_outages.clone();
    // Calibrated fault model. The §5 "9 re-logons" count includes the
    // logouts forced by server recovery after each IM downtime (~5 here),
    // so the independently injected logouts are dialled down to ~4.
    let mut faults = ClientFaultModel::paper_month();
    faults.logout_mtbf = Some(SimDuration::from_hours(30 * 24 / 4));
    pipeline.client_faults = Some(faults);
    // "Most of [the 36 restarts] were triggered by IM exceptions": the
    // nightly rejuvenation is an orderly shutdown and not counted, so the
    // failure-triggered restarts need an MTBF of ≈ 30 d / 30.
    pipeline.mab_crash_mtbf = Some(SimDuration::from_hours(24));
    pipeline.preregistered_dialog_rules = options.with_fixes;
    if !options.with_fixes {
        // One power outage mid-month, ~45 minutes (no UPS yet).
        pipeline.power_outages = vec![(
            SimTime::from_days(17) + SimDuration::from_hours(3),
            SimDuration::from_mins(45),
        )];
    }

    let mut engine = build(pipeline);
    // The alert workload: spread through each day.
    let step = SimDuration::from_millis(86_400_000 / options.alerts_per_day.max(1));
    let mut tag = 0u64;
    let mut at = SimTime::from_mins(7);
    while at < MONTH {
        let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor event {tag} ON"), at);
        engine.schedule_at(at, Ev::Emit { tag, alert });
        tag += 1;
        at += step;
    }

    engine.run_until(MONTH, handle);
    let (world, trace) = engine.into_parts();
    summarize(&world, trace, &downtimes, tag)
}

fn summarize(world: &World, trace: Trace, downtimes: &[SimDuration], emitted: u64) -> CampaignResult {
    let seen = world.tracks.values().filter(|t| t.seen_at.is_some()).count() as u64;
    let unrecovered_power = world.metrics.counter("power.outages");
    let unrecovered_dialogs = world.metrics.counter("operator.manual_fix");
    CampaignResult {
        im_downtimes: downtimes.len(),
        shortest_downtime: downtimes.iter().copied().min().unwrap_or(SimDuration::ZERO),
        longest_downtime: downtimes.iter().copied().max().unwrap_or(SimDuration::ZERO),
        relogons: world.metrics.counter("sanity.relogon"),
        client_restarts: world.metrics.counter("sanity.client_restart"),
        mdc_restarts: world.mdc.restarts(),
        mdc_reboots: world.mdc.reboots(),
        unrecovered: unrecovered_power + unrecovered_dialogs,
        unrecovered_power,
        unrecovered_dialogs,
        rejuvenations: world.metrics.counter("mab.rejuvenations"),
        alerts_emitted: emitted,
        alerts_seen: seen,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_campaign_matches_paper_shape() {
        let result = run_campaign(&CampaignOptions::default());

        // 5 extended IM downtimes, 4–103 min.
        assert!(
            (2..=9).contains(&result.im_downtimes),
            "downtimes {}",
            result.im_downtimes
        );
        assert!(result.shortest_downtime >= SimDuration::from_mins(4));
        assert!(result.longest_downtime <= SimDuration::from_mins(104));

        // ~9 re-logons, ~9 client restarts (Poisson noise tolerated).
        assert!((4..=16).contains(&(result.relogons as i64)), "relogons {}", result.relogons);
        assert!(
            (4..=18).contains(&(result.client_restarts as i64)),
            "client restarts {}",
            result.client_restarts
        );

        // ~36 MDC restarts.
        assert!(
            (18..=55).contains(&(result.mdc_restarts as i64)),
            "mdc restarts {}",
            result.mdc_restarts
        );

        // Unrecovered: the power outage plus a couple of unknown dialogs.
        assert!(result.unrecovered_power >= 1);
        assert!(
            result.unrecovered >= 2 && result.unrecovered <= 8,
            "unrecovered {}",
            result.unrecovered
        );

        // Nightly rejuvenation ran most nights.
        assert!(result.rejuvenations >= 25, "rejuvenations {}", result.rejuvenations);

        // The fault-tolerance stack keeps delivery high through all of it.
        assert!(
            result.delivery_rate() > 0.9,
            "delivery rate {}",
            result.delivery_rate()
        );
    }

    #[test]
    fn fixes_eliminate_the_unrecovered_class() {
        let fixed = run_campaign(&CampaignOptions {
            with_fixes: true,
            ..CampaignOptions::default()
        });
        assert_eq!(fixed.unrecovered_power, 0, "UPS installed");
        assert_eq!(fixed.unrecovered_dialogs, 0, "dialog rules registered");
        assert!(fixed.delivery_rate() > 0.9);
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = run_campaign(&CampaignOptions::default());
        let b = run_campaign(&CampaignOptions::default());
        assert_eq!(a.mdc_restarts, b.mdc_restarts);
        assert_eq!(a.relogons, b.relogons);
        assert_eq!(a.alerts_seen, b.alerts_seen);
    }
}
