//! Microbenchmarks for the SIMBA core hot paths: delivery-mode execution,
//! the MyAlertBuddy pipeline, classification, WAL appends, and the
//! Soft-State Store.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use simba_bench::harness::standard_config;
use simba_core::alert::IncomingAlert;
use simba_core::delivery::{DeliveryEvent, DeliveryProcess};
use simba_core::mab::{MabEvent, MyAlertBuddy};
use simba_core::wal::{InMemoryWal, WriteAheadLog};
use simba_sim::{SimDuration, SimRng, SimTime};
use simba_sources::sss::{SoftStateStore, StoreId};

fn sensor_alert(i: u64) -> IncomingAlert {
    IncomingAlert::from_im("aladdin-gw", format!("Sensor event {i} ON"), SimTime::from_secs(i))
}

fn bench_mab_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("mab");
    group.throughput(Throughput::Elements(1));
    group.bench_function("ingest_classify_route_one_alert", |b| {
        let mut mab = MyAlertBuddy::new(standard_config(), InMemoryWal::new(), SimTime::ZERO);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            mab.handle(MabEvent::AlertByIm(sensor_alert(i)), SimTime::from_secs(i))
        });
    });
    group.bench_function("classifier_only", |b| {
        let config = standard_config();
        let alert = sensor_alert(1);
        b.iter(|| config.classifier.classify(&alert).expect("accepted source"));
    });
    group.finish();
}

fn bench_delivery_process(c: &mut Criterion) {
    let mut group = c.benchmark_group("delivery");
    let config = standard_config();
    let user = simba_core::subscription::UserId::new("alice");
    let profile = config.registry.user(&user).expect("alice registered");
    let mode = profile.mode("Critical").expect("mode defined").clone();
    let book = profile.address_book.clone();
    let alert = simba_core::alert::Alert {
        id: simba_core::alert::AlertId(1),
        source: "aladdin-gw".into(),
        category: "Home.Security".into(),
        text: "Basement Water Sensor ON".into(),
        origin_timestamp: SimTime::ZERO,
        received_at: SimTime::ZERO,
        urgency: simba_core::alert::Urgency::Critical,
    };
    group.bench_function("start_and_ack_first_block", |b| {
        b.iter(|| {
            let (mut p, cmds) = DeliveryProcess::start(alert.clone(), mode.clone(), &book, SimTime::ZERO);
            let attempt = p.attempts()[0].attempt;
            let _ = cmds;
            p.handle(DeliveryEvent::SendAccepted { attempt }, &book, SimTime::from_secs(1));
            p.handle(DeliveryEvent::Acked { attempt }, &book, SimTime::from_secs(2));
            p
        });
    });
    group.bench_function("full_fallback_chain", |b| {
        b.iter(|| {
            let (mut p, _) = DeliveryProcess::start(alert.clone(), mode.clone(), &book, SimTime::ZERO);
            // Fail every attempt so all three blocks fire.
            loop {
                let pending: Vec<_> = p
                    .attempts()
                    .iter()
                    .filter(|a| matches!(a.outcome, simba_core::delivery::AttemptOutcome::Pending))
                    .map(|a| a.attempt)
                    .collect();
                if pending.is_empty() {
                    break;
                }
                for attempt in pending {
                    p.handle(
                        DeliveryEvent::SendFailed {
                            attempt,
                            failure: simba_core::delivery::SendFailure::ChannelDown,
                        },
                        &book,
                        SimTime::from_secs(1),
                    );
                }
            }
            p
        });
    });
    group.finish();
}

fn bench_wal(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal");
    group.throughput(Throughput::Elements(1));
    group.bench_function("in_memory_append_mark", |b| {
        let mut wal = InMemoryWal::new();
        let alert = sensor_alert(1);
        b.iter(|| {
            let id = wal.append(&alert, SimTime::ZERO).expect("in-memory append");
            wal.mark_processed(id).expect("just appended");
        });
    });
    group.finish();
}

fn bench_sss(c: &mut Criterion) {
    let mut group = c.benchmark_group("sss");
    group.bench_function("write_and_replicate", |b| {
        b.iter_batched(
            || {
                let mut a = SoftStateStore::new(StoreId(1));
                let mut g = SoftStateStore::new(StoreId(2));
                for s in [&mut a, &mut g] {
                    s.define_type("binary-sensor", "ON|OFF");
                }
                a.create_var("sensor.x", "binary-sensor", "OFF", SimDuration::from_secs(60), 3, SimTime::ZERO)
                    .expect("fresh");
                a.take_outbound();
                (a, g, 0u64)
            },
            |(mut a, mut g, mut i)| {
                for _ in 0..100 {
                    i += 1;
                    let value = if i % 2 == 0 { "ON" } else { "OFF" };
                    a.write("sensor.x", value, SimTime::from_secs(i)).expect("exists");
                    for u in a.take_outbound() {
                        g.apply_update(u);
                    }
                }
                (a, g, i)
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_rng_fork(c: &mut Criterion) {
    c.bench_function("rng_fork", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| rng.fork(42));
    });
}

criterion_group!(
    benches,
    bench_mab_pipeline,
    bench_delivery_process,
    bench_wal,
    bench_sss,
    bench_rng_fork
);
criterion_main!(benches);
