//! Microbenchmarks for the XML subset parser/writer on the two SIMBA
//! document shapes (§4.1): address books and delivery modes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simba_core::address::{Address, AddressBook, CommType};
use simba_core::mode::{Block, DeliveryMode};
use simba_sim::SimDuration;

fn book() -> AddressBook {
    let mut book = AddressBook::new();
    for i in 0..10 {
        let ty = match i % 3 {
            0 => CommType::Im,
            1 => CommType::Sms,
            _ => CommType::Email,
        };
        book.add(Address::new(format!("addr-{i}"), ty, format!("value:{i}")))
            .expect("unique names");
    }
    book
}

fn mode() -> DeliveryMode {
    DeliveryMode::new(
        "Critical & <escalating>",
        vec![
            Block::acked(vec!["addr-0".into(), "addr-1".into()], SimDuration::from_secs(60)),
            Block::acked(vec!["addr-2".into()], SimDuration::from_secs(120)),
            Block::fire_and_forget(vec!["addr-3".into(), "addr-4".into()]),
        ],
    )
    .expect("valid mode")
}

fn bench_xml(c: &mut Criterion) {
    let mut group = c.benchmark_group("xml");
    let book_xml = book().to_xml();
    let mode_xml = mode().to_xml();
    group.throughput(Throughput::Bytes(book_xml.len() as u64));
    group.bench_function("address_book_parse", |b| {
        b.iter(|| AddressBook::from_xml(&book_xml).expect("round-trip"));
    });
    group.bench_function("address_book_write", |b| {
        let book = book();
        b.iter(|| book.to_xml());
    });
    group.throughput(Throughput::Bytes(mode_xml.len() as u64));
    group.bench_function("delivery_mode_parse", |b| {
        b.iter(|| DeliveryMode::from_xml(&mode_xml).expect("round-trip"));
    });
    group.bench_function("delivery_mode_write", |b| {
        let mode = mode();
        b.iter(|| mode.to_xml());
    });
    group.bench_function("raw_parse_figure4", |b| {
        let xml = r#"<DeliveryMode name="Urgent">
            <Block ackTimeoutSecs="60"><Action address="MSN IM"/><Action address="Cell SMS"/></Block>
            <Block><Action address="Work email"/></Block>
        </DeliveryMode>"#;
        b.iter(|| simba_xml::parse(xml).expect("valid"));
    });
    group.finish();
}

criterion_group!(benches, bench_xml);
criterion_main!(benches);
