//! One criterion bench per paper experiment (E1–E5) and ablation (A1–A6),
//! each running a reduced-scale version of the exact code path the
//! experiment binary uses. `cargo bench` therefore exercises every
//! table-regenerating pipeline; the binaries produce the full-scale
//! numbers recorded in `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use simba_baselines::strategy::Strategy;
use simba_baselines::trial::{run_trial, TrialSetup};
use simba_bench::faultlog::{run_campaign, CampaignOptions};
use simba_bench::harness::{build, handle, Ev, PipelineOptions};
use simba_core::alert::IncomingAlert;
use simba_net::presence::{PresenceTimeline, UserContext};
use simba_sim::{SimRng, SimTime};

/// E1/E2-shaped pipeline slice: 50 alerts through the full world.
fn bench_pipeline_slice(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(20);
    group.bench_function("e1_e2_pipeline_50_alerts", |b| {
        b.iter(|| {
            let horizon = SimTime::from_hours(2);
            let mut engine = build(PipelineOptions::new(7, horizon));
            for i in 0..50u64 {
                let at = SimTime::from_secs(30 + i * 120);
                let alert = IncomingAlert::from_im("aladdin-gw", format!("Sensor {i} ON"), at);
                engine.schedule_at(at, Ev::Emit { tag: i, alert });
            }
            engine.run_until(horizon, handle);
            engine.world().tracks.len()
        });
    });
    group.finish();
}

/// E3: the Aladdin in-home chain.
fn bench_e3_chain(c: &mut Criterion) {
    use simba_sources::aladdin::{AladdinHome, HomeNetwork, HopLatencies, Sensor};
    let mut group = c.benchmark_group("experiments");
    group.bench_function("e3_aladdin_chain", |b| {
        let mut home = AladdinHome::new("aladdin-gw", HopLatencies::default());
        home.add_sensor(
            Sensor {
                id: "remote".into(),
                name: "Remote".into(),
                network: HomeNetwork::Rf,
                critical: true,
                heartbeat: simba_sim::SimDuration::from_mins(10),
                max_missing: 10_000,
            },
            SimTime::ZERO,
        );
        let mut rng = SimRng::new(3);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            home.trigger_sensor("remote", i.is_multiple_of(2), SimTime::from_secs(i * 60), &mut rng)
        });
    });
    group.finish();
}

/// E4: a WISH measurement + report.
fn bench_e4_wish(c: &mut Criterion) {
    use simba_sources::wish::{
        AccessPoint, LocationSubscription, LocationTrigger, Point, RadioModel, WishClient, WishServer,
    };
    let mut group = c.benchmark_group("experiments");
    group.bench_function("e4_wish_measure_report", |b| {
        let aps = vec![
            AccessPoint {
                id: "ap-1".into(),
                position: Point { x: 0.0, y: 0.0 },
                building: "B31".into(),
                area: "west".into(),
            },
            AccessPoint {
                id: "ap-2".into(),
                position: Point { x: 300.0, y: 0.0 },
                building: "B40".into(),
                area: "lobby".into(),
            },
        ];
        let mut server = WishServer::new("wish-svc", aps.clone(), RadioModel::default());
        server.subscribe(LocationSubscription {
            tracked: "bob".into(),
            watcher: "alice".into(),
            trigger: LocationTrigger::Enter("B31".into()),
        });
        let client = WishClient { user: "bob".into(), report_every: simba_sim::SimDuration::from_secs(10) };
        let model = RadioModel::default();
        let mut rng = SimRng::new(4);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let pos = if i.is_multiple_of(2) { Point { x: 5.0, y: 1.0 } } else { Point { x: 295.0, y: 1.0 } };
            let m = client
                .measure(pos, &aps, &model, "active", SimTime::from_secs(i * 30), &mut rng)
                .expect("in range");
            server.report(&m)
        });
    });
    group.finish();
}

/// E5: a compressed (3-day) fault campaign through the same code path.
fn bench_e5_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("e5_campaign_month", |b| {
        b.iter(|| run_campaign(&CampaignOptions { alerts_per_day: 8, ..CampaignOptions::default() }));
    });
    group.finish();
}

/// A1: the strategy trial evaluator.
fn bench_a1_trials(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    let setup = TrialSetup::with_defaults(PresenceTimeline::constant(
        UserContext::AtDesk,
        SimTime::from_days(1),
    ));
    for strategy in [
        Strategy::EmailOnly,
        Strategy::aladdin_blind(),
        Strategy::simba_default(),
    ] {
        group.bench_function(&format!("a1_trial_{}", strategy.label()), |b| {
            let mut rng = SimRng::new(5);
            b.iter(|| run_trial(&setup, strategy, SimTime::from_secs(60), &mut rng));
        });
    }
    group.finish();
}

/// A2–A6 hot paths come down to the MAB pipeline and the managers, covered
/// by `delivery.rs`; here we keep one representative end-to-end ablation.
fn bench_a3_watchdog_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("a3_watchdog_day", |b| {
        b.iter(|| {
            let horizon = SimTime::from_days(1);
            let mut options = PipelineOptions::new(11, horizon);
            options.mab_hang_mtbf = Some(simba_sim::SimDuration::from_hours(4));
            let mut engine = build(options);
            engine.run_until(horizon, handle);
            engine.world().mdc.restarts()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline_slice,
    bench_e3_chain,
    bench_e4_wish,
    bench_e5_campaign,
    bench_a1_trials,
    bench_a3_watchdog_point
);
criterion_main!(benches);
