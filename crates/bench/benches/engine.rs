//! Microbenchmarks for the simulation substrate: event throughput and the
//! distribution samplers every channel model draws from.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use simba_sim::{Engine, SimDuration, SimRng, SimTime, Trace};

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    const EVENTS: u64 = 100_000;
    group.throughput(Throughput::Elements(EVENTS));
    group.bench_function("self_rescheduling_events_100k", |b| {
        b.iter_batched(
            || {
                let mut engine = Engine::new(0u64, 7)
                    .with_trace(Trace::disabled())
                    .with_event_limit(EVENTS);
                engine.schedule_in(SimDuration::ZERO, ());
                engine
            },
            |mut engine| {
                engine.run_until(SimTime::MAX, |count, ctx, ()| {
                    *count += 1;
                    ctx.schedule_in(SimDuration::from_millis(1), ());
                });
                engine
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("wide_queue_100k", |b| {
        b.iter_batched(
            || {
                let mut engine = Engine::new(0u64, 7).with_trace(Trace::disabled());
                for i in 0..EVENTS {
                    engine.schedule_in(SimDuration::from_millis(i % 1_000), ());
                }
                engine
            },
            |mut engine| {
                engine.run_until(SimTime::MAX, |count, _, ()| *count += 1);
                engine
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    let mut rng = SimRng::new(1);
    group.bench_function("lognormal", |b| b.iter(|| rng.lognormal(0.4, 0.35)));
    group.bench_function("exponential", |b| b.iter(|| rng.exponential(5.0)));
    group.bench_function("pareto", |b| b.iter(|| rng.pareto(8.0, 1.1)));
    group.finish();
}

criterion_group!(benches, bench_engine_throughput, bench_samplers);
criterion_main!(benches);
