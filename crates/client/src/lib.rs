//! `simba-client` — simulated third-party client software and the
//! Communication Managers that drive it.
//!
//! SIMBA deliberately sends and receives alerts through the *same*
//! GUI-centric IM and email client software a human would use, via
//! automation interfaces (§4.1.1). Those interfaces "do not model and
//! simulate human operations in case of exceptions" — so SIMBA's
//! Communication Managers add **exception-handling automation**: the three
//! APIs a daemon needs to keep flaky desktop software alive forever.
//!
//! This crate provides:
//!
//! * [`process`] — a simulated client-software process with the §4.1.1/§5
//!   anomaly repertoire: hangs, crashes, forced logouts, popped dialog
//!   boxes (known and previously-unknown), stale automation pointers after
//!   restart, and memory leaks;
//! * [`faults`] — the fault-injection processes that generate those
//!   anomalies at calibrated rates;
//! * [`dialogs`] — dialog boxes and the caption→button rule registry the
//!   "monkey thread" consults;
//! * [`manager`] — the three exception-handling APIs (sanity checking,
//!   shutdown/restart, dialog-box handling) shared by both managers;
//! * [`im_manager`] / [`email_manager`] — the concrete managers that drive
//!   the IM and email clients against `simba-net`'s simulated services.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dialogs;
pub mod email_manager;
pub mod faults;
pub mod im_manager;
pub mod manager;
pub mod process;

pub use dialogs::{DialogBox, DialogRegistry};
pub use email_manager::EmailManager;
pub use faults::{ClientFaultModel, FaultKind};
pub use im_manager::ImManager;
pub use manager::{Anomaly, RepairAction, SanityReport};
pub use process::{AutomationPointer, ClientProcess, ProcessStatus};
