//! Dialog boxes and the caption→button rule registry.
//!
//! "Each Communication Manager maintains a 'monkey thread', whose only job
//! is to look for dialog boxes with matching captions and 'click' on the
//! appropriate buttons" (§4.1.1). Rules come in three layers: system-generic
//! pairs, client-software-specific pairs, and pairs registered at runtime
//! through the manager API — the paper's fix for the two unknown dialog
//! boxes that escaped recovery in the one-month log (§5).

use simba_sim::SimTime;

/// A dialog box popped by the client software or "other parts of the system".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DialogBox {
    /// Window caption, the key the monkey thread matches on.
    pub caption: String,
    /// Buttons the dialog offers, e.g. `["OK"]` or `["Retry", "Cancel"]`.
    pub buttons: Vec<String>,
    /// Whether the dialog blocks the client from making progress while open.
    pub blocking: bool,
    /// When it appeared.
    pub popped_at: SimTime,
}

impl DialogBox {
    /// A blocking single-button dialog (the common irritant).
    pub fn blocking(caption: impl Into<String>, button: impl Into<String>, popped_at: SimTime) -> Self {
        DialogBox {
            caption: caption.into(),
            buttons: vec![button.into()],
            blocking: true,
            popped_at,
        }
    }
}

/// A caption→button dismissal rule.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DialogRule {
    caption: String,
    button: String,
}

/// The layered rule registry consulted by the monkey thread.
#[derive(Debug, Clone, Default)]
pub struct DialogRegistry {
    rules: Vec<DialogRule>,
}

impl DialogRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DialogRegistry::default()
    }

    /// The system-generic rules every manager ships with.
    pub fn system_generic() -> Self {
        let mut r = DialogRegistry::new();
        for (caption, button) in [
            ("End Program", "End Now"),
            ("Application Error", "OK"),
            ("Low Disk Space", "OK"),
            ("Connection Lost", "Retry"),
        ] {
            r.register(caption, button);
        }
        r
    }

    /// Registers one caption→button pair. Later registrations win over
    /// earlier ones for the same caption (so operators can override the
    /// shipped defaults).
    pub fn register(&mut self, caption: impl Into<String>, button: impl Into<String>) {
        self.rules.push(DialogRule {
            caption: caption.into(),
            button: button.into(),
        });
    }

    /// The button to click for `caption`, if any rule matches.
    ///
    /// Matching is exact on the caption, which is how the paper's monkey
    /// thread worked; a dialog with an unanticipated caption is exactly the
    /// "previously unknown dialog box" failure class.
    pub fn button_for(&self, caption: &str) -> Option<&str> {
        self.rules
            .iter()
            .rev()
            .find(|r| r.caption == caption)
            .map(|r| r.button.as_str())
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Attempts to dismiss `dialog`: returns the clicked button, or `None`
    /// if no rule matches or the dialog does not offer the ruled button.
    pub fn dismiss(&self, dialog: &DialogBox) -> Option<String> {
        let button = self.button_for(&dialog.caption)?;
        dialog
            .buttons
            .iter()
            .find(|b| b.as_str() == button)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_caption_match_only() {
        let mut r = DialogRegistry::new();
        r.register("Sign-in failed", "OK");
        assert_eq!(r.button_for("Sign-in failed"), Some("OK"));
        assert_eq!(r.button_for("Sign-in failed!"), None);
        assert_eq!(r.button_for("sign-in failed"), None);
    }

    #[test]
    fn later_registration_overrides() {
        let mut r = DialogRegistry::new();
        r.register("Connection Lost", "Cancel");
        r.register("Connection Lost", "Retry");
        assert_eq!(r.button_for("Connection Lost"), Some("Retry"));
    }

    #[test]
    fn system_generic_covers_common_captions() {
        let r = DialogRegistry::system_generic();
        assert!(!r.is_empty());
        assert_eq!(r.button_for("Application Error"), Some("OK"));
        assert_eq!(r.button_for("Totally Novel Dialog"), None);
    }

    #[test]
    fn dismiss_requires_button_to_exist_on_dialog() {
        let mut r = DialogRegistry::new();
        r.register("Update Available", "Later");
        let d = DialogBox {
            caption: "Update Available".into(),
            buttons: vec!["Install".into(), "Later".into()],
            blocking: true,
            popped_at: SimTime::ZERO,
        };
        assert_eq!(r.dismiss(&d), Some("Later".to_string()));

        let d2 = DialogBox {
            caption: "Update Available".into(),
            buttons: vec!["Install".into()], // ruled button missing
            blocking: true,
            popped_at: SimTime::ZERO,
        };
        assert_eq!(r.dismiss(&d2), None);
    }

    #[test]
    fn blocking_constructor() {
        let d = DialogBox::blocking("X", "OK", SimTime::from_secs(5));
        assert!(d.blocking);
        assert_eq!(d.buttons, vec!["OK".to_string()]);
        assert_eq!(d.popped_at, SimTime::from_secs(5));
    }
}
