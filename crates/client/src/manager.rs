//! The shared core of the Communication Managers: the three
//! exception-handling-automation APIs of §4.1.1.
//!
//! 1. **Sanity Checking** — "checks if the process of the client software
//!    is still running and if the pointers to the client software are still
//!    valid", then application-specific checks (supplied by the concrete
//!    manager);
//! 2. **Shutdown/Restart** — "terminates the currently running instance,
//!    restarts another instance, and refreshes all its pointers";
//! 3. **Dialog-box Handling** — the "monkey thread" that clicks matching
//!    caption-button pairs, plus the API "for specifying additional
//!    caption-button pairs".

use crate::dialogs::{DialogBox, DialogRegistry};
use crate::process::{AutomationPointer, ClientProcess, ProcessStatus};
use simba_sim::SimTime;
use simba_telemetry::{Event, Telemetry};

/// An anomaly discovered by a sanity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Anomaly {
    /// The client process is not running (killed or crashed).
    ProcessDown,
    /// The client process is hung.
    ProcessHung,
    /// The manager's automation pointer references a dead instance.
    StalePointer,
    /// The client is no longer logged on to its service.
    LoggedOut,
    /// The service itself is unavailable.
    ServiceUnavailable,
    /// A blocking dialog box is open that no rule can dismiss.
    UnhandledDialog(
        /// Caption of the stuck dialog.
        String,
    ),
    /// The process has grown past the memory threshold (leak suspected).
    MemoryBloat(
        /// Current resident KB.
        u64,
    ),
}

impl Anomaly {
    /// Stable snake_case tag for telemetry (`client.anomaly` events).
    pub fn kind(&self) -> &'static str {
        match self {
            Anomaly::ProcessDown => "process_down",
            Anomaly::ProcessHung => "process_hung",
            Anomaly::StalePointer => "stale_pointer",
            Anomaly::LoggedOut => "logged_out",
            Anomaly::ServiceUnavailable => "service_unavailable",
            Anomaly::UnhandledDialog(_) => "unhandled_dialog",
            Anomaly::MemoryBloat(_) => "memory_bloat",
        }
    }
}

/// What the manager did about an anomaly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairAction {
    /// Re-logged the client on; no restart needed (§5: "nine instances
    /// where ... simple re-logon attempts worked").
    ReLogon,
    /// Killed and restarted the client instance (§5: "the hanging IM client
    /// had to be killed and restarted").
    Restart,
    /// Clicked a dialog button.
    DialogDismissed {
        /// Caption of the dismissed dialog.
        caption: String,
        /// Button clicked.
        button: String,
    },
    /// Nothing could be done at this layer (escalate to rejuvenation/MDC).
    Unrepairable(Anomaly),
}

impl RepairAction {
    /// Stable snake_case tag for telemetry (`client.sanity_check` events).
    pub fn name(&self) -> &'static str {
        match self {
            RepairAction::ReLogon => "re_logon",
            RepairAction::Restart => "restart",
            RepairAction::DialogDismissed { .. } => "dialog_dismissed",
            RepairAction::Unrepairable(_) => "unrepairable",
        }
    }
}

/// The outcome of one sanity-check pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SanityReport {
    /// Anomalies found (empty means healthy).
    pub anomalies: Vec<Anomaly>,
    /// Repairs performed during the pass.
    pub repairs: Vec<RepairAction>,
}

impl SanityReport {
    /// Whether the pass found the client healthy or left it healthy: every
    /// discovered anomaly has a matching repair and none were unrepairable.
    pub fn healthy(&self) -> bool {
        self.repairs.len() >= self.anomalies.len()
            && !self
                .repairs
                .iter()
                .any(|r| matches!(r, RepairAction::Unrepairable(_)))
    }
}

/// Shared state and behaviour of a Communication Manager.
#[derive(Debug)]
pub struct ManagerCore {
    process: ClientProcess,
    pointer: Option<AutomationPointer>,
    registry: DialogRegistry,
    /// Restart the client when resident memory exceeds this many KB.
    pub memory_limit_kb: u64,
    telemetry: Telemetry,
}

impl ManagerCore {
    /// Creates a manager core around `process` with the system-generic
    /// dialog rules installed.
    pub fn new(process: ClientProcess, memory_limit_kb: u64) -> Self {
        ManagerCore {
            process,
            pointer: None,
            registry: DialogRegistry::system_generic(),
            memory_limit_kb,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Records sanity checks, anomalies, repairs, and restarts through
    /// `telemetry` under the `client.*` namespace; events are tagged with
    /// the managed process name.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// In-place variant of [`ManagerCore::with_telemetry`] for embedding
    /// managers that construct their core internally.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The managed process.
    pub fn process(&self) -> &ClientProcess {
        &self.process
    }

    /// Mutable access for fault injection in tests and campaigns.
    pub fn process_mut(&mut self) -> &mut ClientProcess {
        &mut self.process
    }

    /// The current automation pointer, if the client was ever started.
    pub fn pointer(&self) -> Option<AutomationPointer> {
        self.pointer
    }

    /// Registers an additional caption→button pair (the third API).
    pub fn register_dialog_rule(&mut self, caption: impl Into<String>, button: impl Into<String>) {
        self.registry.register(caption, button);
    }

    /// The dialog registry (for inspection).
    pub fn registry(&self) -> &DialogRegistry {
        &self.registry
    }

    /// Ensures the client process is running, starting it if necessary.
    /// Returns `true` if a (re)start happened.
    pub fn ensure_started(&mut self, now: SimTime) -> bool {
        if self.process.status() == ProcessStatus::Running && self.pointer.is_some() {
            return false;
        }
        self.pointer = Some(self.process.start(now));
        true
    }

    /// The Shutdown/Restart API: kill, start a fresh instance, refresh the
    /// pointer.
    pub fn shutdown_restart(&mut self, now: SimTime) {
        self.process.kill();
        self.pointer = Some(self.process.start(now));
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter("client.restart").incr();
            self.telemetry.emit(
                Event::new("client.restart", now.as_millis())
                    .with("client", self.process.name()),
            );
        }
    }

    /// The monkey thread's scan: dismiss every dialog a rule matches.
    /// Returns the dismissals performed and the captions left stuck.
    pub fn pump_dialogs(&mut self) -> (Vec<RepairAction>, Vec<String>) {
        let mut dismissed = Vec::new();
        let mut stuck = Vec::new();
        let mut idx = 0;
        while idx < self.process.dialogs().len() {
            let dialog: &DialogBox = &self.process.dialogs()[idx];
            match self.registry.dismiss(dialog) {
                Some(button) => {
                    let d = self.process.close_dialog(idx);
                    dismissed.push(RepairAction::DialogDismissed {
                        caption: d.caption,
                        button,
                    });
                }
                None => {
                    stuck.push(dialog.caption.clone());
                    idx += 1;
                }
            }
        }
        (dismissed, stuck)
    }

    /// The generic half of the Sanity Checking API: process liveness,
    /// pointer validity, stuck dialogs, memory bloat. Repairs what it can
    /// (restart for down/hung/stale/bloat); reports stuck dialogs as
    /// unrepairable at this layer.
    pub fn base_sanity_check(&mut self, now: SimTime) -> SanityReport {
        let mut report = SanityReport::default();

        // Dialog pass first: a dismissible blocking dialog should not force
        // a restart.
        let (dismissed, stuck) = self.pump_dialogs();
        report.repairs.extend(dismissed);

        match self.process.status() {
            ProcessStatus::NotRunning | ProcessStatus::Crashed => {
                report.anomalies.push(Anomaly::ProcessDown);
                self.shutdown_restart(now);
                report.repairs.push(RepairAction::Restart);
            }
            ProcessStatus::Hung => {
                report.anomalies.push(Anomaly::ProcessHung);
                self.shutdown_restart(now);
                report.repairs.push(RepairAction::Restart);
            }
            ProcessStatus::Running => {
                let stale = self.pointer.is_none_or(|p| !self.process.pointer_valid(p));
                if stale {
                    report.anomalies.push(Anomaly::StalePointer);
                    self.shutdown_restart(now);
                    report.repairs.push(RepairAction::Restart);
                } else if self.process.memory_kb() > self.memory_limit_kb {
                    report
                        .anomalies
                        .push(Anomaly::MemoryBloat(self.process.memory_kb()));
                    self.shutdown_restart(now);
                    report.repairs.push(RepairAction::Restart);
                }
            }
        }

        for caption in stuck {
            // A restart above cleared dialogs; only report ones still open.
            if self
                .process
                .dialogs()
                .iter()
                .any(|d| d.caption == caption)
            {
                report.anomalies.push(Anomaly::UnhandledDialog(caption.clone()));
                report
                    .repairs
                    .push(RepairAction::Unrepairable(Anomaly::UnhandledDialog(caption)));
            }
        }
        if self.telemetry.enabled() {
            self.telemetry.metrics().counter("client.sanity_check").incr();
            self.telemetry.emit(
                Event::new("client.sanity_check", now.as_millis())
                    .with("client", self.process.name())
                    .with("anomalies", report.anomalies.len())
                    .with("repairs", report.repairs.len())
                    .with("healthy", report.healthy()),
            );
        }
        self.note_sanity_report(&report, now);
        report
    }

    /// Records the anomalies and repairs of a (possibly partial) sanity
    /// report: a `client.anomaly` event per finding and a
    /// `client.dialog_dismissed` event per monkey-thread click. Called from
    /// [`ManagerCore::base_sanity_check`]; concrete managers that extend the
    /// report (re-logons, service checks) call it again with only the delta.
    pub fn note_sanity_report(&self, report: &SanityReport, now: SimTime) {
        if !self.telemetry.enabled() {
            return;
        }
        for anomaly in &report.anomalies {
            self.telemetry.metrics().counter("client.anomalies").incr();
            self.telemetry.emit(
                Event::new("client.anomaly", now.as_millis())
                    .with("client", self.process.name())
                    .with("kind", anomaly.kind()),
            );
        }
        for repair in &report.repairs {
            match repair {
                RepairAction::DialogDismissed { caption, button } => {
                    self.telemetry.metrics().counter("client.dialog_dismissed").incr();
                    self.telemetry.emit(
                        Event::new("client.dialog_dismissed", now.as_millis())
                            .with("client", self.process.name())
                            .with("caption", caption.as_str())
                            .with("button", button.as_str()),
                    );
                }
                RepairAction::Unrepairable(_) => {
                    self.telemetry.metrics().counter("client.unrepairable").incr();
                }
                RepairAction::ReLogon => {
                    self.telemetry.metrics().counter("client.re_logons").incr();
                }
                RepairAction::Restart => {}
            }
        }
    }

    /// Runs one automation operation through the process gate, surfacing
    /// the process error if the client is unhealthy.
    pub fn automation_op(&mut self) -> Result<(), crate::process::ProcessError> {
        match self.pointer {
            Some(ptr) => self.process.automation_op(ptr),
            None => Err(crate::process::ProcessError::NotRunning),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialogs::DialogBox;

    fn core() -> ManagerCore {
        ManagerCore::new(ClientProcess::new("im-client", 10_000, 0), 50_000)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn ensure_started_is_idempotent() {
        let mut m = core();
        assert!(m.ensure_started(t(0)));
        assert!(!m.ensure_started(t(1)));
        assert_eq!(m.process().status(), ProcessStatus::Running);
    }

    #[test]
    fn sanity_check_healthy_client_reports_nothing() {
        let mut m = core();
        m.ensure_started(t(0));
        let r = m.base_sanity_check(t(1));
        assert!(r.anomalies.is_empty());
        assert!(r.repairs.is_empty());
        assert!(r.healthy());
    }

    #[test]
    fn sanity_check_restarts_down_client() {
        let mut m = core();
        m.ensure_started(t(0));
        m.process_mut().inject_crash();
        let r = m.base_sanity_check(t(5));
        assert_eq!(r.anomalies, vec![Anomaly::ProcessDown]);
        assert_eq!(r.repairs, vec![RepairAction::Restart]);
        assert_eq!(m.process().status(), ProcessStatus::Running);
        assert!(m.automation_op().is_ok());
    }

    #[test]
    fn sanity_check_restarts_hung_client() {
        let mut m = core();
        m.ensure_started(t(0));
        m.process_mut().inject_hang();
        let r = m.base_sanity_check(t(5));
        assert_eq!(r.anomalies, vec![Anomaly::ProcessHung]);
        assert_eq!(m.process().status(), ProcessStatus::Running);
        assert!(r.healthy());
    }

    #[test]
    fn sanity_check_restarts_on_memory_bloat() {
        let mut m = ManagerCore::new(ClientProcess::new("leaky", 10_000, 100), 10_500);
        m.ensure_started(t(0));
        for _ in 0..10 {
            let _ = m.automation_op();
        }
        assert!(m.process().memory_kb() > 10_500);
        let r = m.base_sanity_check(t(5));
        assert!(matches!(r.anomalies[0], Anomaly::MemoryBloat(_)));
        assert_eq!(m.process().memory_kb(), 10_000); // fresh instance
    }

    #[test]
    fn known_dialog_is_dismissed_without_restart() {
        let mut m = core();
        m.ensure_started(t(0));
        m.register_dialog_rule("Sign-in failed", "OK");
        m.process_mut()
            .inject_dialog(DialogBox::blocking("Sign-in failed", "OK", t(1)));
        assert!(m.automation_op().is_err()); // blocked
        let r = m.base_sanity_check(t(2));
        assert!(r.anomalies.is_empty());
        assert_eq!(
            r.repairs,
            vec![RepairAction::DialogDismissed {
                caption: "Sign-in failed".into(),
                button: "OK".into()
            }]
        );
        assert!(m.automation_op().is_ok());
    }

    #[test]
    fn unknown_dialog_is_reported_unrepairable() {
        // The §5 failure class: "two were caused by previously unknown
        // dialog boxes".
        let mut m = core();
        m.ensure_started(t(0));
        m.process_mut()
            .inject_dialog(DialogBox::blocking("Totally Novel Error", "Details", t(1)));
        let r = m.base_sanity_check(t(2));
        assert_eq!(
            r.anomalies,
            vec![Anomaly::UnhandledDialog("Totally Novel Error".into())]
        );
        assert!(!r.healthy());
        assert!(m.automation_op().is_err());

        // The paper's fix: register the pair, next pass recovers.
        m.register_dialog_rule("Totally Novel Error", "Details");
        let r2 = m.base_sanity_check(t(3));
        assert!(r2.anomalies.is_empty());
        assert!(m.automation_op().is_ok());
    }

    #[test]
    fn shutdown_restart_refreshes_pointer() {
        let mut m = core();
        m.ensure_started(t(0));
        let old = m.pointer().unwrap();
        m.shutdown_restart(t(1));
        let new = m.pointer().unwrap();
        assert_ne!(old, new);
        assert!(m.process().pointer_valid(new));
        assert!(!m.process().pointer_valid(old));
    }

    #[test]
    fn automation_op_without_start_fails() {
        let mut m = core();
        assert!(m.automation_op().is_err());
    }

    #[test]
    fn telemetry_records_restart_and_dialog_repairs() {
        use simba_telemetry::RingBufferSink;
        use std::sync::Arc;

        let sink = Arc::new(RingBufferSink::new(64));
        let telemetry = Telemetry::with_sink(sink.clone());
        let mut m = core().with_telemetry(telemetry.clone());
        m.ensure_started(t(0));

        m.register_dialog_rule("Sign-in failed", "OK");
        m.process_mut()
            .inject_dialog(DialogBox::blocking("Sign-in failed", "OK", t(1)));
        m.base_sanity_check(t(2));

        m.process_mut().inject_crash();
        m.base_sanity_check(t(5));

        m.process_mut()
            .inject_dialog(DialogBox::blocking("Mystery", "Abort", t(6)));
        m.base_sanity_check(t(7));

        let snap = telemetry.metrics().snapshot();
        assert_eq!(snap.counter("client.sanity_check"), 3);
        assert_eq!(snap.counter("client.dialog_dismissed"), 1);
        assert_eq!(snap.counter("client.restart"), 1);
        assert_eq!(snap.counter("client.anomalies"), 2); // crash + stuck dialog
        assert_eq!(snap.counter("client.unrepairable"), 1);

        use simba_telemetry::Value;
        let events = sink.events();
        let dismissed = events
            .iter()
            .find(|e| e.name == "client.dialog_dismissed")
            .unwrap();
        assert_eq!(
            dismissed.field("caption"),
            Some(&Value::Str("Sign-in failed".into()))
        );
        let restart = events.iter().find(|e| e.name == "client.restart").unwrap();
        assert_eq!(restart.time_ms, 5_000);
        assert_eq!(restart.field("client"), Some(&Value::Str("im-client".into())));
        let anomaly_kinds: Vec<_> = events
            .iter()
            .filter(|e| e.name == "client.anomaly")
            .map(|e| e.field("kind").cloned())
            .collect();
        assert_eq!(
            anomaly_kinds,
            vec![
                Some(Value::Str("process_down".into())),
                Some(Value::Str("unhandled_dialog".into()))
            ]
        );
    }
}
