//! A simulated GUI client-software process.
//!
//! The anomaly repertoire mirrors §4.1.1 and the §5 fault log: the process
//! can hang ("the only thing the user can do is to kill and restart the
//! software"), crash, pop dialog boxes that block all progress, leak
//! memory, and — critically for automation — invalidate every automation
//! pointer when a new instance starts.

use crate::dialogs::DialogBox;
use simba_sim::SimTime;

/// Lifecycle state of the client process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessStatus {
    /// Not started or killed.
    NotRunning,
    /// Running and responsive.
    Running,
    /// Running but wedged: automation calls stall/fail until killed.
    Hung,
    /// Terminated abnormally on its own.
    Crashed,
}

/// An opaque automation handle into a specific process *instance*.
///
/// Pointers obtained from instance N are invalid for instance N+1 — the
/// reason the Shutdown/Restart API must "refresh all its pointers to point
/// to the new instance" (§4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutomationPointer {
    instance: u64,
}

/// The simulated client software process.
#[derive(Debug)]
pub struct ClientProcess {
    name: &'static str,
    status: ProcessStatus,
    instance: u64,
    dialogs: Vec<DialogBox>,
    memory_kb: u64,
    baseline_memory_kb: u64,
    leak_kb_per_op: u64,
    started_at: SimTime,
}

/// Why an automation operation against the process failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessError {
    /// The process is not running (never started, killed, or crashed).
    NotRunning,
    /// The process is hung; calls do not return usefully.
    Hung,
    /// The supplied automation pointer references a dead instance.
    StalePointer,
    /// A blocking dialog box prevents the operation.
    BlockedByDialog,
}

impl std::fmt::Display for ProcessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProcessError::NotRunning => "client process not running",
            ProcessError::Hung => "client process hung",
            ProcessError::StalePointer => "automation pointer references a dead instance",
            ProcessError::BlockedByDialog => "blocking dialog box open",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ProcessError {}

impl ClientProcess {
    /// Creates a process definition (not yet running).
    pub fn new(name: &'static str, baseline_memory_kb: u64, leak_kb_per_op: u64) -> Self {
        ClientProcess {
            name,
            status: ProcessStatus::NotRunning,
            instance: 0,
            dialogs: Vec::new(),
            memory_kb: baseline_memory_kb,
            baseline_memory_kb,
            leak_kb_per_op,
            started_at: SimTime::ZERO,
        }
    }

    /// The software's name (for traces).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current lifecycle status.
    pub fn status(&self) -> ProcessStatus {
        self.status
    }

    /// Starts a fresh instance and returns an automation pointer into it.
    /// Any previous instance's pointers become stale.
    pub fn start(&mut self, now: SimTime) -> AutomationPointer {
        self.instance += 1;
        self.status = ProcessStatus::Running;
        self.dialogs.clear();
        self.memory_kb = self.baseline_memory_kb;
        self.started_at = now;
        AutomationPointer { instance: self.instance }
    }

    /// Kills the process (watchdog/manager action). Idempotent.
    pub fn kill(&mut self) {
        self.status = ProcessStatus::NotRunning;
        self.dialogs.clear();
    }

    /// Fault injection: the process wedges.
    pub fn inject_hang(&mut self) {
        if self.status == ProcessStatus::Running {
            self.status = ProcessStatus::Hung;
        }
    }

    /// Fault injection: the process dies on its own.
    pub fn inject_crash(&mut self) {
        if matches!(self.status, ProcessStatus::Running | ProcessStatus::Hung) {
            self.status = ProcessStatus::Crashed;
        }
    }

    /// Fault injection: a dialog box pops.
    pub fn inject_dialog(&mut self, dialog: DialogBox) {
        if matches!(self.status, ProcessStatus::Running | ProcessStatus::Hung) {
            self.dialogs.push(dialog);
        }
    }

    /// Whether `ptr` still references the live instance.
    pub fn pointer_valid(&self, ptr: AutomationPointer) -> bool {
        self.status == ProcessStatus::Running && ptr.instance == self.instance
    }

    /// Whether a blocking dialog is open.
    pub fn has_blocking_dialog(&self) -> bool {
        self.dialogs.iter().any(|d| d.blocking)
    }

    /// Open dialogs, oldest first.
    pub fn dialogs(&self) -> &[DialogBox] {
        &self.dialogs
    }

    /// Removes and returns the dialog at `index` (the monkey thread's click).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn close_dialog(&mut self, index: usize) -> DialogBox {
        self.dialogs.remove(index)
    }

    /// Resident memory in KB (grows with use if the software leaks).
    pub fn memory_kb(&self) -> u64 {
        self.memory_kb
    }

    /// When the live instance started.
    pub fn started_at(&self) -> SimTime {
        self.started_at
    }

    /// Performs one automation operation against the process. This is the
    /// gate every manager call goes through: it validates liveness, pointer
    /// freshness, and dialog state, and applies the per-op memory leak.
    ///
    /// # Errors
    ///
    /// Returns the corresponding [`ProcessError`] if the process is not
    /// running, hung, the pointer is stale, or a blocking dialog is open.
    pub fn automation_op(&mut self, ptr: AutomationPointer) -> Result<(), ProcessError> {
        match self.status {
            ProcessStatus::NotRunning | ProcessStatus::Crashed => {
                return Err(ProcessError::NotRunning)
            }
            ProcessStatus::Hung => return Err(ProcessError::Hung),
            ProcessStatus::Running => {}
        }
        if ptr.instance != self.instance {
            return Err(ProcessError::StalePointer);
        }
        if self.has_blocking_dialog() {
            return Err(ProcessError::BlockedByDialog);
        }
        self.memory_kb += self.leak_kb_per_op;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc() -> ClientProcess {
        ClientProcess::new("im-client", 10_000, 4)
    }

    #[test]
    fn lifecycle_start_kill() {
        let mut p = proc();
        assert_eq!(p.status(), ProcessStatus::NotRunning);
        let ptr = p.start(SimTime::from_secs(1));
        assert_eq!(p.status(), ProcessStatus::Running);
        assert!(p.pointer_valid(ptr));
        assert_eq!(p.started_at(), SimTime::from_secs(1));
        p.kill();
        assert_eq!(p.status(), ProcessStatus::NotRunning);
        assert!(!p.pointer_valid(ptr));
    }

    #[test]
    fn restart_invalidates_old_pointers() {
        let mut p = proc();
        let old = p.start(SimTime::ZERO);
        p.kill();
        let fresh = p.start(SimTime::from_secs(5));
        assert!(!p.pointer_valid(old));
        assert!(p.pointer_valid(fresh));
        assert_eq!(p.automation_op(old), Err(ProcessError::StalePointer));
        assert_eq!(p.automation_op(fresh), Ok(()));
    }

    #[test]
    fn hang_blocks_operations_until_restart() {
        let mut p = proc();
        let ptr = p.start(SimTime::ZERO);
        p.inject_hang();
        assert_eq!(p.status(), ProcessStatus::Hung);
        assert_eq!(p.automation_op(ptr), Err(ProcessError::Hung));
        p.kill();
        let ptr = p.start(SimTime::ZERO);
        assert_eq!(p.automation_op(ptr), Ok(()));
    }

    #[test]
    fn crash_reports_not_running() {
        let mut p = proc();
        let ptr = p.start(SimTime::ZERO);
        p.inject_crash();
        assert_eq!(p.status(), ProcessStatus::Crashed);
        assert_eq!(p.automation_op(ptr), Err(ProcessError::NotRunning));
    }

    #[test]
    fn blocking_dialog_blocks_everything_nonblocking_does_not() {
        let mut p = proc();
        let ptr = p.start(SimTime::ZERO);
        p.inject_dialog(DialogBox {
            caption: "FYI".into(),
            buttons: vec!["OK".into()],
            blocking: false,
            popped_at: SimTime::ZERO,
        });
        assert_eq!(p.automation_op(ptr), Ok(()));
        p.inject_dialog(DialogBox::blocking("Sign-in failed", "OK", SimTime::ZERO));
        assert_eq!(p.automation_op(ptr), Err(ProcessError::BlockedByDialog));
        assert!(p.has_blocking_dialog());
        // Click it away (index 1 — the blocking one).
        let closed = p.close_dialog(1);
        assert_eq!(closed.caption, "Sign-in failed");
        assert_eq!(p.automation_op(ptr), Ok(()));
    }

    #[test]
    fn memory_leaks_per_op_and_resets_on_restart() {
        let mut p = proc();
        let ptr = p.start(SimTime::ZERO);
        let base = p.memory_kb();
        for _ in 0..100 {
            p.automation_op(ptr).unwrap();
        }
        assert_eq!(p.memory_kb(), base + 400);
        p.kill();
        p.start(SimTime::ZERO);
        assert_eq!(p.memory_kb(), base);
    }

    #[test]
    fn dialogs_cleared_on_start_and_kill() {
        let mut p = proc();
        p.start(SimTime::ZERO);
        p.inject_dialog(DialogBox::blocking("X", "OK", SimTime::ZERO));
        p.kill();
        assert!(p.dialogs().is_empty());
        p.start(SimTime::ZERO);
        assert!(p.dialogs().is_empty());
    }

    #[test]
    fn faults_ignored_when_not_running() {
        let mut p = proc();
        p.inject_hang();
        p.inject_crash();
        p.inject_dialog(DialogBox::blocking("X", "OK", SimTime::ZERO));
        assert_eq!(p.status(), ProcessStatus::NotRunning);
        assert!(p.dialogs().is_empty());
    }
}
