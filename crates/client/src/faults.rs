//! Fault-injection processes for the client software.
//!
//! Rates are calibrated so that a 30-day run reproduces the *shape* of the
//! paper's one-month fault log (§5): a handful of forced logouts a month,
//! a similar number of client hangs, occasional dialog boxes — mostly from
//! a known repertoire, rarely a previously-unknown one — and rare client
//! crashes.

use simba_sim::{SimDuration, SimRng};

/// A kind of injected client-software anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The client is silently logged out (network blip, server recovery).
    /// A simple re-logon fixes it — 9 instances in the paper's month.
    Logout,
    /// The client wedges; it must be killed and restarted — 9 instances.
    Hang,
    /// The client process dies on its own.
    Crash,
    /// A dialog box from the known repertoire pops.
    KnownDialog,
    /// A dialog box nobody anticipated pops (2 instances in the month,
    /// initially unrecoverable).
    UnknownDialog,
}

impl FaultKind {
    /// All kinds, for iteration in tests and reports.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Logout,
        FaultKind::Hang,
        FaultKind::Crash,
        FaultKind::KnownDialog,
        FaultKind::UnknownDialog,
    ];
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultKind::Logout => "logout",
            FaultKind::Hang => "hang",
            FaultKind::Crash => "crash",
            FaultKind::KnownDialog => "known-dialog",
            FaultKind::UnknownDialog => "unknown-dialog",
        };
        f.write_str(s)
    }
}

/// Mean time between faults, per kind. `None` disables the kind.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientFaultModel {
    /// MTBF for silent logouts.
    pub logout_mtbf: Option<SimDuration>,
    /// MTBF for hangs.
    pub hang_mtbf: Option<SimDuration>,
    /// MTBF for spontaneous crashes.
    pub crash_mtbf: Option<SimDuration>,
    /// MTBF for known dialog boxes.
    pub known_dialog_mtbf: Option<SimDuration>,
    /// MTBF for unknown dialog boxes.
    pub unknown_dialog_mtbf: Option<SimDuration>,
}

impl ClientFaultModel {
    /// A model with every fault disabled.
    pub fn none() -> Self {
        ClientFaultModel {
            logout_mtbf: None,
            hang_mtbf: None,
            crash_mtbf: None,
            known_dialog_mtbf: None,
            unknown_dialog_mtbf: None,
        }
    }

    /// The month-calibration: ≈9 logouts, ≈9 hangs, ≈1 crash, ≈6 known
    /// dialogs and ≈2 unknown dialogs per 30 days — matching §5.
    pub fn paper_month() -> Self {
        ClientFaultModel {
            logout_mtbf: Some(SimDuration::from_days(30) .div_f(9.0)),
            hang_mtbf: Some(SimDuration::from_days(30).div_f(9.0)),
            crash_mtbf: Some(SimDuration::from_days(30)),
            known_dialog_mtbf: Some(SimDuration::from_days(5)),
            unknown_dialog_mtbf: Some(SimDuration::from_days(15)),
        }
    }

    /// Draws the delay until the next fault of each enabled kind and
    /// returns the soonest `(delay, kind)`, or `None` if all disabled.
    ///
    /// Competing exponentials: equivalent to a merged Poisson process with
    /// kind chosen proportionally to rate — and resampling after each fault
    /// keeps the process memoryless.
    pub fn next_fault(&self, rng: &mut SimRng) -> Option<(SimDuration, FaultKind)> {
        let mut best: Option<(SimDuration, FaultKind)> = None;
        for (mtbf, kind) in [
            (self.logout_mtbf, FaultKind::Logout),
            (self.hang_mtbf, FaultKind::Hang),
            (self.crash_mtbf, FaultKind::Crash),
            (self.known_dialog_mtbf, FaultKind::KnownDialog),
            (self.unknown_dialog_mtbf, FaultKind::UnknownDialog),
        ] {
            if let Some(mtbf) = mtbf {
                let d = SimDuration::from_secs_f64(rng.exponential(mtbf.as_secs_f64()));
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, kind));
                }
            }
        }
        best
    }
}

/// Helper: divide a duration by a float factor.
trait DivF {
    fn div_f(self, f: f64) -> SimDuration;
}
impl DivF for SimDuration {
    fn div_f(self, f: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() / f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn none_yields_no_faults() {
        let mut rng = SimRng::new(1);
        assert_eq!(ClientFaultModel::none().next_fault(&mut rng), None);
    }

    #[test]
    fn single_kind_always_wins() {
        let model = ClientFaultModel {
            hang_mtbf: Some(SimDuration::from_hours(1)),
            ..ClientFaultModel::none()
        };
        let mut rng = SimRng::new(2);
        for _ in 0..50 {
            let (_, kind) = model.next_fault(&mut rng).unwrap();
            assert_eq!(kind, FaultKind::Hang);
        }
    }

    #[test]
    fn paper_month_rates_have_right_proportions() {
        // Simulate the competing process for 30 simulated days, many times,
        // and check per-kind counts land near the calibration targets.
        let model = ClientFaultModel::paper_month();
        let mut rng = SimRng::new(3);
        let mut counts: HashMap<FaultKind, u32> = HashMap::new();
        let runs = 40;
        for _ in 0..runs {
            let mut t = SimDuration::ZERO;
            let month = SimDuration::from_days(30);
            loop {
                let (d, kind) = model.next_fault(&mut rng).unwrap();
                t += d;
                if t >= month {
                    break;
                }
                *counts.entry(kind).or_default() += 1;
            }
        }
        let avg = |k: FaultKind| *counts.get(&k).unwrap_or(&0) as f64 / runs as f64;
        assert!((6.0..12.0).contains(&avg(FaultKind::Logout)), "logouts {}", avg(FaultKind::Logout));
        assert!((6.0..12.0).contains(&avg(FaultKind::Hang)), "hangs {}", avg(FaultKind::Hang));
        assert!((0.3..2.5).contains(&avg(FaultKind::Crash)), "crashes {}", avg(FaultKind::Crash));
        assert!((4.0..9.0).contains(&avg(FaultKind::KnownDialog)), "known {}", avg(FaultKind::KnownDialog));
        assert!((1.0..3.5).contains(&avg(FaultKind::UnknownDialog)), "unknown {}", avg(FaultKind::UnknownDialog));
    }

    #[test]
    fn display_names_are_stable() {
        let names: Vec<String> = FaultKind::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(names, ["logout", "hang", "crash", "known-dialog", "unknown-dialog"]);
    }
}
