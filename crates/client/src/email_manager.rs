//! The Email Manager: drives the simulated email client software against
//! the simulated email service.
//!
//! Email is SIMBA's fallback channel, so the manager's job is humbler than
//! the IM Manager's: send reliably-enough, and make sure no received alert
//! mail sits unprocessed because a new-mail event was lost (§4.2.1 lists
//! "unprocessed emails ... due to potential loss of new-email events" as a
//! self-stabilization invariant).

use crate::manager::{ManagerCore, SanityReport};
use crate::process::ClientProcess;
use simba_net::email::{Email, EmailAddr, EmailService, EmailTransit};
use simba_sim::SimTime;
use simba_telemetry::Telemetry;

/// The Communication Manager for the email channel.
#[derive(Debug)]
pub struct EmailManager {
    core: ManagerCore,
    identity: EmailAddr,
    /// Mail delivered to the client but not yet handed to the application.
    unread: Vec<Email>,
}

impl EmailManager {
    /// Creates a manager for `identity`, backed by a typical email client.
    pub fn new(identity: EmailAddr) -> Self {
        EmailManager {
            core: ManagerCore::new(ClientProcess::new("email-client", 25_000, 3), 300_000),
            identity,
            unread: Vec::new(),
        }
    }

    /// Creates a manager with a custom client process.
    pub fn with_process(identity: EmailAddr, process: ClientProcess, memory_limit_kb: u64) -> Self {
        EmailManager {
            core: ManagerCore::new(process, memory_limit_kb),
            identity,
            unread: Vec::new(),
        }
    }

    /// Records sanity checks, anomalies, repairs, and restarts through
    /// `telemetry` under the `client.*` namespace.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.core.set_telemetry(telemetry);
        self
    }

    /// This manager's email identity.
    pub fn identity(&self) -> &EmailAddr {
        &self.identity
    }

    /// Shared access to the manager core.
    pub fn core(&self) -> &ManagerCore {
        &self.core
    }

    /// Mutable core access (fault injection, dialog rules).
    pub fn core_mut(&mut self) -> &mut ManagerCore {
        &mut self.core
    }

    /// Registers a caption→button pair with the monkey thread.
    pub fn register_dialog_rule(&mut self, caption: impl Into<String>, button: impl Into<String>) {
        self.core.register_dialog_rule(caption, button);
    }

    /// Starts the client if needed.
    pub fn start(&mut self, now: SimTime) {
        self.core.ensure_started(now);
    }

    /// Full sanity check: generic client checks plus a mailbox sweep —
    /// any mail sitting in the service mailbox whose new-mail event was
    /// missed is pulled into the unread queue here.
    pub fn sanity_check(&mut self, service: &mut EmailService, now: SimTime) -> SanityReport {
        let report = self.core.base_sanity_check(now);
        if self.core.automation_op().is_ok() {
            // The §4.2.1 invariant check: poll the mailbox even without a
            // new-mail event.
            self.unread.extend(service.take_mailbox(&self.identity));
        }
        report
    }

    /// Sends an email through the client software.
    ///
    /// # Errors
    ///
    /// Fails if the client software is unusable; the service itself never
    /// rejects (store-and-forward).
    pub fn send(
        &mut self,
        service: &mut EmailService,
        to: &EmailAddr,
        sender_name: impl Into<String>,
        subject: impl Into<String>,
        body: impl Into<String>,
        now: SimTime,
    ) -> Result<EmailTransit, crate::process::ProcessError> {
        self.core.automation_op()?;
        Ok(service.send(&self.identity, to, sender_name, subject, body, now))
    }

    /// Handles a new-mail notification: pulls the mailbox into the unread
    /// queue. Call when the harness delivers a mailbox deposit event.
    pub fn on_new_mail(&mut self, service: &mut EmailService) {
        if self.core.automation_op().is_ok() {
            self.unread.extend(service.take_mailbox(&self.identity));
        }
    }

    /// Drains the unread queue.
    pub fn take_unread(&mut self) -> Vec<Email> {
        std::mem::take(&mut self.unread)
    }

    /// Number of unread messages held by the client.
    pub fn unread_len(&self) -> usize {
        self.unread.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_net::latency::LatencyModel;
    use simba_net::loss::LossModel;
    use simba_sim::{SimDuration, SimRng};

    fn service() -> EmailService {
        EmailService::new(SimRng::new(1))
            .with_latency(LatencyModel::Constant(SimDuration::from_secs(10)))
            .with_loss(LossModel::None)
            .with_notify_loss(0.0)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn send_through_manager() {
        let mut svc = service();
        let mut mgr = EmailManager::new(EmailAddr::new("mab@home"));
        mgr.start(t(0));
        let transit = mgr
            .send(&mut svc, &EmailAddr::new("user@work"), "MAB", "alert", "body", t(1))
            .unwrap();
        assert_eq!(transit.message.subject, "alert");
        assert_eq!(transit.delay, SimDuration::from_secs(10));
    }

    #[test]
    fn send_fails_when_client_down() {
        let mut svc = service();
        let mut mgr = EmailManager::new(EmailAddr::new("mab@home"));
        // never started
        assert!(mgr
            .send(&mut svc, &EmailAddr::new("u@w"), "n", "s", "b", t(0))
            .is_err());
    }

    #[test]
    fn new_mail_notification_pulls_mailbox() {
        let mut svc = service();
        let me = EmailAddr::new("mab@home");
        let mut mgr = EmailManager::new(me.clone());
        mgr.start(t(0));
        let transit = svc.send(&EmailAddr::new("yahoo"), &me, "Yahoo! Stocks", "MSFT", "b", t(0));
        svc.deposit(transit.message);
        assert_eq!(mgr.unread_len(), 0);
        mgr.on_new_mail(&mut svc);
        assert_eq!(mgr.unread_len(), 1);
        let mail = mgr.take_unread();
        assert_eq!(mail[0].sender_name, "Yahoo! Stocks");
        assert_eq!(mgr.unread_len(), 0);
    }

    #[test]
    fn sanity_check_sweeps_missed_mail() {
        // A deposit whose notification was lost is recovered by the next
        // sanity pass — the self-stabilization invariant.
        let mut svc = service().with_notify_loss(1.0);
        let me = EmailAddr::new("mab@home");
        let mut mgr = EmailManager::new(me.clone());
        mgr.start(t(0));
        let transit = svc.send(&EmailAddr::new("src"), &me, "n", "s", "b", t(0));
        let notified = svc.deposit(transit.message);
        assert!(!notified);
        assert_eq!(mgr.unread_len(), 0);
        let report = mgr.sanity_check(&mut svc, t(60));
        assert!(report.healthy());
        assert_eq!(mgr.unread_len(), 1);
    }

    #[test]
    fn crashed_client_restarted_by_sanity_check_then_usable() {
        let mut svc = service();
        let mut mgr = EmailManager::new(EmailAddr::new("mab@home"));
        mgr.start(t(0));
        mgr.core_mut().process_mut().inject_crash();
        assert!(mgr
            .send(&mut svc, &EmailAddr::new("u"), "n", "s", "b", t(1))
            .is_err());
        let report = mgr.sanity_check(&mut svc, t(2));
        assert!(!report.anomalies.is_empty());
        assert!(mgr
            .send(&mut svc, &EmailAddr::new("u"), "n", "s", "b", t(3))
            .is_ok());
    }
}
