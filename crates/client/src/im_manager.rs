//! The IM Manager: drives the simulated IM client software against the
//! simulated IM service.
//!
//! Application-specific sanity checks (§4.1.1): "the IM Manager checks if
//! the IM client software is still logged on to the server. If it has been
//! logged out due to, for example, server recovery or network
//! disconnection, it will be re-logged in. The IM Manager also checks to
//! see if it can launch IM sessions, obtain the status of the buddies."

use crate::manager::{Anomaly, ManagerCore, RepairAction, SanityReport};
use crate::process::ClientProcess;
use simba_net::im::{ImHandle, ImSendError, ImService, Transit};
use simba_sim::SimTime;
use simba_telemetry::Telemetry;

/// Why an IM send through the manager failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImManagerError {
    /// The client software is unusable (down/hung/stale pointer/dialog).
    Client(crate::process::ProcessError),
    /// The IM service rejected the send.
    Service(ImSendError),
}

impl std::fmt::Display for ImManagerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImManagerError::Client(e) => write!(f, "client software: {e}"),
            ImManagerError::Service(e) => write!(f, "IM service: {e}"),
        }
    }
}

impl std::error::Error for ImManagerError {}

/// The Communication Manager for the IM channel.
#[derive(Debug)]
pub struct ImManager {
    core: ManagerCore,
    identity: ImHandle,
}

impl ImManager {
    /// Creates a manager for `identity`, backed by a typical leaky IM client.
    pub fn new(identity: ImHandle) -> Self {
        ImManager {
            core: ManagerCore::new(ClientProcess::new("im-client", 12_000, 2), 200_000),
            identity,
        }
    }

    /// Creates a manager with a custom client process (tests, leak studies).
    pub fn with_process(identity: ImHandle, process: ClientProcess, memory_limit_kb: u64) -> Self {
        ImManager {
            core: ManagerCore::new(process, memory_limit_kb),
            identity,
        }
    }

    /// Records sanity checks, anomalies, repairs, and restarts through
    /// `telemetry` under the `client.*` namespace.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.core.set_telemetry(telemetry);
        self
    }

    /// This manager's IM identity.
    pub fn identity(&self) -> &ImHandle {
        &self.identity
    }

    /// Shared access to the manager core (process, registry).
    pub fn core(&self) -> &ManagerCore {
        &self.core
    }

    /// Mutable core access (fault injection, dialog rules).
    pub fn core_mut(&mut self) -> &mut ManagerCore {
        &mut self.core
    }

    /// Registers a caption→button pair with the monkey thread.
    pub fn register_dialog_rule(&mut self, caption: impl Into<String>, button: impl Into<String>) {
        self.core.register_dialog_rule(caption, button);
    }

    /// Starts the client (if needed) and logs on to the IM service.
    ///
    /// # Errors
    ///
    /// Fails if the service is down or the identity unregistered.
    pub fn start(&mut self, service: &mut ImService, now: SimTime) -> Result<(), ImSendError> {
        self.core.ensure_started(now);
        service.logon(&self.identity, now)
    }

    /// The full Sanity Checking API: generic checks (process, pointers,
    /// dialogs, memory) then the IM-specific logged-on / can-launch-session
    /// checks, repairing what it can.
    pub fn sanity_check(&mut self, service: &mut ImService, now: SimTime) -> SanityReport {
        let report = self.core.base_sanity_check(now);
        let base_anomalies = report.anomalies.len();
        let base_repairs = report.repairs.len();
        let report = self.app_checks(report, service, now);
        // The base pass recorded its own findings; record only the
        // IM-specific delta (re-logons, service probes).
        let delta = SanityReport {
            anomalies: report.anomalies[base_anomalies..].to_vec(),
            repairs: report.repairs[base_repairs..].to_vec(),
        };
        self.core.note_sanity_report(&delta, now);
        report
    }

    fn app_checks(
        &mut self,
        mut report: SanityReport,
        service: &mut ImService,
        now: SimTime,
    ) -> SanityReport {
        // A client restart tears down its server connection: the service
        // session is gone, so the logged-on check below must re-logon.
        if report.repairs.contains(&RepairAction::Restart) {
            service.force_logout(&self.identity);
        }

        let client_usable = self.core.automation_op().is_ok();
        if !client_usable {
            // Base pass already recorded why; app checks are moot.
            return report;
        }

        if service.is_down(now) {
            report.anomalies.push(Anomaly::ServiceUnavailable);
            report
                .repairs
                .push(RepairAction::Unrepairable(Anomaly::ServiceUnavailable));
            return report;
        }

        if !service.is_logged_on(&self.identity, now) {
            report.anomalies.push(Anomaly::LoggedOut);
            match service.logon(&self.identity, now) {
                Ok(()) => report.repairs.push(RepairAction::ReLogon),
                Err(_) => report
                    .repairs
                    .push(RepairAction::Unrepairable(Anomaly::LoggedOut)),
            }
        }

        // "The IM Manager also checks to see if it can launch IM sessions,
        // obtain the status of the buddies" — a failing probe here means
        // the session is subtly broken despite looking logged on.
        if service.is_logged_on(&self.identity, now)
            && service.buddy_status(&self.identity, now).is_err()
        {
            report.anomalies.push(Anomaly::ServiceUnavailable);
            report
                .repairs
                .push(RepairAction::Unrepairable(Anomaly::ServiceUnavailable));
        }
        report
    }

    /// The status of this identity's buddies, through the client software.
    ///
    /// # Errors
    ///
    /// Fails if the client software is unusable or the session is broken.
    pub fn buddy_status(
        &mut self,
        service: &mut ImService,
        now: SimTime,
    ) -> Result<Vec<(ImHandle, bool)>, ImManagerError> {
        self.core.automation_op().map_err(ImManagerError::Client)?;
        service
            .buddy_status(&self.identity, now)
            .map_err(ImManagerError::Service)
    }

    /// Sends an IM through the client software.
    ///
    /// # Errors
    ///
    /// Fails with [`ImManagerError::Client`] when the client software is
    /// unusable (the caller should run [`ImManager::sanity_check`] or
    /// restart) and [`ImManagerError::Service`] when the service rejects
    /// the message (down, not logged on, recipient offline).
    pub fn send(
        &mut self,
        service: &mut ImService,
        to: &ImHandle,
        body: impl Into<String>,
        now: SimTime,
    ) -> Result<Transit, ImManagerError> {
        self.core.automation_op().map_err(ImManagerError::Client)?;
        service
            .send(&self.identity, to, body, now)
            .map_err(ImManagerError::Service)
    }

    /// Checks a buddy's presence through the client software.
    ///
    /// # Errors
    ///
    /// Fails if the client software is unusable.
    pub fn presence(
        &mut self,
        service: &mut ImService,
        buddy: &ImHandle,
        now: SimTime,
    ) -> Result<bool, ImManagerError> {
        self.core.automation_op().map_err(ImManagerError::Client)?;
        Ok(service.presence(buddy, now))
    }

    /// Drains the client's inbox (received IMs).
    ///
    /// # Errors
    ///
    /// Fails if the client software is unusable.
    pub fn receive(
        &mut self,
        service: &mut ImService,
        now: SimTime,
    ) -> Result<Vec<simba_net::im::ImMessage>, ImManagerError> {
        let _ = now;
        self.core.automation_op().map_err(ImManagerError::Client)?;
        Ok(service.take_inbox(&self.identity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialogs::DialogBox;
    use simba_net::latency::LatencyModel;
    use simba_net::loss::LossModel;
    use simba_net::outage::OutageSchedule;
    use simba_sim::{SimDuration, SimRng};

    fn service() -> ImService {
        ImService::new(SimRng::new(1))
            .with_latency(LatencyModel::Constant(SimDuration::from_millis(300)))
            .with_loss(LossModel::None)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn setup() -> (ImService, ImManager, ImHandle) {
        let mut svc = service();
        let me = ImHandle::new("mab");
        let peer = ImHandle::new("user");
        svc.register(me.clone());
        svc.register(peer.clone());
        svc.logon(&peer, t(0)).unwrap();
        let mut mgr = ImManager::new(me);
        mgr.start(&mut svc, t(0)).unwrap();
        (svc, mgr, peer)
    }

    #[test]
    fn send_and_receive_through_manager() {
        let (mut svc, mut mgr, peer) = setup();
        let transit = mgr.send(&mut svc, &peer, "alert!", t(1)).unwrap();
        assert_eq!(transit.message.body, "alert!");
        assert!(svc.deliver(transit.message, t(2)));
        assert_eq!(svc.inbox_len(&peer), 1);
    }

    #[test]
    fn hung_client_blocks_send_until_sanity_check() {
        let (mut svc, mut mgr, peer) = setup();
        mgr.core_mut().process_mut().inject_hang();
        assert!(matches!(
            mgr.send(&mut svc, &peer, "x", t(1)),
            Err(ImManagerError::Client(_))
        ));
        let report = mgr.sanity_check(&mut svc, t(2));
        assert!(report.anomalies.contains(&Anomaly::ProcessHung));
        // Restart logged us out; the same pass re-logs on.
        assert!(report.repairs.contains(&RepairAction::Restart));
        assert!(report.repairs.contains(&RepairAction::ReLogon));
        assert!(mgr.send(&mut svc, &peer, "x", t(3)).is_ok());
    }

    #[test]
    fn forced_logout_repaired_by_relogon_without_restart() {
        let (mut svc, mut mgr, peer) = setup();
        svc.force_logout(mgr.identity());
        assert!(matches!(
            mgr.send(&mut svc, &peer, "x", t(1)),
            Err(ImManagerError::Service(ImSendError::SenderNotLoggedOn))
        ));
        let report = mgr.sanity_check(&mut svc, t(2));
        assert_eq!(report.anomalies, vec![Anomaly::LoggedOut]);
        assert_eq!(report.repairs, vec![RepairAction::ReLogon]);
        assert!(mgr.send(&mut svc, &peer, "x", t(3)).is_ok());
    }

    #[test]
    fn server_recovery_logout_detected_and_repaired() {
        let mut svc = service().with_outages(OutageSchedule::from_windows(vec![(
            t(100),
            t(200),
        )]));
        let me = ImHandle::new("mab");
        svc.register(me.clone());
        let mut mgr = ImManager::new(me);
        mgr.start(&mut svc, t(0)).unwrap();

        // During the outage: unrepairable, service down.
        let during = mgr.sanity_check(&mut svc, t(150));
        assert!(during.anomalies.contains(&Anomaly::ServiceUnavailable));
        assert!(!during.healthy());

        // After recovery: logged out by server recovery, re-logon works.
        let after = mgr.sanity_check(&mut svc, t(250));
        assert_eq!(after.anomalies, vec![Anomaly::LoggedOut]);
        assert_eq!(after.repairs, vec![RepairAction::ReLogon]);
        assert!(after.healthy());
    }

    #[test]
    fn unknown_dialog_then_registered_rule_recovers() {
        let (mut svc, mut mgr, peer) = setup();
        mgr.core_mut()
            .process_mut()
            .inject_dialog(DialogBox::blocking("Mystery Box", "Abort", t(1)));
        assert!(mgr.send(&mut svc, &peer, "x", t(1)).is_err());
        let r = mgr.sanity_check(&mut svc, t(2));
        assert!(!r.healthy());

        mgr.register_dialog_rule("Mystery Box", "Abort");
        let r2 = mgr.sanity_check(&mut svc, t(3));
        assert!(r2.healthy());
        assert!(mgr.send(&mut svc, &peer, "x", t(4)).is_ok());
    }

    #[test]
    fn buddy_status_through_manager() {
        let (mut svc, mut mgr, peer) = setup();
        svc.add_buddy(mgr.identity(), &peer).unwrap();
        let status = mgr.buddy_status(&mut svc, t(1)).unwrap();
        assert_eq!(status, vec![(peer.clone(), true)]);
        svc.logoff(&peer, t(2));
        let status = mgr.buddy_status(&mut svc, t(3)).unwrap();
        assert_eq!(status, vec![(peer, false)]);
    }

    #[test]
    fn presence_reads_through_client() {
        let (mut svc, mut mgr, peer) = setup();
        assert!(mgr.presence(&mut svc, &peer, t(1)).unwrap());
        svc.logoff(&peer, t(1));
        assert!(!mgr.presence(&mut svc, &peer, t(2)).unwrap());
    }

    #[test]
    fn relogon_repair_is_recorded_as_delta_only() {
        use simba_telemetry::{RingBufferSink, Value};
        use std::sync::Arc;

        let mut svc = service();
        let me = ImHandle::new("mab");
        svc.register(me.clone());
        let sink = Arc::new(RingBufferSink::new(32));
        let telemetry = Telemetry::with_sink(sink.clone());
        let mut mgr = ImManager::new(me).with_telemetry(telemetry.clone());
        mgr.start(&mut svc, t(0)).unwrap();

        svc.force_logout(mgr.identity());
        let report = mgr.sanity_check(&mut svc, t(2));
        assert_eq!(report.repairs, vec![RepairAction::ReLogon]);

        let snap = telemetry.metrics().snapshot();
        // One pass, one anomaly (logged_out), one re-logon — nothing
        // double-counted between the base pass and the IM delta.
        assert_eq!(snap.counter("client.sanity_check"), 1);
        assert_eq!(snap.counter("client.anomalies"), 1);
        assert_eq!(snap.counter("client.re_logons"), 1);
        assert_eq!(snap.counter("client.restart"), 0);

        let events = sink.events();
        let anomaly = events.iter().find(|e| e.name == "client.anomaly").unwrap();
        assert_eq!(anomaly.field("kind"), Some(&Value::Str("logged_out".into())));
        assert_eq!(anomaly.time_ms, 2_000);
    }

    #[test]
    fn receive_drains_inbox() {
        let (mut svc, mut mgr, peer) = setup();
        // peer sends to mab
        let transit = svc.send(&peer, mgr.identity(), "hello mab", t(1)).unwrap();
        svc.deliver(transit.message, t(2));
        let msgs = mgr.receive(&mut svc, t(3)).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].body, "hello mab");
        assert!(mgr.receive(&mut svc, t(4)).unwrap().is_empty());
    }
}
