//! The SIMBA Desktop Assistant (§2.5).
//!
//! "We have built a SIMBA Desktop Assistant that runs on a user's primary
//! machine and remains inactive until the idle time of interactive
//! activities exceeds a user-specified threshold and the software
//! determines that the user has not processed emails from other places.
//! Currently, the Assistant software generates alerts when high-importance
//! emails come in and when high-importance reminders pop up."

use simba_core::alert::{IncomingAlert, Urgency};
use simba_sim::{SimDuration, SimTime};

/// Importance flag on incoming desktop email / reminders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Importance {
    /// Ordinary traffic; the assistant never forwards it.
    Normal,
    /// High importance; forwarded when the user is away.
    High,
}

/// The desktop assistant state machine.
#[derive(Debug)]
pub struct DesktopAssistant {
    source_id: String,
    idle_threshold: SimDuration,
    last_activity: SimTime,
    /// Last time the user demonstrably processed email from elsewhere
    /// (webmail, another machine). While recent, the assistant stays quiet.
    last_remote_email_access: Option<SimTime>,
    /// How recent remote email access must be to suppress alerts.
    remote_access_window: SimDuration,
    alerts_generated: u64,
    suppressed: u64,
}

impl DesktopAssistant {
    /// Creates an assistant with the given away threshold.
    pub fn new(source_id: impl Into<String>, idle_threshold: SimDuration) -> Self {
        DesktopAssistant {
            source_id: source_id.into(),
            idle_threshold,
            last_activity: SimTime::ZERO,
            last_remote_email_access: None,
            remote_access_window: SimDuration::from_mins(30),
            alerts_generated: 0,
            suppressed: 0,
        }
    }

    /// The assistant's alert source identity.
    pub fn source_id(&self) -> &str {
        &self.source_id
    }

    /// Total alerts generated.
    pub fn alerts_generated(&self) -> u64 {
        self.alerts_generated
    }

    /// High-importance items suppressed because the user was present or
    /// reading email elsewhere.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Keyboard/mouse activity observed on the primary machine.
    pub fn on_user_activity(&mut self, now: SimTime) {
        self.last_activity = now;
    }

    /// The user processed email from another device (suppresses alerts).
    pub fn on_remote_email_access(&mut self, now: SimTime) {
        self.last_remote_email_access = Some(now);
    }

    /// How long the console has been idle at `now`.
    pub fn idle_for(&self, now: SimTime) -> SimDuration {
        now.since(self.last_activity)
    }

    /// Whether the assistant is active (user away, not reading mail
    /// elsewhere).
    pub fn is_active(&self, now: SimTime) -> bool {
        if self.idle_for(now) < self.idle_threshold {
            return false;
        }
        match self.last_remote_email_access {
            Some(at) => now.since(at) >= self.remote_access_window,
            None => true,
        }
    }

    /// An email arrived in the desktop client.
    pub fn on_incoming_email(
        &mut self,
        importance: Importance,
        subject: &str,
        now: SimTime,
    ) -> Option<IncomingAlert> {
        self.forward(importance, format!("Email: {subject}"), now)
    }

    /// A calendar reminder popped on the desktop.
    pub fn on_reminder(
        &mut self,
        importance: Importance,
        title: &str,
        now: SimTime,
    ) -> Option<IncomingAlert> {
        self.forward(importance, format!("Reminder: {title}"), now)
    }

    fn forward(
        &mut self,
        importance: Importance,
        subject: String,
        now: SimTime,
    ) -> Option<IncomingAlert> {
        if importance != Importance::High {
            return None;
        }
        if !self.is_active(now) {
            self.suppressed += 1;
            return None;
        }
        self.alerts_generated += 1;
        // "Since the user is likely to be away from any machine, all
        // alerts are generated as SMS messages" — the assistant sends them
        // as email-style alerts with the keyword in the subject, and the
        // user maps the category to an SMS-bearing delivery mode.
        Some(
            IncomingAlert::from_email(
                self.source_id.clone(),
                "SIMBA Desktop Assistant",
                subject,
                String::new(),
                now,
            )
            .with_urgency(Urgency::Critical),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn assistant() -> DesktopAssistant {
        DesktopAssistant::new("assistant@desktop", SimDuration::from_mins(10))
    }

    #[test]
    fn quiet_while_user_present() {
        let mut a = assistant();
        a.on_user_activity(t(100));
        // 5 minutes later: still under the threshold.
        let alert = a.on_incoming_email(Importance::High, "budget due", t(100 + 300));
        assert!(alert.is_none());
        assert_eq!(a.suppressed(), 1);
    }

    #[test]
    fn forwards_high_importance_when_away() {
        let mut a = assistant();
        a.on_user_activity(t(0));
        let alert = a
            .on_incoming_email(Importance::High, "server down!", t(11 * 60))
            .expect("away > threshold");
        assert_eq!(alert.subject, "Email: server down!");
        assert_eq!(alert.urgency, Urgency::Critical);
        assert_eq!(alert.sender_name, "SIMBA Desktop Assistant");
        assert_eq!(a.alerts_generated(), 1);
    }

    #[test]
    fn normal_importance_never_forwarded() {
        let mut a = assistant();
        assert!(a
            .on_incoming_email(Importance::Normal, "newsletter", t(60 * 60))
            .is_none());
        assert_eq!(a.suppressed(), 0); // not even counted as suppressed
        assert_eq!(a.alerts_generated(), 0);
    }

    #[test]
    fn reminders_forwarded_like_email() {
        let mut a = assistant();
        let alert = a
            .on_reminder(Importance::High, "flight at 6pm", t(20 * 60))
            .unwrap();
        assert_eq!(alert.subject, "Reminder: flight at 6pm");
    }

    #[test]
    fn remote_email_access_suppresses() {
        let mut a = assistant();
        a.on_user_activity(t(0));
        a.on_remote_email_access(t(15 * 60));
        // Away, but the user is reading mail on their phone.
        assert!(a
            .on_incoming_email(Importance::High, "x", t(20 * 60))
            .is_none());
        assert_eq!(a.suppressed(), 1);
        // 30+ minutes after the remote access, alerts resume.
        let alert = a.on_incoming_email(Importance::High, "y", t(46 * 60));
        assert!(alert.is_some());
    }

    #[test]
    fn activity_resets_idleness() {
        let mut a = assistant();
        a.on_user_activity(t(0));
        assert!(a.is_active(t(11 * 60)));
        a.on_user_activity(t(11 * 60));
        assert!(!a.is_active(t(12 * 60)));
        assert_eq!(a.idle_for(t(12 * 60)), SimDuration::from_mins(1));
    }
}
