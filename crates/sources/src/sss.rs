//! The Soft-State Store (SSS) daemon from the Aladdin system.
//!
//! "The Soft-State Store (SSS) server is a daemon process that maintains a
//! store of soft-state variables, each of which is associated with a
//! required refresh frequency and the maximum number of allowed missing
//! refreshes before the variable is timed out. Clients of SSS can define
//! data types, create variables, read/write variables, and subscribe to
//! events relating to changes in the types or variables." (§5)
//!
//! Replication: Aladdin runs an SSS replica per PC; a write on one PC is
//! "replicated ... to other PCs through a multicast over the phoneline
//! Ethernet". [`SoftStateStore::take_outbound`] yields the multicast
//! updates; the harness delivers them to peers via
//! [`SoftStateStore::apply_update`]. Last-writer-wins on `(written_at,
//! writer)` makes replicas converge (property-tested in
//! `tests/sss_props.rs`).

use simba_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Identifies an SSS replica (one per PC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StoreId(pub u32);

/// A type definition: a name plus a human-readable schema string (Aladdin
/// used these to validate device variables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeDef {
    /// Type name, e.g. `"binary-sensor"`.
    pub name: String,
    /// Free-form schema description.
    pub schema: String,
}

/// One soft-state variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variable {
    /// Variable name, e.g. `"sensor.basement-water"`.
    pub name: String,
    /// Name of its type.
    pub type_name: String,
    /// Current value.
    pub value: String,
    /// Required refresh period.
    pub refresh_every: SimDuration,
    /// Allowed consecutive missing refreshes before timeout.
    pub max_missing: u32,
    /// Last write/refresh instant (and the LWW tiebreaker).
    pub written_at: SimTime,
    /// Which replica performed the last write.
    pub writer: StoreId,
    /// Whether the variable is currently timed out.
    pub timed_out: bool,
}

impl Variable {
    /// The instant at which this variable times out absent refreshes.
    pub fn deadline(&self) -> SimTime {
        self.written_at + self.refresh_every.saturating_mul(u64::from(self.max_missing) + 1)
    }
}

/// An event observed at one replica, delivered to local subscribers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SssEvent {
    /// A variable was created or its value changed.
    Changed {
        /// Variable name.
        name: String,
        /// New value.
        value: String,
        /// Previous value (`None` on creation).
        previous: Option<String>,
    },
    /// A variable missed too many refreshes.
    TimedOut {
        /// Variable name.
        name: String,
        /// Its last known value.
        last_value: String,
    },
    /// A timed-out variable came back.
    Revived {
        /// Variable name.
        name: String,
        /// The refreshed value.
        value: String,
    },
}

impl SssEvent {
    /// The variable the event concerns.
    pub fn variable(&self) -> &str {
        match self {
            SssEvent::Changed { name, .. }
            | SssEvent::TimedOut { name, .. }
            | SssEvent::Revived { name, .. } => name,
        }
    }
}

/// A replication record multicast to peer replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SssUpdate {
    /// Variable name.
    pub name: String,
    /// Type name (so peers can create the variable).
    pub type_name: String,
    /// Value carried.
    pub value: String,
    /// Refresh contract.
    pub refresh_every: SimDuration,
    /// Refresh contract.
    pub max_missing: u32,
    /// Write instant (LWW key).
    pub written_at: SimTime,
    /// Writing replica (LWW tiebreaker).
    pub writer: StoreId,
}

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SssError {
    /// The named type was never defined.
    UnknownType(String),
    /// The named variable was never created.
    UnknownVariable(String),
    /// A variable with that name already exists.
    VariableExists(String),
}

impl std::fmt::Display for SssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SssError::UnknownType(t) => write!(f, "unknown type {t:?}"),
            SssError::UnknownVariable(v) => write!(f, "unknown variable {v:?}"),
            SssError::VariableExists(v) => write!(f, "variable {v:?} already exists"),
        }
    }
}

impl std::error::Error for SssError {}

/// One SSS replica.
#[derive(Debug, Clone)]
pub struct SoftStateStore {
    id: StoreId,
    types: BTreeMap<String, TypeDef>,
    vars: BTreeMap<String, Variable>,
    outbound: Vec<SssUpdate>,
}

impl SoftStateStore {
    /// Creates an empty replica.
    pub fn new(id: StoreId) -> Self {
        SoftStateStore {
            id,
            types: BTreeMap::new(),
            vars: BTreeMap::new(),
            outbound: Vec::new(),
        }
    }

    /// This replica's id.
    pub fn id(&self) -> StoreId {
        self.id
    }

    /// Defines (or redefines) a data type.
    pub fn define_type(&mut self, name: impl Into<String>, schema: impl Into<String>) {
        let name = name.into();
        self.types.insert(
            name.clone(),
            TypeDef {
                name,
                schema: schema.into(),
            },
        );
    }

    /// Whether a type is defined.
    pub fn has_type(&self, name: &str) -> bool {
        self.types.contains_key(name)
    }

    /// Creates a variable.
    ///
    /// # Errors
    ///
    /// Fails if the type is undefined or the variable exists.
    pub fn create_var(
        &mut self,
        name: impl Into<String>,
        type_name: &str,
        value: impl Into<String>,
        refresh_every: SimDuration,
        max_missing: u32,
        now: SimTime,
    ) -> Result<SssEvent, SssError> {
        let name = name.into();
        if !self.types.contains_key(type_name) {
            return Err(SssError::UnknownType(type_name.to_string()));
        }
        if self.vars.contains_key(&name) {
            return Err(SssError::VariableExists(name));
        }
        let value = value.into();
        let var = Variable {
            name: name.clone(),
            type_name: type_name.to_string(),
            value: value.clone(),
            refresh_every,
            max_missing,
            written_at: now,
            writer: self.id,
            timed_out: false,
        };
        self.push_outbound(&var);
        self.vars.insert(name.clone(), var);
        Ok(SssEvent::Changed {
            name,
            value,
            previous: None,
        })
    }

    /// Writes a new value (also counts as a refresh). Returns the change
    /// event if the value differed (or the variable revived).
    ///
    /// # Errors
    ///
    /// Fails for unknown variables.
    pub fn write(
        &mut self,
        name: &str,
        value: impl Into<String>,
        now: SimTime,
    ) -> Result<Option<SssEvent>, SssError> {
        let id = self.id;
        let var = self
            .vars
            .get_mut(name)
            .ok_or_else(|| SssError::UnknownVariable(name.to_string()))?;
        let value = value.into();
        let was_timed_out = var.timed_out;
        let previous = var.value.clone();
        var.value = value.clone();
        var.written_at = now;
        var.writer = id;
        var.timed_out = false;
        let var_snapshot = var.clone();
        self.push_outbound(&var_snapshot);
        if was_timed_out {
            Ok(Some(SssEvent::Revived {
                name: name.to_string(),
                value,
            }))
        } else if previous != value {
            Ok(Some(SssEvent::Changed {
                name: name.to_string(),
                value,
                previous: Some(previous),
            }))
        } else {
            Ok(None)
        }
    }

    /// Refreshes a variable without changing its value (the keepalive).
    ///
    /// # Errors
    ///
    /// Fails for unknown variables.
    pub fn refresh(&mut self, name: &str, now: SimTime) -> Result<Option<SssEvent>, SssError> {
        let id = self.id;
        let var = self
            .vars
            .get_mut(name)
            .ok_or_else(|| SssError::UnknownVariable(name.to_string()))?;
        let was_timed_out = var.timed_out;
        var.written_at = now;
        var.writer = id;
        var.timed_out = false;
        let snapshot = var.clone();
        self.push_outbound(&snapshot);
        if was_timed_out {
            Ok(Some(SssEvent::Revived {
                name: name.to_string(),
                value: snapshot.value,
            }))
        } else {
            Ok(None)
        }
    }

    /// Reads a variable.
    pub fn read(&self, name: &str) -> Option<&Variable> {
        self.vars.get(name)
    }

    /// All variables.
    pub fn variables(&self) -> impl Iterator<Item = &Variable> {
        self.vars.values()
    }

    /// Scans for missing-refresh timeouts at `now`. Each expired variable
    /// times out exactly once (until revived).
    pub fn check_timeouts(&mut self, now: SimTime) -> Vec<SssEvent> {
        let mut events = Vec::new();
        for var in self.vars.values_mut() {
            if !var.timed_out && now >= var.deadline() {
                var.timed_out = true;
                events.push(SssEvent::TimedOut {
                    name: var.name.clone(),
                    last_value: var.value.clone(),
                });
            }
        }
        events
    }

    /// The earliest pending timeout deadline, if any (for harness timers).
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.vars
            .values()
            .filter(|v| !v.timed_out)
            .map(Variable::deadline)
            .min()
    }

    /// Drains the multicast replication queue.
    pub fn take_outbound(&mut self) -> Vec<SssUpdate> {
        std::mem::take(&mut self.outbound)
    }

    /// Applies a replicated update from a peer. Creates the variable if
    /// needed; otherwise last-writer-wins on `(written_at, writer)`.
    /// Returns the local event, if the update took effect.
    pub fn apply_update(&mut self, update: SssUpdate) -> Option<SssEvent> {
        // Peer types piggy-back: define a stub type if missing.
        self.types
            .entry(update.type_name.clone())
            .or_insert_with(|| TypeDef {
                name: update.type_name.clone(),
                schema: String::new(),
            });
        match self.vars.get_mut(&update.name) {
            Some(var) => {
                if (update.written_at, update.writer) <= (var.written_at, var.writer) {
                    return None; // stale
                }
                let was_timed_out = var.timed_out;
                let previous = var.value.clone();
                var.value = update.value.clone();
                var.written_at = update.written_at;
                var.writer = update.writer;
                var.timed_out = false;
                var.refresh_every = update.refresh_every;
                var.max_missing = update.max_missing;
                if was_timed_out {
                    Some(SssEvent::Revived {
                        name: update.name,
                        value: update.value,
                    })
                } else if previous != update.value {
                    Some(SssEvent::Changed {
                        name: update.name,
                        value: update.value,
                        previous: Some(previous),
                    })
                } else {
                    None
                }
            }
            None => {
                let var = Variable {
                    name: update.name.clone(),
                    type_name: update.type_name.clone(),
                    value: update.value.clone(),
                    refresh_every: update.refresh_every,
                    max_missing: update.max_missing,
                    written_at: update.written_at,
                    writer: update.writer,
                    timed_out: false,
                };
                self.vars.insert(update.name.clone(), var);
                Some(SssEvent::Changed {
                    name: update.name,
                    value: update.value,
                    previous: None,
                })
            }
        }
    }

    fn push_outbound(&mut self, var: &Variable) {
        self.outbound.push(SssUpdate {
            name: var.name.clone(),
            type_name: var.type_name.clone(),
            value: var.value.clone(),
            refresh_every: var.refresh_every,
            max_missing: var.max_missing,
            written_at: var.written_at,
            writer: var.writer,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn store() -> SoftStateStore {
        let mut s = SoftStateStore::new(StoreId(1));
        s.define_type("binary-sensor", "ON|OFF");
        s
    }

    #[test]
    fn create_requires_type_and_unique_name() {
        let mut s = store();
        assert!(matches!(
            s.create_var("x", "nope", "ON", SimDuration::from_secs(60), 3, t(0)),
            Err(SssError::UnknownType(_))
        ));
        s.create_var("x", "binary-sensor", "OFF", SimDuration::from_secs(60), 3, t(0))
            .unwrap();
        assert!(matches!(
            s.create_var("x", "binary-sensor", "OFF", SimDuration::from_secs(60), 3, t(0)),
            Err(SssError::VariableExists(_))
        ));
    }

    #[test]
    fn write_emits_change_only_on_new_value() {
        let mut s = store();
        s.create_var("x", "binary-sensor", "OFF", SimDuration::from_secs(60), 3, t(0))
            .unwrap();
        let ev = s.write("x", "ON", t(1)).unwrap();
        assert_eq!(
            ev,
            Some(SssEvent::Changed {
                name: "x".into(),
                value: "ON".into(),
                previous: Some("OFF".into())
            })
        );
        assert_eq!(s.write("x", "ON", t(2)).unwrap(), None);
        assert!(matches!(s.write("nope", "ON", t(3)), Err(SssError::UnknownVariable(_))));
    }

    #[test]
    fn timeout_fires_exactly_once_after_allowed_misses() {
        let mut s = store();
        // refresh every 10 s, 2 allowed misses → deadline at written+30 s.
        s.create_var("x", "binary-sensor", "ON", SimDuration::from_secs(10), 2, t(0))
            .unwrap();
        assert_eq!(s.read("x").unwrap().deadline(), t(30));
        assert!(s.check_timeouts(t(29)).is_empty());
        let evs = s.check_timeouts(t(30));
        assert_eq!(evs.len(), 1);
        assert!(matches!(&evs[0], SssEvent::TimedOut { name, last_value } if name == "x" && last_value == "ON"));
        // Only once.
        assert!(s.check_timeouts(t(31)).is_empty());
        assert!(s.read("x").unwrap().timed_out);
    }

    #[test]
    fn refresh_prevents_timeout_and_revives() {
        let mut s = store();
        s.create_var("x", "binary-sensor", "ON", SimDuration::from_secs(10), 2, t(0))
            .unwrap();
        s.refresh("x", t(25)).unwrap();
        assert!(s.check_timeouts(t(30)).is_empty()); // deadline moved to 55
        s.check_timeouts(t(55));
        assert!(s.read("x").unwrap().timed_out);
        let ev = s.refresh("x", t(60)).unwrap();
        assert!(matches!(ev, Some(SssEvent::Revived { .. })));
        assert!(!s.read("x").unwrap().timed_out);
    }

    #[test]
    fn write_to_timed_out_variable_revives() {
        let mut s = store();
        s.create_var("x", "binary-sensor", "ON", SimDuration::from_secs(10), 0, t(0))
            .unwrap();
        s.check_timeouts(t(10));
        let ev = s.write("x", "OFF", t(11)).unwrap();
        assert!(matches!(ev, Some(SssEvent::Revived { .. })));
    }

    #[test]
    fn replication_propagates_creates_and_writes() {
        let mut a = store();
        let mut b = SoftStateStore::new(StoreId(2));
        a.create_var("x", "binary-sensor", "OFF", SimDuration::from_secs(60), 3, t(0))
            .unwrap();
        a.write("x", "ON", t(1)).unwrap();
        let updates = a.take_outbound();
        assert_eq!(updates.len(), 2);
        let mut events = Vec::new();
        for u in updates {
            events.extend(b.apply_update(u));
        }
        assert_eq!(b.read("x").unwrap().value, "ON");
        // Create event then change event.
        assert_eq!(events.len(), 2);
        assert!(b.has_type("binary-sensor"));
    }

    #[test]
    fn stale_updates_are_ignored_lww() {
        let mut a = store();
        a.create_var("x", "binary-sensor", "NEW", SimDuration::from_secs(60), 3, t(10))
            .unwrap();
        a.take_outbound();
        let stale = SssUpdate {
            name: "x".into(),
            type_name: "binary-sensor".into(),
            value: "OLD".into(),
            refresh_every: SimDuration::from_secs(60),
            max_missing: 3,
            written_at: t(5),
            writer: StoreId(2),
        };
        assert_eq!(a.apply_update(stale), None);
        assert_eq!(a.read("x").unwrap().value, "NEW");
    }

    #[test]
    fn concurrent_writes_tie_break_by_writer_id() {
        let mut a = SoftStateStore::new(StoreId(1));
        let mut b = SoftStateStore::new(StoreId(2));
        for s in [&mut a, &mut b] {
            s.define_type("t", "");
        }
        a.create_var("x", "t", "from-a", SimDuration::from_secs(60), 3, t(7)).unwrap();
        b.create_var("x", "t", "from-b", SimDuration::from_secs(60), 3, t(7)).unwrap();
        let ua = a.take_outbound();
        let ub = b.take_outbound();
        for u in ub {
            a.apply_update(u);
        }
        for u in ua {
            b.apply_update(u);
        }
        // Same timestamp: the higher writer id wins on both replicas.
        assert_eq!(a.read("x").unwrap().value, "from-b");
        assert_eq!(b.read("x").unwrap().value, "from-b");
    }

    #[test]
    fn next_deadline_tracks_earliest_live_variable() {
        let mut s = store();
        assert_eq!(s.next_deadline(), None);
        s.create_var("a", "binary-sensor", "1", SimDuration::from_secs(10), 1, t(0)).unwrap();
        s.create_var("b", "binary-sensor", "1", SimDuration::from_secs(100), 1, t(0)).unwrap();
        assert_eq!(s.next_deadline(), Some(t(20)));
        s.check_timeouts(t(20));
        assert_eq!(s.next_deadline(), Some(t(200)));
    }

    #[test]
    fn event_variable_accessor() {
        let e = SssEvent::TimedOut { name: "v".into(), last_value: "x".into() };
        assert_eq!(e.variable(), "v");
    }
}
