//! `simba-sources` — the five alert services SIMBA integrates (§2, §5).
//!
//! Each service is a simulated substrate producing [`simba_core`]
//! `IncomingAlert`s; the evaluation harness wires them to MyAlertBuddy over
//! the `simba-net` channels:
//!
//! * [`proxy`] — the **information alert proxy** that polls web sites and
//!   alerts on changes to a keyword-delimited block (the Florida-recount /
//!   PlayStation 2 monitor of §5, experiment E2);
//! * [`webstore`] — **web store / community alert services**: private and
//!   shared data (photo albums) whose changes alert interested members;
//! * [`sss`] — the **Soft-State Store** daemon from the Aladdin system:
//!   typed variables with refresh frequencies and missing-refresh timeouts,
//!   change subscriptions, and multicast replication between PCs (§5);
//! * [`aladdin`] — the **Aladdin home networking system**: sensors on
//!   heterogeneous in-home networks (powerline/phoneline/RF/IR), the
//!   transceiver/monitor pipeline into the SSS, and alert generation for
//!   critical sensors and broken devices (experiment E3);
//! * [`wish`] — the **WISH wireless user-location service**: access points,
//!   an RF path-loss model, location estimation with confidence, and
//!   enter/leave/move alert subscriptions (experiment E4);
//! * [`assistant`] — the **desktop assistant** that watches idle time and
//!   forwards high-importance email/reminders as SMS alerts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aladdin;
pub mod assistant;
pub mod proxy;
pub mod sss;
pub mod webstore;
pub mod wish;
