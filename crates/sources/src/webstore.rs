//! Web store / community alert services (§2.2).
//!
//! "Web store alert services notify users when changes are made to their
//! private data or shared community data stored on the Web. ... when a new
//! photo is added to the shared community photo album, interested members
//! can receive an alert containing the URL, which they can click to see
//! the picture."

use simba_core::alert::{IncomingAlert, Urgency};
use simba_sim::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// A change to community content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreChange {
    /// A photo was added to an album.
    PhotoAdded {
        /// Album name.
        album: String,
        /// Photo file name.
        photo: String,
        /// Clickable URL.
        url: String,
    },
    /// A calendar entry was created.
    CalendarEntry {
        /// Calendar name.
        calendar: String,
        /// Entry title.
        title: String,
    },
    /// A member's private data changed (e.g. a payment check cashed).
    PrivateData {
        /// The member concerned.
        member: String,
        /// Description of the change.
        description: String,
    },
}

/// A password-protected community site with members, shared albums, and
/// calendars.
#[derive(Debug, Default)]
pub struct CommunitySite {
    name: String,
    members: BTreeSet<String>,
    albums: BTreeMap<String, Vec<String>>,
    calendars: BTreeMap<String, Vec<String>>,
    changes: Vec<(SimTime, StoreChange)>,
}

impl CommunitySite {
    /// Creates an empty community.
    pub fn new(name: impl Into<String>) -> Self {
        CommunitySite {
            name: name.into(),
            ..CommunitySite::default()
        }
    }

    /// The community name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a member. Idempotent.
    pub fn add_member(&mut self, member: impl Into<String>) {
        self.members.insert(member.into());
    }

    /// Whether `member` belongs to the community.
    pub fn is_member(&self, member: &str) -> bool {
        self.members.contains(member)
    }

    /// Adds a photo to an album (creating the album on first use) and
    /// records the change.
    pub fn add_photo(&mut self, album: impl Into<String>, photo: impl Into<String>, now: SimTime) {
        let album = album.into();
        let photo = photo.into();
        let url = format!("http://communities/{}/{}/{}", self.name, album, photo);
        self.albums.entry(album.clone()).or_default().push(photo.clone());
        self.changes.push((
            now,
            StoreChange::PhotoAdded { album, photo, url },
        ));
    }

    /// Adds a calendar entry and records the change.
    pub fn add_calendar_entry(
        &mut self,
        calendar: impl Into<String>,
        title: impl Into<String>,
        now: SimTime,
    ) {
        let calendar = calendar.into();
        let title = title.into();
        self.calendars.entry(calendar.clone()).or_default().push(title.clone());
        self.changes.push((now, StoreChange::CalendarEntry { calendar, title }));
    }

    /// Records a private-data change for a member.
    pub fn record_private_change(
        &mut self,
        member: impl Into<String>,
        description: impl Into<String>,
        now: SimTime,
    ) {
        self.changes.push((
            now,
            StoreChange::PrivateData {
                member: member.into(),
                description: description.into(),
            },
        ));
    }

    /// Photos in `album`.
    pub fn photos(&self, album: &str) -> &[String] {
        self.albums.get(album).map_or(&[], Vec::as_slice)
    }

    /// All recorded changes since `since` (exclusive).
    pub fn changes_since(&self, since: SimTime) -> impl Iterator<Item = &(SimTime, StoreChange)> {
        self.changes.iter().filter(move |(at, _)| *at > since)
    }
}

/// The web-store alert proxy: periodically sweeps a community site and
/// turns new changes into alerts for interested members (§2.2 uses the
/// alert-proxy mechanism for timely delivery).
#[derive(Debug)]
pub struct WebStoreMonitor {
    source_id: String,
    last_sweep: SimTime,
    alerts_generated: u64,
}

impl WebStoreMonitor {
    /// Creates a monitor sending alerts as `source_id`.
    pub fn new(source_id: impl Into<String>) -> Self {
        WebStoreMonitor {
            source_id: source_id.into(),
            last_sweep: SimTime::ZERO,
            alerts_generated: 0,
        }
    }

    /// Total alerts generated.
    pub fn alerts_generated(&self) -> u64 {
        self.alerts_generated
    }

    /// Sweeps `site` for changes since the previous sweep; one alert per
    /// change. Private-data changes are only visible as alerts for the
    /// member they concern, preserving the site's privacy model.
    pub fn sweep(&mut self, site: &CommunitySite, now: SimTime) -> Vec<IncomingAlert> {
        let mut alerts = Vec::new();
        for (at, change) in site.changes_since(self.last_sweep) {
            let (body, urgency) = match change {
                StoreChange::PhotoAdded { album, photo, url } => (
                    format!("New photo {photo} in album {album}: {url}"),
                    Urgency::Low,
                ),
                StoreChange::CalendarEntry { calendar, title } => (
                    format!("Calendar {calendar}: {title}"),
                    Urgency::Normal,
                ),
                StoreChange::PrivateData { member, description } => (
                    format!("[private:{member}] {description}"),
                    Urgency::Normal,
                ),
            };
            alerts.push(
                IncomingAlert::from_im(self.source_id.clone(), body, *at).with_urgency(urgency),
            );
        }
        self.last_sweep = now;
        self.alerts_generated += alerts.len() as u64;
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn membership() {
        let mut site = CommunitySite::new("hiking");
        site.add_member("alice");
        assert!(site.is_member("alice"));
        assert!(!site.is_member("bob"));
    }

    #[test]
    fn photo_alert_contains_clickable_url() {
        let mut site = CommunitySite::new("hiking");
        site.add_photo("summit-2001", "peak.jpg", t(10));
        let mut monitor = WebStoreMonitor::new("webstore-im");
        let alerts = monitor.sweep(&site, t(20));
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0]
            .body
            .contains("http://communities/hiking/summit-2001/peak.jpg"));
        assert_eq!(alerts[0].origin_timestamp, t(10));
        assert_eq!(site.photos("summit-2001"), ["peak.jpg".to_string()]);
    }

    #[test]
    fn sweep_is_incremental() {
        let mut site = CommunitySite::new("hiking");
        let mut monitor = WebStoreMonitor::new("webstore-im");
        site.add_photo("a", "1.jpg", t(5));
        assert_eq!(monitor.sweep(&site, t(10)).len(), 1);
        // Nothing new.
        assert!(monitor.sweep(&site, t(20)).is_empty());
        site.add_photo("a", "2.jpg", t(25));
        site.add_calendar_entry("events", "BBQ Saturday", t(26));
        let alerts = monitor.sweep(&site, t(30));
        assert_eq!(alerts.len(), 2);
        assert_eq!(monitor.alerts_generated(), 3);
    }

    #[test]
    fn private_changes_tagged_with_member() {
        let mut site = CommunitySite::new("bank");
        site.record_private_change("alice", "payment check cashed", t(1));
        let mut monitor = WebStoreMonitor::new("webstore-im");
        let alerts = monitor.sweep(&site, t(2));
        assert!(alerts[0].body.starts_with("[private:alice]"));
    }

    #[test]
    fn changes_since_boundary_is_exclusive() {
        let mut site = CommunitySite::new("c");
        site.add_photo("a", "1.jpg", t(10));
        assert_eq!(site.changes_since(t(10)).count(), 0);
        assert_eq!(site.changes_since(t(9)).count(), 1);
    }
}
