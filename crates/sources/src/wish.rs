//! The WISH wireless user-location service (§2.4, §5).
//!
//! "The WISH client software, running on the user's handheld device,
//! extracts from its RF wireless network card the identity of the Access
//! Point (AP) the device is connected to and the strength of the signals
//! received from the AP. It then sends that information along with the
//! user's name and activity status to a WISH server. The WISH server
//! maintains an RF signal propagation model and a table that maps each AP
//! to a physical location. ... the WISH system is able to determine the
//! user's real-time location to within a few meters. A confidence
//! percentage is associated with each estimate."
//!
//! Alerts fire "when the tracked person enters a building, moves to a
//! different part of the building, and/or leaves the building".

use crate::sss::{SoftStateStore, StoreId};
use simba_core::alert::{IncomingAlert, Urgency};
use simba_sim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

/// A 2-D position in metres.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate (m).
    pub x: f64,
    /// Y coordinate (m).
    pub y: f64,
}

impl Point {
    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// A wireless access point with its physical-location table entry.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessPoint {
    /// AP identifier (BSSID stand-in).
    pub id: String,
    /// Where the AP is mounted.
    pub position: Point,
    /// Building name.
    pub building: String,
    /// Area within the building ("2F-east").
    pub area: String,
}

/// The log-distance path-loss propagation model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioModel {
    /// Received power at 1 m, dBm.
    pub p0_dbm: f64,
    /// Path-loss exponent (≈2 free space, 3–4 indoors).
    pub exponent: f64,
    /// Log-normal shadowing sigma, dB.
    pub shadow_sigma: f64,
    /// Receive sensitivity floor, dBm — weaker APs are not heard.
    pub floor_dbm: f64,
}

impl Default for RadioModel {
    fn default() -> Self {
        RadioModel {
            p0_dbm: -32.0,
            exponent: 3.2,
            shadow_sigma: 4.0,
            floor_dbm: -90.0,
        }
    }
}

impl RadioModel {
    /// Samples the RSSI heard at distance `d` metres (with shadowing), or
    /// `None` if below the sensitivity floor.
    pub fn rssi(&self, d: f64, rng: &mut SimRng) -> Option<f64> {
        let d = d.max(1.0);
        let mean = self.p0_dbm - 10.0 * self.exponent * d.log10();
        let rssi = rng.normal(mean, self.shadow_sigma);
        (rssi >= self.floor_dbm).then_some(rssi)
    }

    /// Inverts the mean model: estimated distance for an observed RSSI.
    pub fn estimate_distance(&self, rssi: f64) -> f64 {
        10f64.powf((self.p0_dbm - rssi) / (10.0 * self.exponent))
    }
}

/// One client measurement: the connected AP and its signal strength.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The tracked user.
    pub user: String,
    /// AP the card is associated to (strongest heard).
    pub ap_id: String,
    /// RSSI in dBm.
    pub rssi: f64,
    /// The user's self-reported activity status.
    pub activity: String,
    /// When the client took the sample.
    pub taken_at: SimTime,
}

/// The WISH client: measures the radio environment at the user's true
/// position and reports the strongest AP.
#[derive(Debug, Clone)]
pub struct WishClient {
    /// The user this client tracks.
    pub user: String,
    /// Reporting period.
    pub report_every: SimDuration,
}

impl WishClient {
    /// Takes one measurement at `position`; `None` when no AP is audible
    /// (outdoors / out of range).
    pub fn measure(
        &self,
        position: Point,
        aps: &[AccessPoint],
        model: &RadioModel,
        activity: &str,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<Measurement> {
        let mut best: Option<(f64, &AccessPoint)> = None;
        for ap in aps {
            if let Some(rssi) = model.rssi(position.distance(ap.position), rng) {
                if best.is_none_or(|(b, _)| rssi > b) {
                    best = Some((rssi, ap));
                }
            }
        }
        best.map(|(rssi, ap)| Measurement {
            user: self.user.clone(),
            ap_id: ap.id.clone(),
            rssi,
            activity: activity.to_string(),
            taken_at: now,
        })
    }
}

/// A location estimate with its confidence percentage.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationEstimate {
    /// Building the user is in (`None` = outside all buildings).
    pub building: Option<String>,
    /// Area within the building.
    pub area: Option<String>,
    /// Estimated distance from the serving AP, metres.
    pub distance_m: f64,
    /// Confidence percentage in `[0, 100]`.
    pub confidence: f64,
}

/// A transition in a tracked user's location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocationEvent {
    /// The user entered a building.
    Entered {
        /// Who.
        user: String,
        /// Which building.
        building: String,
    },
    /// The user left a building.
    Left {
        /// Who.
        user: String,
        /// Which building.
        building: String,
    },
    /// The user moved to a different part of the same building.
    Moved {
        /// Who.
        user: String,
        /// The building.
        building: String,
        /// Previous area.
        from_area: String,
        /// New area.
        to_area: String,
    },
}

/// What a watcher subscribes to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocationTrigger {
    /// Fire when the tracked person enters the named building.
    Enter(String),
    /// Fire when the tracked person leaves the named building.
    Leave(String),
    /// Fire when the tracked person moves within the named building.
    MoveWithin(String),
}

/// One alert-service subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocationSubscription {
    /// The person being tracked (who controls dissemination — the WISH
    /// privacy stance).
    pub tracked: String,
    /// The watcher who receives the alert.
    pub watcher: String,
    /// The trigger condition.
    pub trigger: LocationTrigger,
}

/// The WISH server: AP table, propagation model, per-user soft state, and
/// the alert service. User locations live in a Soft-State Store ("each
/// user is represented by a soft-state variable", §5).
#[derive(Debug)]
pub struct WishServer {
    source_id: String,
    aps: Vec<AccessPoint>,
    model: RadioModel,
    /// Soft state: user → "building/area" strings with refresh timeouts.
    pub store: SoftStateStore,
    /// Last known (building, area) per user, for transition detection.
    last_zone: BTreeMap<String, Option<(String, String)>>,
    subscriptions: Vec<LocationSubscription>,
    /// Confidence below which updates are ignored (unreliable estimate).
    pub min_confidence: f64,
    alerts_generated: u64,
}

impl WishServer {
    /// Creates a server with the given AP map and propagation model.
    pub fn new(source_id: impl Into<String>, aps: Vec<AccessPoint>, model: RadioModel) -> Self {
        let mut store = SoftStateStore::new(StoreId(10));
        store.define_type("user-location", "building/area");
        WishServer {
            source_id: source_id.into(),
            aps,
            model,
            store,
            last_zone: BTreeMap::new(),
            subscriptions: Vec::new(),
            min_confidence: 20.0,
            alerts_generated: 0,
        }
    }

    /// The server's alert source identity.
    pub fn source_id(&self) -> &str {
        &self.source_id
    }

    /// The AP table.
    pub fn access_points(&self) -> &[AccessPoint] {
        &self.aps
    }

    /// The propagation model.
    pub fn model(&self) -> &RadioModel {
        &self.model
    }

    /// Total alerts generated.
    pub fn alerts_generated(&self) -> u64 {
        self.alerts_generated
    }

    /// Registers a tracking subscription.
    pub fn subscribe(&mut self, sub: LocationSubscription) {
        self.subscriptions.push(sub);
    }

    /// Estimates a location from one measurement.
    pub fn estimate(&self, m: &Measurement) -> LocationEstimate {
        let ap = self.aps.iter().find(|a| a.id == m.ap_id);
        let distance_m = self.model.estimate_distance(m.rssi);
        // Confidence decays with estimated distance: a user glued to the
        // AP is surely in its area; 40 m away the area is a guess.
        let confidence = (100.0 * (1.0 - distance_m / 40.0)).clamp(0.0, 100.0);
        match ap {
            Some(ap) => LocationEstimate {
                building: Some(ap.building.clone()),
                area: Some(ap.area.clone()),
                distance_m,
                confidence,
            },
            None => LocationEstimate {
                building: None,
                area: None,
                distance_m,
                confidence: 0.0,
            },
        }
    }

    /// Processes one client report: updates the soft state, detects
    /// transitions, and fires matching subscription alerts.
    pub fn report(&mut self, m: &Measurement) -> (LocationEstimate, Vec<IncomingAlert>) {
        let est = self.estimate(m);
        let mut alerts = Vec::new();
        if est.confidence < self.min_confidence && est.building.is_some() {
            // Too unsure to move the user; keep previous state.
            return (est, alerts);
        }

        let new_zone = est
            .building
            .clone()
            .zip(est.area.clone());
        let var = format!("user.{}", m.user);
        let value = match &new_zone {
            Some((b, a)) => format!("{b}/{a}"),
            None => "outside".to_string(),
        };
        if self.store.read(&var).is_none() {
            let _ = self.store.create_var(
                &var,
                "user-location",
                value.clone(),
                SimDuration::from_mins(2),
                2,
                m.taken_at,
            );
        } else {
            let _ = self.store.write(&var, value, m.taken_at);
        }

        let previous = self
            .last_zone
            .insert(m.user.clone(), new_zone.clone())
            .flatten();

        let events = transitions(&m.user, previous.as_ref(), new_zone.as_ref());
        for ev in &events {
            for alert in self.match_subscriptions(ev, m.taken_at) {
                alerts.push(alert);
            }
        }
        self.alerts_generated += alerts.len() as u64;
        (est, alerts)
    }

    /// A tracked user whose variable timed out is "gone" (device off /
    /// left the campus): treated as leaving their last building.
    pub fn check_timeouts(&mut self, now: SimTime) -> Vec<IncomingAlert> {
        let mut alerts = Vec::new();
        for ev in self.store.check_timeouts(now) {
            let name = ev.variable().to_string();
            let Some(user) = name.strip_prefix("user.") else {
                continue;
            };
            let user = user.to_string();
            if let Some(Some((building, _))) = self.last_zone.insert(user.clone(), None) {
                let left = LocationEvent::Left { user, building };
                for alert in self.match_subscriptions(&left, now) {
                    alerts.push(alert);
                }
            }
        }
        self.alerts_generated += alerts.len() as u64;
        alerts
    }

    fn match_subscriptions(&self, ev: &LocationEvent, at: SimTime) -> Vec<IncomingAlert> {
        let mut alerts = Vec::new();
        for sub in &self.subscriptions {
            let (user, fire, text) = match (ev, &sub.trigger) {
                (LocationEvent::Entered { user, building }, LocationTrigger::Enter(b)) => (
                    user,
                    building == b,
                    format!("{user} entered {building}"),
                ),
                (LocationEvent::Left { user, building }, LocationTrigger::Leave(b)) => {
                    (user, building == b, format!("{user} left {building}"))
                }
                (
                    LocationEvent::Moved { user, building, from_area, to_area },
                    LocationTrigger::MoveWithin(b),
                ) => (
                    user,
                    building == b,
                    format!("{user} moved {from_area} → {to_area} in {building}"),
                ),
                _ => continue,
            };
            if fire && &sub.tracked == user {
                alerts.push(
                    IncomingAlert::from_im(
                        self.source_id.clone(),
                        format!("[to:{}] {}", sub.watcher, text),
                        at,
                    )
                    .with_urgency(Urgency::Normal),
                );
            }
        }
        alerts
    }
}

fn transitions(
    user: &str,
    previous: Option<&(String, String)>,
    new: Option<&(String, String)>,
) -> Vec<LocationEvent> {
    match (previous, new) {
        (None, Some((b, _))) => vec![LocationEvent::Entered {
            user: user.to_string(),
            building: b.clone(),
        }],
        (Some((b, _)), None) => vec![LocationEvent::Left {
            user: user.to_string(),
            building: b.clone(),
        }],
        (Some((b1, a1)), Some((b2, a2))) if b1 == b2 && a1 != a2 => vec![LocationEvent::Moved {
            user: user.to_string(),
            building: b1.clone(),
            from_area: a1.clone(),
            to_area: a2.clone(),
        }],
        (Some((b1, _)), Some((b2, _))) if b1 != b2 => vec![
            LocationEvent::Left {
                user: user.to_string(),
                building: b1.clone(),
            },
            LocationEvent::Entered {
                user: user.to_string(),
                building: b2.clone(),
            },
        ],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aps() -> Vec<AccessPoint> {
        vec![
            AccessPoint {
                id: "ap-1".into(),
                position: Point { x: 0.0, y: 0.0 },
                building: "B31".into(),
                area: "1F-west".into(),
            },
            AccessPoint {
                id: "ap-2".into(),
                position: Point { x: 60.0, y: 0.0 },
                building: "B31".into(),
                area: "1F-east".into(),
            },
            AccessPoint {
                id: "ap-3".into(),
                position: Point { x: 500.0, y: 500.0 },
                building: "B40".into(),
                area: "lobby".into(),
            },
        ]
    }

    fn server() -> WishServer {
        let mut s = WishServer::new("wish-svc", aps(), RadioModel::default());
        s.min_confidence = 0.0; // deterministic tests control confidence explicitly
        s
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn measurement(user: &str, ap: &str, rssi: f64, secs: u64) -> Measurement {
        Measurement {
            user: user.into(),
            ap_id: ap.into(),
            rssi,
            activity: "active".into(),
            taken_at: t(secs),
        }
    }

    #[test]
    fn radio_model_monotone_in_distance() {
        let m = RadioModel::default();
        let mut rng = SimRng::new(1);
        let near: f64 = (0..200).filter_map(|_| m.rssi(2.0, &mut rng)).sum::<f64>() / 200.0;
        let far: f64 = (0..200).filter_map(|_| m.rssi(30.0, &mut rng)).sum::<f64>() / 200.0;
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn distance_estimate_inverts_mean_model() {
        let m = RadioModel::default();
        for d in [1.0f64, 5.0, 20.0, 50.0] {
            let rssi = m.p0_dbm - 10.0 * m.exponent * d.log10();
            let est = m.estimate_distance(rssi);
            assert!((est - d).abs() < 1e-9, "d={d} est={est}");
        }
    }

    #[test]
    fn client_picks_strongest_ap() {
        let client = WishClient { user: "bob".into(), report_every: SimDuration::from_secs(10) };
        let mut rng = SimRng::new(2);
        // Standing on top of ap-2.
        let m = client
            .measure(Point { x: 60.0, y: 0.0 }, &aps(), &RadioModel::default(), "active", t(0), &mut rng)
            .unwrap();
        assert_eq!(m.ap_id, "ap-2");
    }

    #[test]
    fn client_hears_nothing_far_away() {
        let client = WishClient { user: "bob".into(), report_every: SimDuration::from_secs(10) };
        let mut rng = SimRng::new(3);
        let m = client.measure(
            Point { x: 100_000.0, y: 100_000.0 },
            &aps(),
            &RadioModel::default(),
            "active",
            t(0),
            &mut rng,
        );
        assert!(m.is_none());
    }

    #[test]
    fn estimate_confidence_decays_with_distance() {
        let s = server();
        let strong = s.estimate(&measurement("bob", "ap-1", -35.0, 0));
        let weak = s.estimate(&measurement("bob", "ap-1", -80.0, 0));
        assert!(strong.confidence > weak.confidence);
        assert_eq!(strong.building.as_deref(), Some("B31"));
        assert!(strong.distance_m < weak.distance_m);
    }

    #[test]
    fn enter_move_leave_alert_flow() {
        let mut s = server();
        s.subscribe(LocationSubscription {
            tracked: "bob".into(),
            watcher: "alice".into(),
            trigger: LocationTrigger::Enter("B31".into()),
        });
        s.subscribe(LocationSubscription {
            tracked: "bob".into(),
            watcher: "alice".into(),
            trigger: LocationTrigger::MoveWithin("B31".into()),
        });
        s.subscribe(LocationSubscription {
            tracked: "bob".into(),
            watcher: "alice".into(),
            trigger: LocationTrigger::Leave("B31".into()),
        });

        // Enter via ap-1.
        let (_, alerts) = s.report(&measurement("bob", "ap-1", -40.0, 10));
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].body.contains("bob entered B31"));

        // Move to the east wing.
        let (_, alerts) = s.report(&measurement("bob", "ap-2", -40.0, 20));
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].body.contains("1F-west → 1F-east"));

        // Cross to another building: Leave B31 fires (Enter B40 has no sub).
        let (_, alerts) = s.report(&measurement("bob", "ap-3", -40.0, 30));
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].body.contains("bob left B31"));
        assert_eq!(s.alerts_generated(), 3);
    }

    #[test]
    fn same_area_reports_are_quiet() {
        let mut s = server();
        s.subscribe(LocationSubscription {
            tracked: "bob".into(),
            watcher: "alice".into(),
            trigger: LocationTrigger::MoveWithin("B31".into()),
        });
        s.report(&measurement("bob", "ap-1", -40.0, 10));
        let (_, alerts) = s.report(&measurement("bob", "ap-1", -45.0, 20));
        assert!(alerts.is_empty());
    }

    #[test]
    fn only_tracked_user_triggers_subscription() {
        let mut s = server();
        s.subscribe(LocationSubscription {
            tracked: "bob".into(),
            watcher: "alice".into(),
            trigger: LocationTrigger::Enter("B31".into()),
        });
        let (_, alerts) = s.report(&measurement("carol", "ap-1", -40.0, 10));
        assert!(alerts.is_empty());
    }

    #[test]
    fn low_confidence_reports_are_ignored() {
        let mut s = server();
        s.min_confidence = 50.0;
        s.subscribe(LocationSubscription {
            tracked: "bob".into(),
            watcher: "alice".into(),
            trigger: LocationTrigger::Enter("B31".into()),
        });
        // RSSI so weak the distance estimate is ~40 m → confidence ~0.
        let (est, alerts) = s.report(&measurement("bob", "ap-1", -85.0, 10));
        assert!(est.confidence < 50.0);
        assert!(alerts.is_empty());
    }

    #[test]
    fn stale_user_times_out_as_leave() {
        let mut s = server();
        s.subscribe(LocationSubscription {
            tracked: "bob".into(),
            watcher: "alice".into(),
            trigger: LocationTrigger::Leave("B31".into()),
        });
        s.report(&measurement("bob", "ap-1", -40.0, 10));
        // Variable refresh contract: 2 min period, 2 misses → dead at +6 min.
        let alerts = s.check_timeouts(t(10 + 6 * 60));
        assert_eq!(alerts.len(), 1);
        assert!(alerts[0].body.contains("bob left B31"));
    }

    #[test]
    fn soft_state_reflects_latest_zone() {
        let mut s = server();
        s.report(&measurement("bob", "ap-1", -40.0, 10));
        assert_eq!(s.store.read("user.bob").unwrap().value, "B31/1F-west");
        s.report(&measurement("bob", "ap-3", -40.0, 20));
        assert_eq!(s.store.read("user.bob").unwrap().value, "B40/lobby");
    }
}
