//! The Aladdin home networking system (§2.3, §5).
//!
//! Aladdin "integrates diverse devices and sensors attached to
//! heterogeneous in-home networks including powerline, phoneline, RF and
//! IR, and connects them to the Internet through a home gateway machine"
//! and "generates alerts when any critical sensor fires or when any
//! critical device fails".
//!
//! The §5 end-to-end scenario modelled here hop by hop: remote-control RF
//! signal → powerline transceiver → powerline monitor process on a PC →
//! local SSS write → multicast replication over phoneline Ethernet → SSS
//! on the home gateway → event to the Aladdin home server → IM alert.
//! The paper measured 11 s button-to-popup; most of it is the powerline
//! signalling and SSS propagation, which the per-hop latency model
//! reproduces.

use crate::sss::{SoftStateStore, SssEvent, StoreId};
use simba_core::alert::{IncomingAlert, Urgency};
use simba_sim::{SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;

/// The in-home network a device hangs off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HomeNetwork {
    /// X-10-style powerline signalling (slow, seconds per command).
    Powerline,
    /// Phoneline Ethernet (fast).
    Phoneline,
    /// Radio frequency (remote controls).
    Rf,
    /// Infrared (line-of-sight remotes).
    Ir,
}

/// A sensor or device in the home.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sensor {
    /// Unique id, also the SSS variable name suffix.
    pub id: String,
    /// Human-readable name used in alert text ("Basement Water Sensor").
    pub name: String,
    /// Which network it is attached to.
    pub network: HomeNetwork,
    /// Whether state changes alert the user.
    pub critical: bool,
    /// How often the device refreshes its SSS variable (battery heartbeat).
    pub heartbeat: SimDuration,
    /// Allowed missing heartbeats before the device is declared broken.
    pub max_missing: u32,
}

/// Per-hop latency means for the §5 signal chain. Each hop draws
/// log-normally around its median.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopLatencies {
    /// RF (or IR) signal pickup by the transceiver, seconds.
    pub rf_to_transceiver: f64,
    /// Powerline signalling of one command (X-10 is ~1–3 s), seconds.
    pub powerline_signal: f64,
    /// The monitor process polling/decoding the powerline frame, seconds.
    pub monitor_pickup: f64,
    /// Local SSS write + event dispatch, seconds.
    pub sss_update: f64,
    /// Multicast replication over phoneline Ethernet, seconds.
    pub replication: f64,
    /// Gateway SSS event → Aladdin home server processing, seconds.
    pub home_server: f64,
    /// Log-space sigma shared by all hops.
    pub sigma: f64,
}

impl Default for HopLatencies {
    /// Calibrated so the full chain sums to ≈ 8.3 s, which with ≈ 2.7 s of
    /// SIMBA routing (IM → MyAlertBuddy → IM) reproduces the paper's 11 s
    /// end-to-end mean (experiment E3).
    fn default() -> Self {
        HopLatencies {
            rf_to_transceiver: 0.3,
            powerline_signal: 2.2,
            monitor_pickup: 1.8,
            sss_update: 0.5,
            replication: 2.0,
            home_server: 1.2,
            sigma: 0.25,
        }
    }
}

/// One traversed hop: name and sampled latency.
pub type Hop = (&'static str, SimDuration);

/// The outcome of a sensor trigger propagating through the home.
#[derive(Debug, Clone)]
pub struct ChainResult {
    /// Each hop with its sampled latency, in order.
    pub hops: Vec<Hop>,
    /// Sum of all hop latencies (button press → home server alert-out).
    pub total: SimDuration,
    /// The alert the home server emits, if the sensor is critical.
    pub alert: Option<IncomingAlert>,
}

/// A remote home-automation command, received by email (§2.3: Aladdin
/// supports "secure, email-based remote home automation").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteCommand {
    /// Turn a device on or off: `SET <sensor-id> ON|OFF`.
    Set {
        /// Target device id.
        device: String,
        /// Desired state.
        on: bool,
    },
    /// Query a device's state: `GET <sensor-id>`.
    Get {
        /// Target device id.
        device: String,
    },
    /// List all devices: `LIST`.
    List,
}

impl RemoteCommand {
    /// Parses a command line from an authorized email body. Commands are
    /// case-insensitive on the verb, exact on the device id.
    pub fn parse(line: &str) -> Option<RemoteCommand> {
        let mut parts = line.split_whitespace();
        match parts.next()?.to_ascii_uppercase().as_str() {
            "SET" => {
                let device = parts.next()?.to_string();
                let state = parts.next()?.to_ascii_uppercase();
                let on = match state.as_str() {
                    "ON" => true,
                    "OFF" => false,
                    _ => return None,
                };
                parts.next().is_none().then_some(RemoteCommand::Set { device, on })
            }
            "GET" => {
                let device = parts.next()?.to_string();
                parts.next().is_none().then_some(RemoteCommand::Get { device })
            }
            "LIST" => parts.next().is_none().then_some(RemoteCommand::List),
            _ => None,
        }
    }
}

/// The simulated home: sensors, one monitor-PC SSS replica, one gateway
/// SSS replica, and the Aladdin home server's alerting rule.
#[derive(Debug)]
pub struct AladdinHome {
    source_id: String,
    sensors: BTreeMap<String, Sensor>,
    /// SSS replica on the PC running the powerline monitor.
    pub monitor_sss: SoftStateStore,
    /// SSS replica on the home gateway machine.
    pub gateway_sss: SoftStateStore,
    latencies: HopLatencies,
    alerts_generated: u64,
}

impl AladdinHome {
    /// Creates a home whose alerts originate from `source_id`.
    pub fn new(source_id: impl Into<String>, latencies: HopLatencies) -> Self {
        let mut monitor_sss = SoftStateStore::new(StoreId(1));
        let mut gateway_sss = SoftStateStore::new(StoreId(2));
        for s in [&mut monitor_sss, &mut gateway_sss] {
            s.define_type("binary-sensor", "ON|OFF");
        }
        AladdinHome {
            source_id: source_id.into(),
            sensors: BTreeMap::new(),
            monitor_sss,
            gateway_sss,
            latencies,
            alerts_generated: 0,
        }
    }

    /// The home's alert source identity.
    pub fn source_id(&self) -> &str {
        &self.source_id
    }

    /// Total alerts the home server emitted.
    pub fn alerts_generated(&self) -> u64 {
        self.alerts_generated
    }

    /// Installs a sensor and creates its SSS variable on both replicas.
    pub fn add_sensor(&mut self, sensor: Sensor, now: SimTime) {
        let var = format!("sensor.{}", sensor.id);
        self.monitor_sss
            .create_var(&var, "binary-sensor", "OFF", sensor.heartbeat, sensor.max_missing, now)
            .expect("type defined, unique sensor id");
        for update in self.monitor_sss.take_outbound() {
            self.gateway_sss.apply_update(update);
        }
        self.sensors.insert(sensor.id.clone(), sensor);
    }

    /// The registered sensors.
    pub fn sensors(&self) -> impl Iterator<Item = &Sensor> {
        self.sensors.values()
    }

    /// Fires a sensor (state `true` = ON) at `pressed_at` and walks the §5
    /// chain. The returned alert's origin timestamp is the *press* time, so
    /// downstream latency measurements are end-to-end.
    ///
    /// # Panics
    ///
    /// Panics for unknown sensor ids — scenario wiring errors.
    pub fn trigger_sensor(
        &mut self,
        id: &str,
        state: bool,
        pressed_at: SimTime,
        rng: &mut SimRng,
    ) -> ChainResult {
        let sensor = self.sensors.get(id).expect("sensor registered").clone();
        let l = self.latencies;
        let mut hops: Vec<Hop> = Vec::new();
        let mut sample = |name: &'static str, median: f64, hops: &mut Vec<Hop>| {
            let d = SimDuration::from_secs_f64(rng.lognormal(median.max(1e-3), l.sigma));
            hops.push((name, d));
            d
        };

        let mut total = SimDuration::ZERO;
        // RF/IR pickup only applies to wireless-originated signals.
        if matches!(sensor.network, HomeNetwork::Rf | HomeNetwork::Ir) {
            total += sample("rf-to-transceiver", l.rf_to_transceiver, &mut hops);
        }
        total += sample("powerline-signal", l.powerline_signal, &mut hops);
        total += sample("monitor-pickup", l.monitor_pickup, &mut hops);

        // The monitor PC writes its local SSS replica.
        let var = format!("sensor.{}", sensor.id);
        let value = if state { "ON" } else { "OFF" };
        let write_at = pressed_at + total;
        let changed = self
            .monitor_sss
            .write(&var, value, write_at)
            .expect("variable created with sensor");
        total += sample("sss-update", l.sss_update, &mut hops);

        // Multicast replication to the gateway replica.
        total += sample("replication", l.replication, &mut hops);
        let mut gateway_events = Vec::new();
        for update in self.monitor_sss.take_outbound() {
            gateway_events.extend(self.gateway_sss.apply_update(update));
        }

        // Home server turns gateway SSS events on critical sensors into alerts.
        total += sample("home-server", l.home_server, &mut hops);
        let alert = if sensor.critical && changed.is_some() && !gateway_events.is_empty() {
            self.alerts_generated += 1;
            Some(
                IncomingAlert::from_im(
                    self.source_id.clone(),
                    format!("{} Sensor {}", sensor.name, value),
                    pressed_at,
                )
                .with_urgency(Urgency::Critical),
            )
        } else {
            None
        };

        ChainResult { hops, total, alert }
    }

    /// Executes a remote command from an *authorized* sender (the caller
    /// performs authorization — in SIMBA the command arrives through
    /// MyAlertBuddy, which already filters accepted sources). Returns the
    /// confirmation text to mail back, plus the sensor-trigger result if
    /// the command changed device state.
    pub fn execute_remote(
        &mut self,
        command: &RemoteCommand,
        now: SimTime,
        rng: &mut SimRng,
    ) -> (String, Option<ChainResult>) {
        match command {
            RemoteCommand::Set { device, on } => {
                if !self.sensors.contains_key(device) {
                    return (format!("ERROR: unknown device {device:?}"), None);
                }
                let result = self.trigger_sensor(device, *on, now, rng);
                (
                    format!(
                        "OK: {} set to {} (took {})",
                        device,
                        if *on { "ON" } else { "OFF" },
                        result.total
                    ),
                    Some(result),
                )
            }
            RemoteCommand::Get { device } => {
                let var = format!("sensor.{device}");
                match self.gateway_sss.read(&var) {
                    Some(v) => {
                        let liveness = if v.timed_out { " (BROKEN: missing heartbeats)" } else { "" };
                        (format!("{device} = {}{liveness}", v.value), None)
                    }
                    None => (format!("ERROR: unknown device {device:?}"), None),
                }
            }
            RemoteCommand::List => {
                let mut lines: Vec<String> = self
                    .sensors
                    .values()
                    .map(|s| {
                        format!(
                            "{} ({}){}",
                            s.id,
                            s.name,
                            if s.critical { " [critical]" } else { "" }
                        )
                    })
                    .collect();
                lines.sort();
                (lines.join("\n"), None)
            }
        }
    }

    /// A device heartbeat: the sensor refreshes its SSS variable.
    pub fn heartbeat(&mut self, id: &str, now: SimTime) {
        let var = format!("sensor.{id}");
        let _ = self.monitor_sss.refresh(&var, now);
        for update in self.monitor_sss.take_outbound() {
            self.gateway_sss.apply_update(update);
        }
    }

    /// Sweeps for device failures (missing heartbeats) at `now`: one
    /// "Sensor Broken" alert per newly timed-out critical device — the
    /// §2.3 "Garage Door Sensor Broken" scenario.
    pub fn check_device_health(&mut self, now: SimTime) -> Vec<IncomingAlert> {
        let events = self.gateway_sss.check_timeouts(now);
        // Keep the monitor replica's view consistent.
        self.monitor_sss.check_timeouts(now);
        let mut alerts = Vec::new();
        for ev in events {
            let SssEvent::TimedOut { name, .. } = ev else {
                continue;
            };
            let Some(id) = name.strip_prefix("sensor.") else {
                continue;
            };
            let Some(sensor) = self.sensors.get(id) else {
                continue;
            };
            if sensor.critical {
                self.alerts_generated += 1;
                alerts.push(
                    IncomingAlert::from_im(
                        self.source_id.clone(),
                        format!("{} Sensor Broken", sensor.name),
                        now,
                    )
                    .with_urgency(Urgency::Critical),
                );
            }
        }
        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn security_remote() -> Sensor {
        Sensor {
            id: "security-disarm".into(),
            name: "Security Disarm".into(),
            network: HomeNetwork::Rf,
            critical: true,
            heartbeat: SimDuration::from_mins(10),
            max_missing: 3,
        }
    }

    fn water_sensor() -> Sensor {
        Sensor {
            id: "basement-water".into(),
            name: "Basement Water".into(),
            network: HomeNetwork::Powerline,
            critical: true,
            heartbeat: SimDuration::from_mins(10),
            max_missing: 3,
        }
    }

    fn home() -> AladdinHome {
        let mut h = AladdinHome::new("aladdin-gw", HopLatencies::default());
        h.add_sensor(security_remote(), t(0));
        h.add_sensor(water_sensor(), t(0));
        h
    }

    #[test]
    fn rf_trigger_walks_all_six_hops() {
        let mut h = home();
        let mut rng = SimRng::new(1);
        let r = h.trigger_sensor("security-disarm", true, t(100), &mut rng);
        let names: Vec<&str> = r.hops.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "rf-to-transceiver",
                "powerline-signal",
                "monitor-pickup",
                "sss-update",
                "replication",
                "home-server"
            ]
        );
        let alert = r.alert.expect("critical sensor alerts");
        assert_eq!(alert.body, "Security Disarm Sensor ON");
        assert_eq!(alert.origin_timestamp, t(100));
        assert_eq!(alert.urgency, Urgency::Critical);
    }

    #[test]
    fn powerline_sensor_skips_rf_hop() {
        let mut h = home();
        let mut rng = SimRng::new(2);
        let r = h.trigger_sensor("basement-water", true, t(0), &mut rng);
        assert_eq!(r.hops.len(), 5);
        assert_ne!(r.hops[0].0, "rf-to-transceiver");
    }

    #[test]
    fn chain_latency_centers_near_ten_seconds() {
        // The calibration behind experiment E3 (11 s including ~1 s IM).
        let mut rng = SimRng::new(3);
        let mut sum = 0.0;
        let n = 300;
        for i in 0..n {
            let mut h = home();
            let r = h.trigger_sensor("security-disarm", i % 2 == 0, t(i), &mut rng);
            sum += r.total.as_secs_f64();
        }
        let mean = sum / n as f64;
        assert!((7.0..9.5).contains(&mean), "mean chain latency {mean}");
    }

    #[test]
    fn unchanged_state_produces_no_alert() {
        let mut h = home();
        let mut rng = SimRng::new(4);
        assert!(h.trigger_sensor("basement-water", true, t(0), &mut rng).alert.is_some());
        // Same state again: SSS write is not a change → no alert.
        assert!(h.trigger_sensor("basement-water", true, t(10), &mut rng).alert.is_none());
        // Back to OFF: change → alert.
        let r = h.trigger_sensor("basement-water", false, t(20), &mut rng);
        assert_eq!(r.alert.unwrap().body, "Basement Water Sensor OFF");
    }

    #[test]
    fn non_critical_sensor_stays_silent() {
        let mut h = home();
        h.add_sensor(
            Sensor {
                id: "hallway-light".into(),
                name: "Hallway Light".into(),
                network: HomeNetwork::Powerline,
                critical: false,
                heartbeat: SimDuration::from_mins(10),
                max_missing: 3,
            },
            t(0),
        );
        let mut rng = SimRng::new(5);
        let r = h.trigger_sensor("hallway-light", true, t(0), &mut rng);
        assert!(r.alert.is_none());
        assert_eq!(h.alerts_generated(), 0);
    }

    #[test]
    fn missing_heartbeats_break_the_device() {
        let mut h = home();
        // heartbeat 10 min, 3 misses → broken at t = 40 min.
        assert!(h.check_device_health(t(30 * 60)).is_empty());
        let alerts = h.check_device_health(t(40 * 60));
        // Both critical sensors break simultaneously (no heartbeats at all).
        assert_eq!(alerts.len(), 2);
        assert!(alerts.iter().any(|a| a.body == "Basement Water Sensor Broken"));
        // Reported once.
        assert!(h.check_device_health(t(41 * 60)).is_empty());
    }

    #[test]
    fn heartbeats_keep_devices_alive() {
        let mut h = home();
        for m in (0..=6).map(|i| i * 10) {
            h.heartbeat("basement-water", t(m * 60));
            h.heartbeat("security-disarm", t(m * 60));
        }
        assert!(h.check_device_health(t(60 * 60)).is_empty());
    }

    #[test]
    fn remote_command_parsing() {
        assert_eq!(
            RemoteCommand::parse("SET porch-light ON"),
            Some(RemoteCommand::Set { device: "porch-light".into(), on: true })
        );
        assert_eq!(
            RemoteCommand::parse("set porch-light off"),
            Some(RemoteCommand::Set { device: "porch-light".into(), on: false })
        );
        assert_eq!(
            RemoteCommand::parse("GET basement-water"),
            Some(RemoteCommand::Get { device: "basement-water".into() })
        );
        assert_eq!(RemoteCommand::parse("LIST"), Some(RemoteCommand::List));
        assert_eq!(RemoteCommand::parse("SET x MAYBE"), None);
        assert_eq!(RemoteCommand::parse("SET x ON extra"), None);
        assert_eq!(RemoteCommand::parse("DANCE"), None);
        assert_eq!(RemoteCommand::parse(""), None);
    }

    #[test]
    fn remote_set_triggers_the_device_and_confirms() {
        let mut h = home();
        let mut rng = SimRng::new(11);
        let (reply, result) = h.execute_remote(
            &RemoteCommand::Set { device: "basement-water".into(), on: true },
            t(100),
            &mut rng,
        );
        assert!(reply.starts_with("OK: basement-water set to ON"), "{reply}");
        assert!(result.expect("state changed").alert.is_some());
        assert_eq!(h.gateway_sss.read("sensor.basement-water").unwrap().value, "ON");
    }

    #[test]
    fn remote_get_and_list() {
        let mut h = home();
        let mut rng = SimRng::new(12);
        let (reply, _) = h.execute_remote(
            &RemoteCommand::Get { device: "basement-water".into() },
            t(1),
            &mut rng,
        );
        assert_eq!(reply, "basement-water = OFF");
        let (reply, _) = h.execute_remote(&RemoteCommand::List, t(2), &mut rng);
        assert!(reply.contains("basement-water (Basement Water) [critical]"), "{reply}");
        assert!(reply.contains("security-disarm"), "{reply}");
        let (reply, _) = h.execute_remote(
            &RemoteCommand::Get { device: "toaster".into() },
            t(3),
            &mut rng,
        );
        assert!(reply.starts_with("ERROR"), "{reply}");
    }

    #[test]
    fn remote_get_reports_broken_devices() {
        let mut h = home();
        let mut rng = SimRng::new(13);
        h.check_device_health(t(40 * 60)); // all heartbeats missed
        let (reply, _) = h.execute_remote(
            &RemoteCommand::Get { device: "basement-water".into() },
            t(41 * 60),
            &mut rng,
        );
        assert!(reply.contains("BROKEN"), "{reply}");
    }

    #[test]
    fn replicas_agree_after_trigger() {
        let mut h = home();
        let mut rng = SimRng::new(6);
        h.trigger_sensor("basement-water", true, t(0), &mut rng);
        assert_eq!(h.monitor_sss.read("sensor.basement-water").unwrap().value, "ON");
        assert_eq!(h.gateway_sss.read("sensor.basement-water").unwrap().value, "ON");
    }
}
