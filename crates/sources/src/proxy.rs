//! The information alert proxy (§2.1).
//!
//! "For Web sites that provide interesting information but do not yet
//! support alert services, we use an alert proxy to generate alerts for
//! them. For each Web site, the user specifies the URL, the polling
//! frequency, the starting and ending keywords enclosing the interesting
//! block of information. The alert proxy periodically polls the site and
//! generates an alert when the interesting block changes." The §5 workload
//! monitored the Florida-recount numbers and PlayStation 2 availability.

use simba_core::alert::{IncomingAlert, Urgency};
use simba_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// A simulated web site: a URL with mutable page content.
#[derive(Debug, Clone, Default)]
pub struct WebSite {
    pages: BTreeMap<String, String>,
}

impl WebSite {
    /// An empty site collection.
    pub fn new() -> Self {
        WebSite::default()
    }

    /// Publishes (or replaces) the page at `url`.
    pub fn publish(&mut self, url: impl Into<String>, content: impl Into<String>) {
        self.pages.insert(url.into(), content.into());
    }

    /// Fetches the page at `url`, if it exists.
    pub fn fetch(&self, url: &str) -> Option<&str> {
        self.pages.get(url).map(String::as_str)
    }
}

/// One proxy watch: URL + keyword-delimited block + poll cadence.
#[derive(Debug, Clone)]
pub struct Watch {
    /// The page to poll.
    pub url: String,
    /// Keyword starting the interesting block.
    pub start_keyword: String,
    /// Keyword ending the interesting block.
    pub end_keyword: String,
    /// Poll period.
    pub poll_every: SimDuration,
    /// Urgency of generated alerts.
    pub urgency: Urgency,
}

/// Outcome of one poll of one watch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PollOutcome {
    /// Block unchanged (or first observation).
    Unchanged,
    /// Block changed: an alert was generated.
    Alert(IncomingAlert),
    /// The page was unreachable.
    FetchFailed,
    /// Keywords no longer match the page layout.
    BlockMissing,
}

/// The alert proxy: polls watches and diffs their blocks.
#[derive(Debug)]
pub struct AlertProxy {
    /// The IM/email identity this proxy uses as its alert source id.
    source_id: String,
    watches: Vec<Watch>,
    /// Last seen block per URL.
    last_blocks: BTreeMap<String, String>,
    alerts_generated: u64,
    polls: u64,
}

impl AlertProxy {
    /// Creates a proxy sending alerts as `source_id`.
    pub fn new(source_id: impl Into<String>) -> Self {
        AlertProxy {
            source_id: source_id.into(),
            watches: Vec::new(),
            last_blocks: BTreeMap::new(),
            alerts_generated: 0,
            polls: 0,
        }
    }

    /// The proxy's alert source identity.
    pub fn source_id(&self) -> &str {
        &self.source_id
    }

    /// Registers a watch.
    pub fn add_watch(&mut self, watch: Watch) {
        self.watches.push(watch);
    }

    /// The registered watches.
    pub fn watches(&self) -> &[Watch] {
        &self.watches
    }

    /// Total alerts generated.
    pub fn alerts_generated(&self) -> u64 {
        self.alerts_generated
    }

    /// Total polls performed.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Polls the watch at `index` against `site` at time `now`.
    ///
    /// The first successful observation primes the baseline without
    /// alerting (the user asked to be told about *changes*).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn poll(&mut self, index: usize, site: &WebSite, now: SimTime) -> PollOutcome {
        self.polls += 1;
        let watch = &self.watches[index];
        let Some(page) = site.fetch(&watch.url) else {
            return PollOutcome::FetchFailed;
        };
        let Some(block) = extract_block(page, &watch.start_keyword, &watch.end_keyword) else {
            return PollOutcome::BlockMissing;
        };
        let block = block.trim().to_string();
        match self.last_blocks.insert(watch.url.clone(), block.clone()) {
            None => PollOutcome::Unchanged, // primed
            Some(prev) if prev == block => PollOutcome::Unchanged,
            Some(_) => {
                self.alerts_generated += 1;
                let alert = IncomingAlert::from_im(
                    self.source_id.clone(),
                    format!("{} changed: {}", watch.url, block),
                    now,
                )
                .with_urgency(watch.urgency);
                PollOutcome::Alert(alert)
            }
        }
    }
}

/// Extracts the text strictly between the first `start` and the next `end`.
fn extract_block<'a>(page: &'a str, start: &str, end: &str) -> Option<&'a str> {
    let s = page.find(start)? + start.len();
    let rest = &page[s..];
    let e = rest.find(end)?;
    Some(&rest[..e])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn florida_watch() -> Watch {
        Watch {
            url: "http://election/fl".into(),
            start_keyword: "<recount>".into(),
            end_keyword: "</recount>".into(),
            poll_every: SimDuration::from_secs(30),
            urgency: Urgency::Normal,
        }
    }

    fn setup() -> (AlertProxy, WebSite) {
        let mut proxy = AlertProxy::new("proxy-im");
        proxy.add_watch(florida_watch());
        let mut site = WebSite::new();
        site.publish("http://election/fl", "header <recount> Bush +537 </recount> footer");
        (proxy, site)
    }

    #[test]
    fn extract_block_basics() {
        assert_eq!(extract_block("a [x] b", "[", "]"), Some("x"));
        assert_eq!(extract_block("no markers", "[", "]"), None);
        assert_eq!(extract_block("open [ but no close", "[", "]"), None);
        assert_eq!(extract_block("[first][second]", "[", "]"), Some("first"));
    }

    #[test]
    fn first_poll_primes_without_alert() {
        let (mut proxy, site) = setup();
        assert_eq!(proxy.poll(0, &site, t(0)), PollOutcome::Unchanged);
        assert_eq!(proxy.alerts_generated(), 0);
    }

    #[test]
    fn change_generates_alert_with_block_content() {
        let (mut proxy, mut site) = setup();
        proxy.poll(0, &site, t(0));
        site.publish("http://election/fl", "header <recount> Bush +327 </recount> footer");
        let out = proxy.poll(0, &site, t(30));
        let PollOutcome::Alert(alert) = out else {
            panic!("expected alert, got {out:?}")
        };
        assert!(alert.body.contains("Bush +327"));
        assert_eq!(alert.source, "proxy-im");
        assert_eq!(alert.origin_timestamp, t(30));
        assert_eq!(proxy.alerts_generated(), 1);
    }

    #[test]
    fn unchanged_block_stays_quiet_even_if_page_moves() {
        let (mut proxy, mut site) = setup();
        proxy.poll(0, &site, t(0));
        // Footer changes but the block does not.
        site.publish("http://election/fl", "NEW header <recount> Bush +537 </recount> NEW footer");
        assert_eq!(proxy.poll(0, &site, t(30)), PollOutcome::Unchanged);
    }

    #[test]
    fn whitespace_only_changes_are_ignored() {
        let (mut proxy, mut site) = setup();
        proxy.poll(0, &site, t(0));
        site.publish("http://election/fl", "header <recount>   Bush +537\n</recount> footer");
        assert_eq!(proxy.poll(0, &site, t(30)), PollOutcome::Unchanged);
    }

    #[test]
    fn missing_page_and_missing_block_reported() {
        let (mut proxy, mut site) = setup();
        assert_eq!(
            proxy.poll(0, &WebSite::new(), t(0)),
            PollOutcome::FetchFailed
        );
        site.publish("http://election/fl", "layout changed entirely");
        assert_eq!(proxy.poll(0, &site, t(30)), PollOutcome::BlockMissing);
    }

    #[test]
    fn multiple_watches_are_independent() {
        let (mut proxy, mut site) = setup();
        proxy.add_watch(Watch {
            url: "http://shop/ps2".into(),
            start_keyword: "stock:".into(),
            end_keyword: ";".into(),
            poll_every: SimDuration::from_secs(60),
            urgency: Urgency::Critical,
        });
        site.publish("http://shop/ps2", "stock: none;");
        proxy.poll(0, &site, t(0));
        proxy.poll(1, &site, t(0));
        site.publish("http://shop/ps2", "stock: PlayStation2 AVAILABLE;");
        let out = proxy.poll(1, &site, t(60));
        let PollOutcome::Alert(alert) = out else {
            panic!("expected alert")
        };
        assert!(alert.body.contains("AVAILABLE"));
        assert_eq!(alert.urgency, Urgency::Critical);
        // Watch 0 unaffected.
        assert_eq!(proxy.poll(0, &site, t(60)), PollOutcome::Unchanged);
        assert_eq!(proxy.polls(), 4);
    }
}
