//! Fixture-driven tests: each rule must fire on a minimal offending
//! source with the right rule id and `file:line`, and must stay quiet on
//! the corresponding clean shape. Fixtures are inline string constants —
//! string literals don't produce code tokens, so the analyzer's own
//! workspace self-scan never trips over them.

use simba_analyze::diag::Finding;
use simba_analyze::rules;
use simba_analyze::scan::{scan_source, ApiKind};
use simba_analyze::workspace::SourceFile;
use std::path::PathBuf;

/// Runs the full per-file pipeline (scan → rules → suppressions) the way
/// `check_workspace` does, for a fixture "file" of the given crate.
fn findings_for(crate_name: &str, rel_path: &str, source: &str) -> Vec<Finding> {
    let file = SourceFile {
        rel_path: rel_path.to_string(),
        abs_path: PathBuf::from(rel_path),
        crate_name: crate_name.to_string(),
        is_test_file: false,
        is_crate_root: false,
    };
    let facts = scan_source(source, false);
    let mut found = rules::file_findings(&file, &facts);
    found.extend(rules::forbid_unsafe_finding(&file, &facts));
    rules::apply_suppressions(found, &facts.suppressions)
}

fn rules_fired(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- hygiene

#[test]
fn unwrap_in_core_fires_with_location() {
    let src = "fn f() {\n    let x = y.unwrap();\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    assert_eq!(rules_fired(&findings), vec!["hygiene.unwrap"]);
    assert_eq!(findings[0].file, "crates/core/src/fixture.rs");
    assert_eq!(findings[0].line, 2);
}

#[test]
fn expect_in_gateway_fires_but_not_in_cli() {
    let src = "fn f() {\n    y.expect(\"boom\");\n}\n";
    let gw = findings_for("gateway", "crates/gateway/src/fixture.rs", src);
    assert_eq!(rules_fired(&gw), vec!["hygiene.unwrap"]);
    assert_eq!(gw[0].line, 2);
    // The CLI is not on the dependability-critical list.
    let cli = findings_for("cli", "crates/cli/src/fixture.rs", src);
    assert!(cli.is_empty(), "unexpected: {cli:?}");
}

#[test]
fn unwrap_inside_test_module_is_fine() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn sleep_in_async_fires_with_location() {
    let src = "async fn f() {\n    std::thread::sleep(d);\n}\nfn g() {\n    std::thread::sleep(d);\n}\n";
    let findings = findings_for("runtime", "crates/runtime/src/fixture.rs", src);
    assert_eq!(rules_fired(&findings), vec!["hygiene.sleep-in-async"]);
    assert_eq!(findings[0].line, 2, "only the async-context sleep flags");
}

#[test]
fn unbounded_channel_fires_outside_sim_only() {
    let src = "fn f() {\n    let (tx, rx) = tokio::sync::mpsc::unbounded_channel();\n}\n";
    let runtime = findings_for("runtime", "crates/runtime/src/fixture.rs", src);
    assert_eq!(rules_fired(&runtime), vec!["hygiene.unbounded-channel"]);
    assert_eq!(runtime[0].line, 2);
    let sim = findings_for("sim", "crates/sim/src/fixture.rs", src);
    assert!(sim.is_empty(), "sim models unbounded queues on purpose: {sim:?}");
}

#[test]
fn crate_root_without_forbid_unsafe_fires() {
    let file = SourceFile {
        rel_path: "crates/demo/src/lib.rs".to_string(),
        abs_path: PathBuf::from("crates/demo/src/lib.rs"),
        crate_name: "demo".to_string(),
        is_test_file: false,
        is_crate_root: true,
    };
    let facts = scan_source("pub fn f() {}\n", false);
    let finding = rules::forbid_unsafe_finding(&file, &facts).expect("must fire");
    assert_eq!(finding.rule, "hygiene.forbid-unsafe");

    let facts = scan_source("#![forbid(unsafe_code)]\npub fn f() {}\n", false);
    assert!(rules::forbid_unsafe_finding(&file, &facts).is_none());
}

// -------------------------------------------------------------- telemetry

#[test]
fn unregistered_point_fires_with_location() {
    let src = "fn f(t: &Telemetry) {\n    t.metrics().counter(\"mab.nonexistent_thing\").incr();\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    assert_eq!(rules_fired(&findings), vec!["telemetry.unknown-point"]);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn misspelled_point_suggests_the_registered_name() {
    // One deletion away from the registered `mab.routed`.
    let src = "fn f(t: &Telemetry) {\n    t.metrics().counter(\"mab.routd\").incr();\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    assert_eq!(rules_fired(&findings), vec!["telemetry.misspelled-point"]);
    assert_eq!(findings[0].line, 2);
    assert!(
        findings[0].help.as_deref().unwrap_or("").contains("mab.routed"),
        "help should name the near-miss: {:?}",
        findings[0].help
    );
}

#[test]
fn drifted_plural_of_registered_singular_is_a_misspelling() {
    // The exact drift this PR collapsed: event `client.restart` vs a
    // counter registered under a pluralized name.
    let src = "fn f(t: &Telemetry) {\n    t.metrics().counter(\"client.restarts\").incr();\n}\n";
    let findings = findings_for("client", "crates/client/src/fixture.rs", src);
    assert_eq!(rules_fired(&findings), vec!["telemetry.misspelled-point"]);
}

#[test]
fn kind_mismatch_fires() {
    // `mab.routed` is registered event+counter; using it as a gauge is a
    // contract violation.
    let src = "fn f(t: &Telemetry) {\n    t.metrics().gauge(\"mab.routed\").set(1);\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    assert_eq!(rules_fired(&findings), vec!["telemetry.kind-mismatch"]);
    assert_eq!(findings[0].line, 2);
}

#[test]
fn naming_rules_fire_for_shape_and_scope() {
    // Registered-looking but not snake_case → shape violation (it is also
    // unregistered; both the registry and the convention complain).
    let src = "fn f(t: &Telemetry) {\n    t.metrics().counter(\"mab.BadName\").incr();\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    assert!(
        rules_fired(&findings).contains(&"telemetry.naming"),
        "shape violation must fire: {findings:?}"
    );

    // Well-formed and registered, but `core` does not declare `gateway.`.
    let src = "fn f(t: &Telemetry) {\n    t.metrics().counter(\"gateway.accepted\").incr();\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    assert_eq!(rules_fired(&findings), vec!["telemetry.naming"]);
    assert!(findings[0].message.contains("gateway.accepted"));
}

#[test]
fn test_code_may_use_throwaway_names() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { m.counter(\"x\").incr(); }\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn unemitted_point_fires_for_dead_registry_entries() {
    use simba_telemetry::points;
    // Every registered point is "emitted" except wal.appends.
    let sites: Vec<(String, ApiKind, bool)> = points::POINTS
        .iter()
        .filter(|d| d.name != "wal.appends")
        .map(|d| (d.name.to_string(), ApiKind::Counter, false))
        .collect();
    let findings = rules::unemitted_points(&sites, None, "crates/telemetry/src/points.rs");
    assert_eq!(rules_fired(&findings), vec!["telemetry.unemitted-point"]);
    assert!(findings[0].message.contains("wal.appends"));
    assert_eq!(findings[0].file, "crates/telemetry/src/points.rs");
}

#[test]
fn dynamic_scope_points_accept_test_only_references() {
    use simba_telemetry::points;
    // net.* names are built at runtime (`net.{channel}.{suffix}`): a
    // test-only assertion is the only literal reference, and it counts.
    let sites: Vec<(String, ApiKind, bool)> = points::POINTS
        .iter()
        .map(|d| {
            let in_test_only = d.scope == "net";
            (d.name.to_string(), ApiKind::Counter, in_test_only)
        })
        .collect();
    let findings = rules::unemitted_points(&sites, None, "crates/telemetry/src/points.rs");
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// ------------------------------------------------------------ suppression

#[test]
fn suppression_with_reason_silences_the_finding() {
    let src = "fn f() {\n    // simba-analyze: allow(hygiene.unwrap): fixture knows best\n    y.unwrap();\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "unexpected: {findings:?}");

    // Trailing (same-line) form.
    let src = "fn f() {\n    y.unwrap(); // simba-analyze: allow(hygiene.unwrap): fixture knows best\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn suppression_without_reason_is_itself_a_finding() {
    let src = "fn f() {\n    y.unwrap(); // simba-analyze: allow(hygiene.unwrap)\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    let mut fired = rules_fired(&findings);
    fired.sort_unstable();
    // The reasonless directive does not suppress, and is reported itself.
    assert_eq!(fired, vec!["hygiene.unwrap", "suppression.missing-reason"]);
}

#[test]
fn suppression_naming_unknown_rule_is_a_finding() {
    let src = "fn f() {\n    // simba-analyze: allow(hygiene.unwrp): typo in the rule id\n    y.unwrap();\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    let mut fired = rules_fired(&findings);
    fired.sort_unstable();
    assert_eq!(fired, vec!["hygiene.unwrap", "suppression.unknown-rule"]);
}

#[test]
fn suppression_does_not_cover_other_rules_or_far_lines() {
    let src = "fn f() {\n    // simba-analyze: allow(hygiene.sleep-in-async): wrong rule\n    y.unwrap();\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    assert_eq!(rules_fired(&findings), vec!["hygiene.unwrap"]);

    let src = "fn f() {\n    // simba-analyze: allow(hygiene.unwrap): too far away\n\n\n    y.unwrap();\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    assert_eq!(rules_fired(&findings), vec!["hygiene.unwrap"]);
}

#[test]
fn same_line_directive_takes_precedence_over_line_above() {
    // Both placements are legal; when both exist the finding is covered
    // (each directive is judged on its own merits — the same-line one
    // matches, the line-above one also matches, nothing double-fires).
    let src = "fn f() {\n    // simba-analyze: allow(hygiene.unwrap): above\n    y.unwrap(); // simba-analyze: allow(hygiene.unwrap): same line\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "unexpected: {findings:?}");

    // A same-line directive covers its own line only — the line *below*
    // it is out of reach (directives reach down, never up).
    let src = "fn f() {\n    g(); // simba-analyze: allow(hygiene.unwrap): reaches line 2 and 3 only\n\n    y.unwrap();\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    assert_eq!(rules_fired(&findings), vec!["hygiene.unwrap"]);
    assert_eq!(findings[0].line, 4);
}

#[test]
fn unknown_rule_directive_cannot_waive_itself() {
    // suppression.* findings are never suppressible: a typo'd allow that
    // carries its own allow(suppression.unknown-rule) must still fire.
    let src = "fn f() {\n    // simba-analyze: allow(suppression.unknown-rule): nice try\n    // simba-analyze: allow(hygiene.unwrp): typo\n    y.unwrap();\n}\n";
    let findings = findings_for("core", "crates/core/src/fixture.rs", src);
    let mut fired = rules_fired(&findings);
    fired.sort_unstable();
    // One unknown-rule finding (the typo); the allow(suppression.unknown-rule)
    // directive names a real rule so it is well-formed — it just has no
    // power, because suppression.* findings are never suppressible.
    assert_eq!(fired, vec!["hygiene.unwrap", "suppression.unknown-rule"]);
}

// ------------------------------------------------------------------- docs

#[test]
fn readme_table_rules() {
    use simba_telemetry::points;
    let no_markers = "# README\n\nno table here\n";
    let findings = rules::check_readme_table(no_markers, "README.md");
    assert_eq!(rules_fired(&findings), vec!["docs.points-table"]);

    let stale = format!(
        "# README\n{}\n| Name | Kind | Scope | Meaning |\n|---|---|---|---|\n| `old.point` | counter | `old` | gone |\n{}\n",
        rules::TABLE_BEGIN,
        rules::TABLE_END
    );
    let findings = rules::check_readme_table(&stale, "README.md");
    assert_eq!(rules_fired(&findings), vec!["docs.points-table"]);

    let fresh = format!(
        "# README\n{}\n{}\n{}\n",
        rules::TABLE_BEGIN,
        points::markdown_table().trim(),
        rules::TABLE_END
    );
    let findings = rules::check_readme_table(&fresh, "README.md");
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// -------------------------------------------------------------- workspace

#[test]
fn this_workspace_is_clean() {
    // The merge gate: the pass must exit clean on the real tree. Running
    // it from the test suite keeps `cargo test` and `make analyze` in
    // agreement about what clean means.
    let root = simba_analyze::workspace::find_root(std::path::Path::new(env!(
        "CARGO_MANIFEST_DIR"
    )))
    .expect("workspace root");
    let findings = simba_analyze::check_workspace(&root).expect("scan succeeds");
    let live: Vec<_> = findings.iter().filter(|f| !f.suppressed).collect();
    assert!(
        live.is_empty(),
        "workspace must be analyze-clean at merge:\n{}",
        simba_analyze::diag::render_report(&findings, false)
    );
    // The cross-file pass must actually have engaged: the workspace's
    // intended hold-the-lock-across-commit shapes carry waivers for the
    // concurrency/durability rules, so their findings must be present
    // (suppressed) rather than silently never produced.
    for rule in ["concurrency.blocking-under-guard", "durability.ack-before-commit"] {
        assert!(
            findings.iter().any(|f| f.rule == rule && f.suppressed),
            "expected waived {rule} findings from the cross-file pass; got none — \
             did the model/graph pass stop seeing the workspace?"
        );
    }
}
