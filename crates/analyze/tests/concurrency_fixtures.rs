//! Fixtures for the cross-file concurrency/durability pass: each of the
//! three rule families must fire on a seeded true positive and stay
//! quiet on the corresponding known-clean shape. Fixtures are inline
//! string constants — string literals don't produce code tokens, so the
//! analyzer's own workspace self-scan never trips over them.

use simba_analyze::diag::Finding;
use simba_analyze::graph::{self, FileFunctions};
use simba_analyze::model;

/// Runs the graph pass over fixture "files" of `(crate, path, source)`.
fn graph_findings(sources: &[(&str, &str, &str)]) -> Vec<Finding> {
    let files: Vec<FileFunctions> = sources
        .iter()
        .map(|(krate, path, src)| FileFunctions {
            crate_name: krate.to_string(),
            rel_path: path.to_string(),
            functions: model::extract(src, false),
        })
        .collect();
    graph::check(&files)
}

fn one_file(src: &str) -> Vec<Finding> {
    graph_findings(&[("runtime", "crates/runtime/src/fixture.rs", src)])
}

fn rules_fired(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------- concurrency.lock-order

#[test]
fn opposite_acquisition_orders_fire_across_files() {
    // The cycle spans two files in two crates — the whole point of the
    // workspace-wide pass.
    let a = "impl S { fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); b.t(); } }";
    let b = "impl T { fn ba(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); a.t(); } }";
    let findings = graph_findings(&[
        ("runtime", "crates/runtime/src/a.rs", a),
        ("ledger", "crates/ledger/src/b.rs", b),
    ]);
    assert_eq!(rules_fired(&findings), vec!["concurrency.lock-order"]);
    let msg = &findings[0].message;
    assert!(
        msg.contains("crates/runtime/src/a.rs") && msg.contains("crates/ledger/src/b.rs"),
        "both acquisition sites must be named: {msg}"
    );
}

#[test]
fn consistent_order_and_sequential_acquisition_are_clean() {
    // Same order everywhere: no cycle.
    let src = "impl S {\n        fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); b.t(); }\n        fn ab2(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); a.t(); }\n    }";
    assert!(one_file(src).is_empty());

    // Sequential (drop-then-acquire) is not nesting: no edge, no cycle.
    let src = "impl S {\n        fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); b.t(); }\n        fn ba(&self) { { let b = self.beta.lock(); b.t(); } let a = self.alpha.lock(); a.t(); }\n    }";
    assert!(one_file(src).is_empty(), "scoped guard released before the second lock");
}

// ------------------------------------------- concurrency.blocking-under-guard

#[test]
fn blocking_call_under_live_guard_fires() {
    let src = "impl S { fn f(&self) { let g = self.state.lock(); std::thread::sleep(d); } }";
    let findings = one_file(src);
    assert_eq!(rules_fired(&findings), vec!["concurrency.blocking-under-guard"]);
    assert!(findings[0].message.contains("sleep"), "{}", findings[0].message);
}

#[test]
fn chained_temporary_guard_blocks_inside_its_own_statement_only() {
    // `lock().recv()` blocks while the temporary guard lives: fires.
    let src = "impl S { fn f(&self) { let m = self.rx.lock().recv(); } }";
    let findings = one_file(src);
    assert_eq!(rules_fired(&findings), vec!["concurrency.blocking-under-guard"]);

    // The guard dies at the `;` — blocking on the *next* line is clean.
    let src = "impl S { fn f(&self) { let d = self.log.lock().is_dirty();\n        std::thread::sleep(d); } }";
    assert!(one_file(src).is_empty(), "chained guard is a statement temporary");
}

#[test]
fn await_under_guard_fires_and_drop_clears_it() {
    // `idle()` itself is unknown (unresolvable — stays quiet); only the
    // `.await` point under the live guard fires.
    let src = "impl S { async fn f(&self) { let g = self.state.lock(); self.idle().await; } }";
    let findings = one_file(src);
    assert_eq!(rules_fired(&findings), vec!["concurrency.blocking-under-guard"]);
    assert!(
        findings[0].message.contains(".await"),
        "await finding expected: {findings:?}"
    );

    let src = "impl S { async fn f(&self) { let g = self.state.lock(); g.touch(); drop(g); self.idle().await; } }";
    assert!(one_file(src).is_empty(), "explicit drop releases the guard");
}

#[test]
fn one_call_deep_blocking_fires_and_unguarded_is_clean() {
    let src = "impl S {\n        fn commit_all(&self) { self.wal.commit(); }\n        fn f(&self) { let g = self.state.lock(); self.commit_all(); }\n    }";
    let findings = one_file(src);
    assert_eq!(rules_fired(&findings), vec!["concurrency.blocking-under-guard"]);
    assert!(
        findings[0].message.contains("commit_all"),
        "names the intermediate callee: {}",
        findings[0].message
    );

    // The same call with no guard held is clean.
    let src = "impl S {\n        fn commit_all(&self) { self.wal.commit(); }\n        fn f(&self) { self.commit_all(); }\n    }";
    assert!(one_file(src).is_empty());
}

#[test]
fn guard_returning_helper_counts_as_acquisition() {
    let src = "impl S {\n        fn lock_log(&self) -> MutexGuard<'_, ShardLog> { self.log.lock() }\n        fn f(&self) { let g = self.lock_log(); std::thread::sleep(d); }\n    }";
    let findings = one_file(src);
    assert_eq!(rules_fired(&findings), vec!["concurrency.blocking-under-guard"]);
    // The helper's lock identity is its receiver field (`self.log`).
    assert!(findings[0].message.contains("`log`"), "{}", findings[0].message);
}

#[test]
fn out_of_scope_crates_are_not_checked() {
    // bench drives load with guards held on purpose; it is not on
    // CONCURRENCY_CRATES and must not be checked.
    let src = "impl S { fn f(&self) { let g = self.state.lock(); std::thread::sleep(d); } }";
    let findings = graph_findings(&[("bench", "crates/bench/src/fixture.rs", src)]);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// --------------------------------------------- durability.ack-before-commit

#[test]
fn ack_without_commit_fires() {
    let src = "fn handle(seq: u64) -> Frame { enqueue(seq); Frame::Ack { seq } }";
    let findings = one_file(src);
    assert_eq!(rules_fired(&findings), vec!["durability.ack-before-commit"]);
    assert!(findings[0].message.contains("Ack"), "{}", findings[0].message);
}

#[test]
fn commit_dominating_the_ack_is_clean() {
    // Straight line: commit, then ack.
    let src = "fn handle(&self, seq: u64) -> Frame { self.wal.commit(); Frame::Ack { seq } }";
    assert!(one_file(src).is_empty());

    // The workspace's real shape: commit in the scrutinee dominates both
    // arms, and only the success arm acks.
    let src = "fn handle(&self, seq: u64) -> Frame {\n        match self.wal.commit() {\n            Ok(()) => Frame::Ack { seq },\n            Err(_) => Frame::Nack { seq },\n        }\n    }";
    assert!(one_file(src).is_empty());
}

#[test]
fn commit_on_a_sibling_branch_does_not_dominate() {
    // The commit happens only in the `if` arm; the ack is unconditional
    // afterwards — the else path acks undurable work.
    let src = "fn handle(&self, seq: u64, fast: bool) -> Frame {\n        if fast { self.wal.commit(); }\n        Frame::Ack { seq }\n    }";
    let findings = one_file(src);
    assert_eq!(rules_fired(&findings), vec!["durability.ack-before-commit"]);
}

#[test]
fn ack_patterns_and_test_code_are_exempt() {
    // Matching on an inbound ack is reading, not acknowledging.
    let src = "fn classify(f: &Frame) -> bool { match f { Frame::Ack { .. } => true, _ => false } }";
    assert!(one_file(src).is_empty(), "pattern position is exempt");

    // Test functions may fabricate acks freely.
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let f = Frame::Ack { seq: 1 }; assert(f); }\n}";
    assert!(one_file(src).is_empty(), "test code is exempt");
}

#[test]
fn try_submit_counts_as_commit_classified() {
    let src = "fn admit(&self, seq: u64) -> Frame {\n        match self.ledger.try_submit(seq) {\n            Ok(()) => Frame::Ack { seq },\n            Err(_) => Frame::Nack { seq },\n        }\n    }";
    assert!(one_file(src).is_empty(), "try_submit is commit-classified");
}
