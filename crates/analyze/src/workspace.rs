//! Workspace discovery: which `.rs` files to scan, and what crate each
//! belongs to.

use std::io;
use std::path::{Path, PathBuf};

/// One source file scheduled for scanning.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable in output).
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// Short crate name: `core` for `crates/core`, `simba` for the root
    /// package.
    pub crate_name: String,
    /// The whole file is test code (lives under a `tests/` directory).
    pub is_test_file: bool,
    /// This is the crate's root (`src/lib.rs`, or `src/main.rs` when
    /// there is no lib) — where `#![forbid(unsafe_code)]` must live.
    pub is_crate_root: bool,
}

/// Finds the workspace root at or above `start`: the nearest directory
/// holding both a `Cargo.toml` and a `crates/` directory.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

/// Enumerates every first-party `.rs` file: the root package's `src/`,
/// `tests/`, `examples/`, and each `crates/*` member's. `vendor/` and
/// `target/` are never entered.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    collect_package(root, root, "simba", &mut files)?;
    let crates_dir = root.join("crates");
    let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    members.sort();
    for member in members {
        let name = member
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("unknown")
            .to_string();
        collect_package(root, &member, &name, &mut files)?;
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn collect_package(
    root: &Path,
    pkg: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let crate_root_rel = if pkg.join("src/lib.rs").is_file() {
        Some(pkg.join("src/lib.rs"))
    } else if pkg.join("src/main.rs").is_file() {
        Some(pkg.join("src/main.rs"))
    } else {
        None
    };
    for (sub, is_test) in [("src", false), ("tests", true), ("examples", false)] {
        let dir = pkg.join(sub);
        if dir.is_dir() {
            walk(root, &dir, crate_name, is_test, crate_root_rel.as_deref(), out)?;
        }
    }
    Ok(())
}

fn walk(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    is_test: bool,
    crate_root: Option<&Path>,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "vendor" || name == "crates" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, crate_name, is_test, crate_root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                rel_path: rel,
                is_crate_root: crate_root.is_some_and(|r| r == path),
                abs_path: path,
                crate_name: crate_name.to_string(),
                is_test_file: is_test,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_this_workspace() {
        let root = find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
        let files = discover(&root).expect("discover");
        assert!(files.iter().any(|f| f.rel_path == "crates/core/src/mab.rs"));
        assert!(files
            .iter()
            .any(|f| f.rel_path == "crates/analyze/src/lexer.rs"));
        // Root package facade plus its integration tests.
        assert!(files
            .iter()
            .any(|f| f.rel_path == "src/lib.rs" && f.crate_name == "simba" && f.is_crate_root));
        assert!(files
            .iter()
            .any(|f| f.rel_path.starts_with("tests/") && f.is_test_file));
        // Nothing vendored, nothing from target/.
        assert!(files
            .iter()
            .all(|f| !f.rel_path.starts_with("vendor/") && !f.rel_path.contains("/target/")));
        // Crate roots marked exactly once per crate.
        let core_roots: Vec<_> = files
            .iter()
            .filter(|f| f.crate_name == "core" && f.is_crate_root)
            .collect();
        assert_eq!(core_roots.len(), 1);
        assert_eq!(core_roots[0].rel_path, "crates/core/src/lib.rs");
    }
}
