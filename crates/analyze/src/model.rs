//! Per-file *function facts* for the cross-file concurrency and
//! durability analysis.
//!
//! Where `scan` extracts flat per-file facts, this module recovers just
//! enough structure to reason about control flow: each function becomes
//! an ordered **event stream** — block opens/closes (tagged conditional
//! or not), statement ends, `Mutex`/`RwLock` guard acquisitions with
//! their `let` binding, calls with their path qualifier, `.await`
//! points, and explicit `drop(guard)` calls. `graph` interprets these
//! streams to track guard live-ranges, build the workspace lock-order
//! graph, and check the ack/commit contract.
//!
//! Same trade-off as the lexer: hand-rolled, deliberately partial.
//! Closures and nested blocks are treated as inline conditional code;
//! macro bodies contribute their tokens; anything the parser cannot
//! shape degrades to "no event", which can only make a rule miss.

use crate::lexer::{lex, Token, TokenKind};
use crate::scan;

/// One function's extracted facts.
#[derive(Debug, Clone)]
pub struct FnFact {
    /// Function name as written.
    pub name: String,
    /// Enclosing `impl` type's last path segment, when inside one.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared `async`.
    pub is_async: bool,
    /// Inside `#[test]`/`#[cfg(test)]` code or a `tests/` file.
    pub in_test: bool,
    /// The return type mentions a `MutexGuard`/`RwLock*Guard` — calling
    /// this function acquires whatever lock its body locks.
    pub returns_guard: bool,
    /// The body as an ordered event stream.
    pub events: Vec<BodyEvent>,
}

/// One event in a function body, in source order.
#[derive(Debug, Clone)]
pub struct BodyEvent {
    /// What happened.
    pub kind: EventKind,
    /// 1-based line.
    pub line: u32,
}

/// The event alphabet `graph` interprets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A `{` opened. `conditional` means control may skip or repeat the
    /// block (`if`/`match`/loop/closure bodies); plain block expressions
    /// and struct literals are unconditional.
    Open {
        /// Entry into the block is control-flow dependent.
        conditional: bool,
    },
    /// A `}` closed the innermost block.
    Close,
    /// A `;` ended the current statement (kills temporary guards).
    StmtEnd,
    /// `receiver.lock()` / `.read()` / `.write()` with no arguments.
    Acquire {
        /// Lock identity: the last path segment of the receiver.
        lock: String,
        /// The `let` binding holding the guard, when the acquisition is
        /// the statement's top-level initializer; `None` = temporary.
        binding: Option<String>,
        /// `"lock"`, `"read"`, or `"write"`.
        method: &'static str,
    },
    /// A call (`f(..)`, `x.m(..)`, `Path::f(..)`) or a qualified struct
    /// construction (`Frame::Ack { .. }`).
    Call {
        /// Callee or variant name.
        name: String,
        /// The path segment before `::`, if any.
        qualifier: Option<String>,
        /// The argument list is empty (`()`).
        empty_args: bool,
        /// The site is a match/let *pattern*, not an expression.
        in_pattern: bool,
        /// Same binding rule as [`EventKind::Acquire`] — lets `graph`
        /// treat `let g = self.lock_log();` as an acquisition.
        binding: Option<String>,
    },
    /// An `.await` point.
    Await,
    /// An explicit `drop(binding)`.
    DropGuard {
        /// The dropped binding's name.
        binding: String,
    },
}

/// Extracts every function in `source` as an event stream.
pub fn extract(source: &str, whole_file_is_test: bool) -> Vec<FnFact> {
    let tokens = lex(source);
    let in_test = scan::test_regions(&tokens, whole_file_is_test);
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment(_)))
        .collect();

    let mut facts = Vec::new();
    // (owner type name, index of the impl block's closing brace)
    let mut owners: Vec<(Option<String>, usize)> = Vec::new();
    let mut k = 0usize;
    while k < code.len() {
        while owners.last().is_some_and(|&(_, end)| k > end) {
            owners.pop();
        }
        match ident_at(&code, k) {
            Some("macro_rules") => {
                // `macro_rules! name { ... }` — skip the whole body; its
                // tokens are patterns, not code.
                let mut p = k + 1;
                while p < code.len() && !is_open_delim(&code, p) {
                    p += 1;
                }
                k = matching_close(&code, p) + 1;
            }
            Some("impl") => {
                let mut ob = k + 1;
                while ob < code.len() && !punct_at(&code, ob, '{') {
                    ob += 1;
                }
                let owner = impl_type_name(&code[k + 1..ob.min(code.len())]);
                owners.push((owner, matching_close(&code, ob)));
                k = ob + 1;
            }
            Some("fn") => {
                let Some(name) = ident_at(&code, k + 1) else {
                    // `fn(u32) -> u32` — a fn-pointer type, not an item.
                    k += 1;
                    continue;
                };
                let name = name.to_string();
                let line = code[k].1.line;
                let is_async = k > 0 && ident_at(&code, k - 1) == Some("async");
                // Params: first `(` outside the generics' angle brackets.
                let mut p = k + 2;
                let mut angle = 0i32;
                while p < code.len() {
                    match &code[p].1.kind {
                        TokenKind::Punct('<') => angle += 1,
                        TokenKind::Punct('>') => angle -= 1,
                        TokenKind::Punct('(') if angle <= 0 => break,
                        _ => {}
                    }
                    p += 1;
                }
                let pe = matching_close(&code, p);
                // Signature tail: return type up to the body `{` (or `;`
                // for a bodyless trait method).
                let mut body_open = None;
                let mut returns_guard = false;
                let mut q = pe + 1;
                while q < code.len() {
                    match &code[q].1.kind {
                        TokenKind::Punct('{') => {
                            body_open = Some(q);
                            break;
                        }
                        TokenKind::Punct(';') => break,
                        TokenKind::Ident(s)
                            if s == "MutexGuard"
                                || s == "RwLockReadGuard"
                                || s == "RwLockWriteGuard" =>
                        {
                            returns_guard = true;
                        }
                        _ => {}
                    }
                    q += 1;
                }
                let Some(bo) = body_open else {
                    k = q + 1;
                    continue;
                };
                let bc = matching_close(&code, bo);
                facts.push(FnFact {
                    name,
                    owner: owners.last().and_then(|(o, _)| o.clone()),
                    line,
                    is_async,
                    in_test: in_test[code[k].0],
                    returns_guard,
                    events: parse_body(&code, bo, bc, owners.last().and_then(|(o, _)| o.as_deref())),
                });
                k = bc + 1;
            }
            _ => k += 1,
        }
    }
    facts
}

fn ident_at<'a>(code: &[(usize, &'a Token)], i: usize) -> Option<&'a str> {
    code.get(i).and_then(|(_, t)| t.kind.ident())
}

fn punct_at(code: &[(usize, &Token)], i: usize, c: char) -> bool {
    code.get(i).is_some_and(|(_, t)| t.kind.is_punct(c))
}

fn is_open_delim(code: &[(usize, &Token)], i: usize) -> bool {
    punct_at(code, i, '{') || punct_at(code, i, '(') || punct_at(code, i, '[')
}

/// Index of the delimiter matching the opener at `open` (any of
/// `{(['s`), or the last index when unbalanced.
fn matching_close(code: &[(usize, &Token)], open: usize) -> usize {
    let mut depth = 0i32;
    for (off, (_, t)) in code[open.min(code.len())..].iter().enumerate() {
        match t.kind {
            TokenKind::Punct('{' | '(' | '[') => depth += 1,
            TokenKind::Punct('}' | ')' | ']') => {
                depth -= 1;
                if depth == 0 {
                    return open + off;
                }
            }
            _ => {}
        }
    }
    code.len().saturating_sub(1)
}

/// Backwards match: index of the opener matching the closer at `close`.
fn matching_open(code: &[(usize, &Token)], close: usize) -> usize {
    let mut depth = 0i32;
    let mut i = close;
    loop {
        match code[i].1.kind {
            TokenKind::Punct('}' | ')' | ']') => depth += 1,
            TokenKind::Punct('{' | '(' | '[') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        if i == 0 {
            return 0;
        }
        i -= 1;
    }
}

/// The last type-path segment of an `impl` header: `impl Foo for
/// Arc<Mutex<ShardLog>>` → `ShardLog` (the innermost type is the most
/// useful lock identity). `where` clauses are cut first.
fn impl_type_name(header: &[(usize, &Token)]) -> Option<String> {
    let cut = header
        .iter()
        .position(|(_, t)| t.kind.ident() == Some("where"))
        .unwrap_or(header.len());
    let header = &header[..cut];
    let start = header
        .iter()
        .rposition(|(_, t)| t.kind.ident() == Some("for"))
        .map(|i| i + 1)
        .unwrap_or(0);
    header[start..]
        .iter()
        .rev()
        .find_map(|(_, t)| t.kind.ident())
        .map(|s| s.to_string())
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "in",
    "as", "move", "async", "await", "fn", "impl", "pub", "use", "mod", "where", "struct", "enum",
    "trait", "type", "const", "static", "ref", "mut", "dyn", "box", "unsafe", "crate", "super",
    "self", "Self",
];

/// Parses the body tokens between `bo` and `bc` (the outer braces,
/// exclusive) into an event stream.
fn parse_body(
    code: &[(usize, &Token)],
    bo: usize,
    bc: usize,
    owner: Option<&str>,
) -> Vec<BodyEvent> {
    let mut events: Vec<BodyEvent> = Vec::new();
    // Per-open-brace frames; the root frame is the fn body itself.
    // Each holds the active `let` binding for the current statement.
    let mut bindings: Vec<Option<String>> = vec![None];
    let mut paren = 0i32;
    let mut force_uncond = false;

    let push = |events: &mut Vec<BodyEvent>, kind: EventKind, line: u32| {
        events.push(BodyEvent { kind, line });
    };

    let mut i = bo + 1;
    while i < bc {
        let line = code[i].1.line;
        match &code[i].1.kind {
            TokenKind::Punct('(' | '[') => paren += 1,
            TokenKind::Punct(')' | ']') => paren -= 1,
            TokenKind::Punct(';') if paren == 0 => {
                push(&mut events, EventKind::StmtEnd, line);
                if let Some(b) = bindings.last_mut() {
                    *b = None;
                }
            }
            TokenKind::Punct('{') => {
                let conditional = if force_uncond {
                    false
                } else {
                    match code.get(i - 1).map(|(_, t)| &t.kind) {
                        // Statement start, block-expression positions.
                        Some(TokenKind::Punct('=' | ';' | '{' | '}' | '(' | ',')) => false,
                        None => false,
                        // `if cond {`, `match x {`, `=> {`, `|c| {`, `else {`…
                        _ => true,
                    }
                };
                force_uncond = false;
                push(&mut events, EventKind::Open { conditional }, line);
                bindings.push(None);
            }
            TokenKind::Punct('}') => {
                push(&mut events, EventKind::Close, line);
                if bindings.len() > 1 {
                    bindings.pop();
                }
            }
            TokenKind::Punct('.') => {
                if ident_at(code, i + 1) == Some("await") {
                    push(&mut events, EventKind::Await, line);
                } else if let Some(m) = ident_at(code, i + 1) {
                    if punct_at(code, i + 2, '(') {
                        let empty = punct_at(code, i + 3, ')');
                        let method: Option<&'static str> = match m {
                            "lock" => Some("lock"),
                            "read" => Some("read"),
                            "write" => Some("write"),
                            _ => None,
                        };
                        let binding = if paren == 0 && !chained_past_identity(code, i + 2) {
                            bindings.last().cloned().flatten()
                        } else {
                            None
                        };
                        match method {
                            // Only the zero-argument form is a guard
                            // acquisition (`io::Read::read(&mut buf)` and
                            // friends all take arguments).
                            Some(method) if empty => push(
                                &mut events,
                                EventKind::Acquire {
                                    lock: receiver_name(code, i, owner),
                                    binding,
                                    method,
                                },
                                code[i + 1].1.line,
                            ),
                            _ => push(
                                &mut events,
                                EventKind::Call {
                                    name: m.to_string(),
                                    qualifier: None,
                                    empty_args: empty,
                                    in_pattern: false,
                                    binding,
                                },
                                code[i + 1].1.line,
                            ),
                        }
                    }
                }
            }
            TokenKind::Ident(s) => {
                let s = s.as_str();
                if s == "let" {
                    // `let [mut] NAME =` / `let NAME:` — capture the
                    // binding for this statement's top-level initializer.
                    let mut j = i + 1;
                    if ident_at(code, j) == Some("mut") {
                        j += 1;
                    }
                    if let Some(name) = ident_at(code, j) {
                        if punct_at(code, j + 1, '=') || punct_at(code, j + 1, ':') {
                            if let Some(b) = bindings.last_mut() {
                                *b = Some(name.to_string());
                            }
                        }
                    }
                } else if s == "drop"
                    && punct_at(code, i + 1, '(')
                    && ident_at(code, i + 2).is_some()
                    && punct_at(code, i + 3, ')')
                {
                    push(
                        &mut events,
                        EventKind::DropGuard {
                            binding: ident_at(code, i + 2).unwrap_or_default().to_string(),
                        },
                        line,
                    );
                } else if !KEYWORDS.contains(&s) && !punct_at(code, i - 1, '.') {
                    let qualified = i >= 3
                        && punct_at(code, i - 1, ':')
                        && punct_at(code, i - 2, ':');
                    let qualifier = if qualified {
                        ident_at(code, i - 3).map(|q| q.to_string())
                    } else {
                        None
                    };
                    if punct_at(code, i + 1, '{') && qualified {
                        // Qualified struct construction `Frame::Ack { .. }`
                        // — or the same shape used as a *pattern*.
                        let close = matching_close(code, i + 1);
                        push(
                            &mut events,
                            EventKind::Call {
                                name: s.to_string(),
                                qualifier,
                                empty_args: false,
                                in_pattern: follower_is_pattern(code, close),
                                binding: None,
                            },
                            line,
                        );
                        force_uncond = true;
                    } else if punct_at(code, i + 1, '(') && !punct_at(code, i + 1, '!') {
                        let empty = punct_at(code, i + 2, ')');
                        // Uppercase-initial names are tuple constructions
                        // (`Ok(v)`, `Frame::Probe(n)`) — those can sit in
                        // patterns too.
                        let in_pattern = s.starts_with(char::is_uppercase)
                            && follower_is_pattern(code, matching_close(code, i + 1));
                        let binding = if paren == 0 && !chained_past_identity(code, i + 1) {
                            bindings.last().cloned().flatten()
                        } else {
                            None
                        };
                        push(
                            &mut events,
                            EventKind::Call {
                                name: s.to_string(),
                                qualifier,
                                empty_args: empty,
                                in_pattern,
                                binding,
                            },
                            line,
                        );
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    events
}

/// A call whose result is immediately chained into another method
/// (`self.lock_log().is_dirty()`) yields a statement *temporary*: the
/// `let` binding (if any) holds the chain's final value, not the guard,
/// which drops at the `;`. `unwrap`/`expect`/`unwrap_or_else` are
/// identity adapters — they return the guard itself — so chains through
/// them (`.lock().unwrap_or_else(PoisonError::into_inner)`) keep the
/// binding. `open` is the call's argument-list `(`.
fn chained_past_identity(code: &[(usize, &Token)], open: usize) -> bool {
    let mut close = matching_close(code, open);
    loop {
        if !punct_at(code, close + 1, '.') {
            return false;
        }
        match ident_at(code, close + 2) {
            Some("unwrap" | "expect" | "unwrap_or_else") if punct_at(code, close + 3, '(') => {
                close = matching_close(code, close + 3);
            }
            // `.await` keeps the value (tokio's `lock().await`).
            Some("await") => return false,
            _ => return true,
        }
    }
}

/// After a pattern's closing delimiter come `=>`, `|`, `=` (an `if let`
/// scrutinee follows), or a match guard's `if`; expressions are followed
/// by anything else.
fn follower_is_pattern(code: &[(usize, &Token)], close: usize) -> bool {
    if punct_at(code, close + 1, '=') && punct_at(code, close + 2, '>') {
        return true; // `X { .. } =>`
    }
    if punct_at(code, close + 1, '=') && !punct_at(code, close + 2, '=') {
        return true; // `if let X { .. } = expr`
    }
    punct_at(code, close + 1, '|') || ident_at(code, close + 1) == Some("if")
}

/// The lock identity behind a `.lock()`-style acquisition at the `.`
/// token `dot`: the last path segment of the receiver, skipping balanced
/// call/index groups. `self.lock()` uses the impl type's name.
fn receiver_name(code: &[(usize, &Token)], dot: usize, owner: Option<&str>) -> String {
    let mut j = dot;
    loop {
        if j == 0 {
            return "anon".to_string();
        }
        j -= 1;
        match &code[j].1.kind {
            TokenKind::Ident(s) => {
                return if s == "self" {
                    owner.unwrap_or("self").to_string()
                } else {
                    s.clone()
                };
            }
            TokenKind::Punct(')' | ']') => j = matching_open(code, j),
            _ => return "anon".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> Vec<FnFact> {
        extract(src, false)
    }

    fn events_of(src: &str, name: &str) -> Vec<EventKind> {
        fns(src)
            .into_iter()
            .find(|f| f.name == name)
            .map(|f| f.events.into_iter().map(|e| e.kind).collect())
            .unwrap_or_default()
    }

    #[test]
    fn finds_functions_with_owner_and_async() {
        let src = r#"
            impl Shard {
                async fn run(&mut self) { }
                fn lock_log(&self) -> MutexGuard<'_, ShardLog> { self.log.lock() }
            }
            fn free() { }
        "#;
        let got = fns(src);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].name, "run");
        assert!(got[0].is_async);
        assert_eq!(got[0].owner.as_deref(), Some("Shard"));
        assert!(got[1].returns_guard);
        assert_eq!(got[2].name, "free");
        assert_eq!(got[2].owner, None);
    }

    #[test]
    fn impl_for_takes_innermost_type() {
        let src = "impl ShardLogHandle for std::sync::Arc<std::sync::Mutex<ShardLog>> { fn f(&self) { self.lock(); } }";
        let got = fns(src);
        assert_eq!(got[0].owner.as_deref(), Some("ShardLog"));
        assert!(matches!(
            &got[0].events[0].kind,
            EventKind::Acquire { lock, .. } if lock == "ShardLog"
        ));
    }

    #[test]
    fn acquire_with_binding_and_temporary() {
        let ev = events_of(
            "fn f(&self) { let mut g = self.state.lock(); self.other.lock(); }",
            "f",
        );
        assert_eq!(
            ev,
            vec![
                EventKind::Acquire {
                    lock: "state".into(),
                    binding: Some("g".into()),
                    method: "lock"
                },
                EventKind::StmtEnd,
                EventKind::Acquire {
                    lock: "other".into(),
                    binding: None,
                    method: "lock"
                },
                EventKind::StmtEnd,
            ]
        );
    }

    #[test]
    fn read_with_args_is_not_an_acquisition() {
        let ev = events_of("fn f() { file.read(&mut buf); }", "f");
        assert!(matches!(&ev[0], EventKind::Call { name, .. } if name == "read"));
    }

    #[test]
    fn conditional_vs_unconditional_blocks() {
        let ev = events_of("fn f() { let x = { 1 }; if c { g(); } }", "f");
        assert_eq!(ev[0], EventKind::Open { conditional: false });
        assert!(ev.contains(&EventKind::Open { conditional: true }));
    }

    #[test]
    fn construction_vs_pattern() {
        let src = r#"
            fn encode(seq: u64) -> Frame { Frame::Ack { seq } }
            fn decode(f: &Frame) -> bool { matches2(f, Frame::Ack { .. } | Frame::Nack { .. }) }
            fn arm(f: Frame) { match f { Frame::Ack { seq } => use_it(seq), _ => {} } }
        "#;
        let is_ack_expr = |ev: &[EventKind]| {
            ev.iter().any(|e| matches!(e, EventKind::Call { name, in_pattern, .. } if name == "Ack" && !in_pattern))
        };
        assert!(is_ack_expr(&events_of(src, "encode")));
        assert!(!is_ack_expr(&events_of(src, "decode")), "pattern via `|`");
        assert!(!is_ack_expr(&events_of(src, "arm")), "pattern via `=>`");
    }

    #[test]
    fn await_and_drop_events() {
        let ev = events_of("async fn f() { let g = m.lock(); drop(g); rx.recv().await; }", "f");
        assert!(ev.contains(&EventKind::DropGuard { binding: "g".into() }));
        assert!(ev.contains(&EventKind::Await));
    }

    #[test]
    fn chained_guard_is_a_temporary_but_identity_adapters_keep_binding() {
        // `lock_log().is_dirty()` binds the *chain result*, not the guard.
        let ev = events_of("fn f(&self) { let dirty = self.lock_log().is_dirty(); }", "f");
        assert!(matches!(
            &ev[0],
            EventKind::Call { name, binding: None, .. } if name == "lock_log"
        ));
        // `.lock().unwrap_or_else(..)` still yields the guard itself.
        let ev = events_of(
            "fn f(&self) { let mut g = self.log.lock().unwrap_or_else(PoisonError::into_inner); }",
            "f",
        );
        assert!(matches!(
            &ev[0],
            EventKind::Acquire { lock, binding: Some(b), .. } if lock == "log" && b == "g"
        ));
        // ...but a chain continuing *past* the adapter is a temporary again.
        let ev = events_of(
            "fn f(&self) { let d = self.l.lock().unwrap_or_else(PoisonError::into_inner).is_drained(); }",
            "f",
        );
        assert!(matches!(
            &ev[0],
            EventKind::Acquire { lock, binding: None, .. } if lock == "l"
        ));
    }

    #[test]
    fn test_regions_mark_functions() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests { #[test]\nfn t() {} }";
        let got = fns(src);
        assert!(!got[0].in_test);
        assert!(got[1].in_test);
    }

    #[test]
    fn guard_returning_helper_call_keeps_binding() {
        let ev = events_of("fn f(&self) { let mut log = self.lock_log(); log.commit(); }", "f");
        assert!(matches!(
            &ev[0],
            EventKind::Call { name, binding: Some(b), empty_args: true, .. }
                if name == "lock_log" && b == "log"
        ));
        assert!(matches!(
            &ev[2],
            EventKind::Call { name, .. } if name == "commit"
        ));
    }
}
