//! The annotated contract registry behind the `durability.*` and
//! `concurrency.*` rule families.
//!
//! §4.2.1's durable-before-ack invariant is spread across four crates
//! (wal, shardlog, gateway, ledger), so the checker cannot infer it —
//! it has to be *told* which calls acknowledge an alert to the outside
//! world and which calls make state durable. This module is that
//! annotation: a reviewed, documented list. Growing the system means
//! growing this file; an ack path the registry does not know about is
//! invisible to `durability.ack-before-commit`, so new ack shapes must
//! land here in the same PR that introduces them.

/// How a registered name participates in the durable-before-ack
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContractKind {
    /// Acknowledges accepted work to the outside world (a wire frame or
    /// a lifecycle event an observer may trust).
    Ack,
    /// Makes the accepted work durable (or hands it to a stage that
    /// guarantees it will be).
    Commit,
}

/// One registry entry: a call or construction name, an optional path
/// qualifier (the segment right before `::`), its role, and why.
#[derive(Debug, Clone, Copy)]
pub struct Contract {
    /// The function or variant name as written at the call site.
    pub name: &'static str,
    /// Required `Qualifier::name` segment; `None` matches any shape,
    /// including bare method calls.
    pub qualifier: Option<&'static str>,
    /// Ack or commit.
    pub kind: ContractKind,
    /// Why this name is in the registry (rendered by `simba-analyze rules`).
    pub doc: &'static str,
}

/// The reviewed ack/commit registry.
pub const CONTRACTS: &[Contract] = &[
    Contract {
        name: "Ack",
        qualifier: Some("Frame"),
        kind: ContractKind::Ack,
        doc: "the gateway's wire-level acceptance frame — once sent, the \
              client may stop retrying (§4.2.1 durable-before-ack)",
    },
    Contract {
        name: "SendAccepted",
        qualifier: Some("DeliveryEvent"),
        kind: ContractKind::Ack,
        doc: "the delivery lifecycle's acceptance event; observers treat \
              it as 'this alert will not be lost'",
    },
    Contract {
        name: "commit",
        qualifier: None,
        kind: ContractKind::Commit,
        doc: "group commit — the durable point for WAL, shard-log, and \
              ledger batches",
    },
    Contract {
        name: "try_submit",
        qualifier: None,
        kind: ContractKind::Commit,
        doc: "bounded intake handoff into the host; the pump drains the \
              queue into the WAL before any ack-after-enqueue reply",
    },
];

/// True when `(name, qualifier)` matches an ack-classified entry.
pub fn is_ack(name: &str, qualifier: Option<&str>) -> bool {
    matches(name, qualifier, ContractKind::Ack)
}

/// True when `(name, qualifier)` matches a commit-classified entry.
pub fn is_commit(name: &str, qualifier: Option<&str>) -> bool {
    matches(name, qualifier, ContractKind::Commit)
}

fn matches(name: &str, qualifier: Option<&str>, kind: ContractKind) -> bool {
    CONTRACTS.iter().any(|c| {
        c.kind == kind
            && c.name == name
            && match c.qualifier {
                Some(q) => qualifier == Some(q),
                None => true,
            }
    })
}

/// One blocking-call classification for `concurrency.blocking-under-guard`.
#[derive(Debug, Clone, Copy)]
pub struct BlockingCall {
    /// Call name at the site.
    pub name: &'static str,
    /// Required qualifier (`thread::sleep` — plain `sleep` is tokio's
    /// async one and is caught by the `.await` check instead).
    pub qualifier: Option<&'static str>,
    /// Only match zero-argument calls (`handle.join()` blocks; a slice's
    /// `join(", ")` does not).
    pub empty_args_only: bool,
    /// What the call does, for the message.
    pub what: &'static str,
}

/// Calls that can park the current OS thread. Reaching one of these —
/// directly or one call deep — while a `Mutex`/`RwLock` guard is live
/// turns the lock into a convoy under load.
pub const BLOCKING: &[BlockingCall] = &[
    BlockingCall { name: "sleep", qualifier: Some("thread"), empty_args_only: false, what: "thread::sleep parks the OS thread" },
    BlockingCall { name: "recv", qualifier: None, empty_args_only: true, what: "channel receive blocks until a message arrives" },
    BlockingCall { name: "recv_timeout", qualifier: None, empty_args_only: false, what: "channel receive blocks up to the timeout" },
    BlockingCall { name: "commit", qualifier: None, empty_args_only: false, what: "group commit performs fsync-class file I/O" },
    BlockingCall { name: "write_all", qualifier: None, empty_args_only: false, what: "file/socket write" },
    BlockingCall { name: "flush", qualifier: None, empty_args_only: false, what: "file/socket flush" },
    BlockingCall { name: "sync_all", qualifier: None, empty_args_only: false, what: "fsync" },
    BlockingCall { name: "sync_data", qualifier: None, empty_args_only: false, what: "fdatasync" },
    BlockingCall { name: "read_exact", qualifier: None, empty_args_only: false, what: "file/socket read" },
    BlockingCall { name: "read_to_end", qualifier: None, empty_args_only: false, what: "file/socket read" },
    BlockingCall { name: "read_to_string", qualifier: None, empty_args_only: false, what: "file/socket read" },
    BlockingCall { name: "accept", qualifier: None, empty_args_only: true, what: "blocks until a connection arrives" },
    BlockingCall { name: "connect", qualifier: None, empty_args_only: false, what: "blocks on the TCP handshake" },
    BlockingCall { name: "join", qualifier: None, empty_args_only: true, what: "blocks until the thread exits" },
];

/// Looks up the blocking classification for `(name, qualifier, empty_args)`.
pub fn blocking_what(name: &str, qualifier: Option<&str>, empty_args: bool) -> Option<&'static str> {
    BLOCKING
        .iter()
        .find(|b| {
            b.name == name
                && (!b.empty_args_only || empty_args)
                && match b.qualifier {
                    Some(q) => qualifier == Some(q),
                    None => true,
                }
        })
        .map(|b| b.what)
}

/// Crates the `concurrency.*` rules apply to: everything on a delivery
/// or ingestion hot path where a lock convoy or deadlock loses alerts.
/// (`telemetry` buffers under its own sink lock by design; `bench`,
/// `sim`, `cli`, and `client` drive the system rather than serve it.)
pub const CONCURRENCY_CRATES: &[&str] =
    &["core", "runtime", "gateway", "net", "ledger", "store", "rules"];

/// Crates the `durability.ack-before-commit` rule applies to: the ones
/// that construct ack-classified frames or events.
pub const DURABILITY_CRATES: &[&str] = &["core", "runtime", "gateway", "ledger", "rules"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_and_commit_lookups() {
        assert!(is_ack("Ack", Some("Frame")));
        assert!(is_ack("SendAccepted", Some("DeliveryEvent")));
        assert!(!is_ack("Ack", None), "wire frame requires its qualifier");
        assert!(!is_ack("Ack", Some("Reply")));
        assert!(is_commit("commit", None));
        assert!(is_commit("commit", Some("WriteAheadLog")));
        assert!(is_commit("try_submit", None));
        assert!(!is_commit("enqueue", None));
    }

    #[test]
    fn blocking_lookups() {
        assert!(blocking_what("commit", None, false).is_some());
        assert!(blocking_what("sleep", Some("thread"), false).is_some());
        assert!(blocking_what("sleep", Some("time"), false).is_none(), "tokio sleep is async");
        assert!(blocking_what("recv", None, true).is_some());
        assert!(blocking_what("join", None, true).is_some());
        assert!(blocking_what("join", None, false).is_none(), "slice join takes a separator");
    }
}
