//! CLI entry point: `simba-analyze check [--json]`, `points`, `dump`.

#![forbid(unsafe_code)]

use simba_analyze::{check_workspace, diag, dump_sites, workspace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
simba-analyze — workspace static analysis for telemetry contracts and hygiene

USAGE:
    simba-analyze check [--json] [--report <path>] [--root <dir>]
                                                  run every rule; exit 1 on unsuppressed findings;
                                                  --report writes the full JSON report to <path>
    simba-analyze points                          print the registry as a markdown table
    simba-analyze dump [--root <dir>]             list every telemetry call site
    simba-analyze rules                           list rule ids and descriptions
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut json = false;
    let mut report_path: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "points" | "dump" | "rules" if cmd.is_none() => cmd = Some(a.clone()),
            "--json" => json = true,
            "--report" => match it.next() {
                Some(path) => report_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("error: --report needs a path\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let Some(cmd) = cmd else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };

    if cmd == "points" {
        print!("{}", simba_telemetry::points::markdown_table());
        return ExitCode::SUCCESS;
    }
    if cmd == "rules" {
        for (id, doc) in simba_analyze::rules::RULES {
            println!("{id:<28} {doc}");
        }
        return ExitCode::SUCCESS;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot read current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match root_arg.or_else(|| workspace::find_root(&cwd)) {
        Some(r) => r,
        None => {
            eprintln!("error: no workspace root found (looked for Cargo.toml + crates/ above {})", cwd.display());
            return ExitCode::from(2);
        }
    };

    match cmd.as_str() {
        "dump" => match dump_sites(&root) {
            Ok(sites) => {
                for s in sites {
                    println!(
                        "{}\t{}:{}\t{}\t{}\t{}",
                        s.crate_name,
                        s.file,
                        s.line,
                        s.api.label(),
                        s.name,
                        if s.in_test { "test" } else { "prod" }
                    );
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        "check" => match check_workspace(&root) {
            Ok(findings) => {
                if let Some(path) = &report_path {
                    if let Err(e) = std::fs::write(path, diag::render_report(&findings, true)) {
                        eprintln!("error: cannot write report to {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                }
                print!("{}", diag::render_report(&findings, json));
                if diag::unsuppressed_count(&findings) == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        },
        _ => unreachable!(),
    }
}
