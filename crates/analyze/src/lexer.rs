//! A lightweight Rust lexer: just enough token structure for
//! pattern-matching rules, with exact line numbers.
//!
//! The same trade-off as `simba-xml`'s lexer: hand-rolled, zero
//! dependencies, and deliberately partial. It understands the token
//! shapes that matter for not *mis*-reading source — strings (plain,
//! raw, byte), char literals vs lifetimes, nested block comments,
//! numbers (so `1.5` does not produce a `.` token) — and flattens
//! everything else to one-character punctuation.

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// The flavors of token the rules engine distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `Event`, `r#async`, ...).
    Ident(String),
    /// A string literal's *cooked* contents (escapes resolved; raw and
    /// byte strings included).
    Str(String),
    /// A `//` comment's text, excluding the slashes (doc `///` and `//!`
    /// included — suppression directives never live in doc comments, but
    /// the scanner decides that, not the lexer).
    LineComment(String),
    /// A numeric literal (value unneeded; kept so `.` inside `1.5` or a
    /// float's exponent never leaks out as punctuation).
    Number,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A char or byte literal (`'x'`, `b'\n'`); contents unneeded.
    CharLit,
    /// Any other single character of punctuation (`.`, `(`, `::` is two
    /// `:` tokens, ...).
    Punct(char),
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == c)
    }
}

/// Lexes `source` into a token stream. Never fails: malformed input
/// degrades to punctuation tokens, which at worst makes a rule miss —
/// an acceptable failure mode for a lint pass (rustc itself will reject
/// the file long before CI trusts our silence).
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.char_indices().peekable(),
        src: source,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

/// Lookahead helper for raw-string openers: starting just after the
/// `r` prefix, returns `Some(n)` when `n` `#`s followed by a `"` come
/// next (a real raw-string opener), `None` otherwise.
fn raw_opener_hashes<I: Iterator<Item = (usize, char)>>(mut it: I) -> Option<usize> {
    let mut hashes = 0usize;
    loop {
        match it.next().map(|(_, c)| c) {
            Some('#') => hashes += 1,
            Some('"') => return Some(hashes),
            _ => return None,
        }
    }
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    src: &'a str,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn bump(&mut self) -> Option<char> {
        let (_, c) = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|&(_, c)| c)
    }

    fn peek2(&mut self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next();
        it.next().map(|(_, c)| c)
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek() {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek2() == Some('/') => self.line_comment(line),
                '/' if self.peek2() == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.cooked_string(line, '"');
                }
                'r' | 'b' => self.ident_or_prefixed_literal(line),
                '\'' => self.lifetime_or_char(line),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphanumeric() => self.ident(line),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct(c), line);
                }
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, line: u32) {
        self.bump(); // /
        self.bump(); // /
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment(text), line);
    }

    fn block_comment(&mut self) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1u32;
        while depth > 0 {
            match self.bump() {
                Some('/') if self.peek() == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek() == Some('/') => {
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {}
                None => break,
            }
        }
    }

    /// The opening quote is consumed; lexes the rest, resolving escapes.
    fn cooked_string(&mut self, line: u32, quote: char) {
        let mut value = String::new();
        loop {
            match self.bump() {
                None => break,
                Some(c) if c == quote => break,
                Some('\\') => match self.bump() {
                    Some('n') => value.push('\n'),
                    Some('r') => value.push('\r'),
                    Some('t') => value.push('\t'),
                    Some('0') => value.push('\0'),
                    Some('\\') => value.push('\\'),
                    Some('\'') => value.push('\''),
                    Some('"') => value.push('"'),
                    // \n-escape (line continuation), \x.., \u{..}: the exact
                    // value never matters for a telemetry name, so a
                    // placeholder keeps the stream aligned.
                    Some(_) => value.push('\u{FFFD}'),
                    None => break,
                },
                Some(c) => value.push(c),
            }
        }
        self.push(TokenKind::Str(value), line);
    }

    /// At an `r` or `b`: could be `r"..."`, `r#"..."#`, `b"..."`,
    /// `br#"..."#`, `b'x'`, `r#ident`, or a plain identifier.
    ///
    /// Decides with *pure lookahead* before consuming anything: a
    /// raw-string form is committed to only when `#`s-then-`"` really
    /// follows the prefix. (An earlier version consumed the `b`/`r`
    /// first and mislexed every identifier starting with `br` —
    /// `break` came out as `Ident("r")` + `Ident("eak")`.)
    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let mut it = self.chars.clone();
        let first = it.next().map(|(_, c)| c);
        let after_first = it.clone();
        let second = it.next().map(|(_, c)| c);
        match (first, second) {
            // b'x' byte char
            (Some('b'), Some('\'')) => {
                self.bump();
                self.char_literal(line);
            }
            // b"..." byte string
            (Some('b'), Some('"')) => {
                self.bump();
                self.bump();
                self.cooked_string(line, '"');
            }
            // br"..." / br##"..."## byte raw string — but only when a
            // quote follows the hashes; `break` is an identifier.
            (Some('b'), Some('r')) => match raw_opener_hashes(it) {
                Some(hashes) => {
                    self.bump(); // b
                    self.bump(); // r
                    for _ in 0..=hashes {
                        self.bump(); // the #s and the opening quote
                    }
                    self.raw_string(line, hashes);
                }
                None => self.ident(line),
            },
            // r"..." raw string
            (Some('r'), Some('"')) => {
                self.bump(); // r
                self.bump(); // "
                self.raw_string(line, 0);
            }
            // r#"..."# raw string, or r#ident raw identifier
            (Some('r'), Some('#')) => match raw_opener_hashes(after_first) {
                Some(hashes) => {
                    self.bump(); // r
                    for _ in 0..=hashes {
                        self.bump(); // the #s and the opening quote
                    }
                    self.raw_string(line, hashes);
                }
                None => {
                    // r#ident — skip the prefix, lex the word itself.
                    self.bump(); // r
                    while self.peek() == Some('#') {
                        self.bump();
                    }
                    self.ident(line);
                }
            },
            _ => self.ident(line),
        }
    }

    fn raw_string(&mut self, line: u32, hashes: usize) {
        let mut value = String::new();
        'outer: loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    // Need exactly `hashes` following #s to close.
                    let mut it = self.chars.clone();
                    for _ in 0..hashes {
                        if it.next().map(|(_, c)| c) != Some('#') {
                            value.push('"');
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                Some(c) => value.push(c),
            }
        }
        self.push(TokenKind::Str(value), line);
    }

    /// At a `'`: lifetime (`'a`), loop label (`'outer`), or char literal
    /// (`'x'`, `'\n'`). Rule: `'` + ident-start + no closing `'` right
    /// after the identifier ⇒ lifetime.
    fn lifetime_or_char(&mut self, line: u32) {
        // Look ahead without consuming: 'X where X is ident-start?
        let mut it = self.chars.clone();
        it.next(); // the quote
        let first = it.next().map(|(_, c)| c);
        if let Some(c) = first {
            if c == '_' || c.is_alphabetic() {
                // Scan the identifier; if it ends with ', it's a char like 'a'.
                let mut saw_quote = false;
                for (_, c2) in it {
                    if c2 == '_' || c2.is_alphanumeric() {
                        continue;
                    }
                    saw_quote = c2 == '\'';
                    break;
                }
                if !saw_quote {
                    // Lifetime / label: consume ' and the identifier.
                    self.bump();
                    while let Some(c2) = self.peek() {
                        if c2 == '_' || c2.is_alphanumeric() {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Lifetime, line);
                    return;
                }
            }
        }
        self.char_literal(line);
    }

    /// At the opening `'` of a char literal.
    fn char_literal(&mut self, line: u32) {
        self.bump(); // '
        match self.bump() {
            Some('\\') => {
                self.bump(); // the escaped char (enough for \n, \', \\ ...)
                // \x41 and \u{..} have more; consume to the closing quote.
                while let Some(c) = self.peek() {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::CharLit, line);
                return;
            }
            Some(_) => {}
            None => return,
        }
        if self.peek() == Some('\'') {
            self.bump();
        }
        self.push(TokenKind::CharLit, line);
    }

    fn number(&mut self) {
        let line = self.line;
        // Leading digits (incl. 0x/0b/0o bodies and `_` separators).
        let radix_prefix = {
            let mut it = self.chars.clone();
            let first = it.next().map(|(_, c)| c);
            let second = it.next().map(|(_, c)| c);
            first == Some('0') && matches!(second, Some('x' | 'b' | 'o'))
        };
        self.bump();
        if radix_prefix {
            self.bump();
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                self.bump();
            } else if c == '.' && !radix_prefix {
                // Only a fractional point when a digit follows (else it's
                // a method call like `1.max(2)` or a range `0..n`).
                match self.peek2() {
                    Some(d) if d.is_ascii_digit() => {
                        self.bump();
                    }
                    _ => break,
                }
            } else if (c == '+' || c == '-') && !radix_prefix {
                // Exponent sign: only inside `1e-3` shapes.
                let prev_is_e = {
                    let upto = &self.src[..self.offset()];
                    upto.ends_with(['e', 'E'])
                };
                if prev_is_e {
                    self.bump();
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, line);
    }

    fn offset(&mut self) -> usize {
        self.chars
            .peek()
            .map(|&(i, _)| i)
            .unwrap_or(self.src.len())
    }

    fn ident(&mut self, line: u32) {
        let start = self.offset();
        while let Some(c) = self.peek() {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let end = self.offset();
        self.push(TokenKind::Ident(self.src[start..end].to_string()), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    fn strings(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Str(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn idents_and_punct_with_lines() {
        let toks = lex("fn main() {\n    x.y();\n}");
        assert_eq!(toks[0].kind, TokenKind::Ident("fn".into()));
        assert_eq!(toks[1].kind, TokenKind::Ident("main".into()));
        // find the `.` and check its line
        let dot = toks.iter().find(|t| t.kind.is_punct('.')).unwrap();
        assert_eq!(dot.line, 2);
    }

    #[test]
    fn fn_keyword_is_an_ident() {
        assert_eq!(idents("fn f() {}"), vec!["fn", "f"]);
    }

    #[test]
    fn cooked_string_with_escapes() {
        assert_eq!(strings(r#"let s = "a\"b\n";"#), vec!["a\"b\n"]);
    }

    #[test]
    fn raw_and_byte_strings() {
        assert_eq!(strings(r###"let s = r#"raw "inner" text"#;"###), vec![r#"raw "inner" text"#]);
        assert_eq!(strings(r#"let b = b"bytes";"#), vec!["bytes"]);
        assert_eq!(strings("let r = r\"plain raw\";"), vec!["plain raw"]);
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::CharLit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn numbers_swallow_their_dots() {
        let toks = lex("let x = 1.5; let y = 0..10; let z = 1.max(2); let h = 0xFF_u32;");
        // The only '.' puncts must be the range's two and 1.max's one.
        let dots = toks.iter().filter(|t| t.kind.is_punct('.')).count();
        assert_eq!(dots, 3);
        assert_eq!(toks.iter().filter(|t| t.kind == TokenKind::Number).count(), 6);
    }

    #[test]
    fn comments_line_and_block() {
        let toks = lex("a // trailing note\n/* block /* nested */ still */ b");
        assert_eq!(
            toks.iter().filter_map(|t| t.kind.ident()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert!(toks
            .iter()
            .any(|t| matches!(&t.kind, TokenKind::LineComment(c) if c.trim() == "trailing note")));
    }

    #[test]
    fn string_in_comment_is_not_a_string() {
        assert!(strings("// not a \"string\" here").is_empty());
    }

    #[test]
    fn code_in_string_is_not_code() {
        assert_eq!(idents(r#"let s = "x.unwrap()";"#), vec!["let", "s"]);
    }

    #[test]
    fn raw_ident() {
        assert_eq!(idents("let r#async = 1;"), vec!["let", "async"]);
    }

    #[test]
    fn br_prefixed_idents_are_not_raw_strings() {
        // Regression: identifiers starting with `br` must lex whole.
        assert_eq!(idents("while broken { break; }"), vec!["while", "broken", "break"]);
        assert_eq!(idents("let bridge = br; brand()"), vec!["let", "bridge", "br", "brand"]);
        // ...while genuine byte raw strings still lex as strings.
        assert_eq!(strings(r#"let x = br"bytes";"#), vec!["bytes"]);
        assert_eq!(strings(r###"let y = br##"raw bytes"##;"###), vec!["raw bytes"]);
    }

    #[test]
    fn tokens_inside_raw_strings_stay_inert() {
        // Nothing inside a raw string may surface as an identifier a
        // rule could match — only the Str token carries the contents.
        let src = r###"let s = r#"x.unwrap() thread::sleep mpsc::channel()"#;"###;
        assert_eq!(idents(src), vec!["let", "s"]);
        assert_eq!(strings(src), vec!["x.unwrap() thread::sleep mpsc::channel()"]);
        // Inner quote/hash runs shorter than the delimiter stay inside.
        assert_eq!(strings(r###"r##"a "# b"##"###), vec![r##"a "# b"##]);
    }

    #[test]
    fn tokens_inside_nested_block_comments_stay_inert() {
        let src = "/* outer /* x.unwrap() \"str\" */ still comment */ after";
        assert_eq!(idents(src), vec!["after"]);
        assert!(strings(src).is_empty());
    }
}
