//! Findings and their two renderings: rustc-style text and JSON lines.

use simba_telemetry::escape_json;
use std::fmt::Write as _;

/// One finding: a rule violation at a location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule id (`hygiene.unwrap`, `telemetry.unknown-point`, ...).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// One-sentence statement of the problem.
    pub message: String,
    /// Optional fix hint (rendered as `= help:`).
    pub help: Option<String>,
    /// Covered by a well-formed `// simba-analyze: allow(...)` waiver.
    /// Suppressed findings stay in the report (JSON keeps them, text
    /// counts them) but do not fail the run.
    pub suppressed: bool,
}

impl Finding {
    /// Constructs an unsuppressed finding.
    pub fn new(
        rule: &'static str,
        file: impl Into<String>,
        line: u32,
        message: impl Into<String>,
        help: Option<String>,
    ) -> Self {
        Finding {
            rule,
            file: file.into(),
            line,
            message: message.into(),
            help,
            suppressed: false,
        }
    }

    /// Severity in the stable JSON schema. Every current rule is an
    /// `error` (the run fails while any is unsuppressed); the field
    /// exists so adding a `warning` tier later cannot break consumers.
    pub fn severity(&self) -> &'static str {
        "error"
    }

    /// rustc-style rendering:
    ///
    /// ```text
    /// error[hygiene.unwrap]: `.unwrap()` outside test code
    ///   --> crates/core/src/wal.rs:405
    ///   = help: handle the error, or suppress with
    ///           `// simba-analyze: allow(hygiene.unwrap): <reason>`
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}[{}]: {}", self.severity(), self.rule, self.message);
        let _ = writeln!(out, "  --> {}:{}", self.file, self.line);
        if let Some(help) = &self.help {
            let _ = writeln!(out, "  = help: {help}");
        }
        let _ = writeln!(
            out,
            "  = note: suppress with `// simba-analyze: allow({}): <reason>`",
            self.rule
        );
        out
    }

    /// One JSON object (no trailing newline). Hand-rolled like the rest of
    /// the workspace — no serde offline. Stable schema (documented in
    /// `crates/analyze/README.md`): `rule`, `severity`, `file`, `line`,
    /// `suppressed` always present in that order, then `message` and an
    /// optional `help`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"suppressed\":{},\"message\":\"{}\"",
            escape_json(self.rule),
            self.severity(),
            escape_json(&self.file),
            self.line,
            self.suppressed,
            escape_json(&self.message)
        );
        if let Some(help) = &self.help {
            let _ = write!(out, ",\"help\":\"{}\"", escape_json(help));
        }
        out.push('}');
        out
    }
}

/// Number of findings not covered by a waiver — the count that decides
/// the exit status.
pub fn unsuppressed_count(findings: &[Finding]) -> usize {
    findings.iter().filter(|f| !f.suppressed).count()
}

/// Renders a full report in the requested format. JSON keeps every
/// finding (suppressed ones flagged); text prints only unsuppressed
/// findings and counts the waived ones in the summary line.
pub fn render_report(findings: &[Finding], json: bool) -> String {
    if json {
        let mut out = String::from("[");
        for (i, f) in findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            out.push_str(&f.render_json());
        }
        out.push_str(if findings.is_empty() { "]" } else { "\n]" });
        out.push('\n');
        out
    } else {
        let mut out = String::new();
        let active: Vec<&Finding> = findings.iter().filter(|f| !f.suppressed).collect();
        let waived = findings.len() - active.len();
        for f in &active {
            out.push_str(&f.render_text());
            out.push('\n');
        }
        let waived_note = match waived {
            0 => String::new(),
            1 => " (1 finding waived by allow directives)".to_string(),
            n => format!(" ({n} findings waived by allow directives)"),
        };
        if active.is_empty() {
            let _ = writeln!(out, "simba-analyze: workspace clean{waived_note}");
        } else {
            let _ = writeln!(
                out,
                "simba-analyze: {} finding{}{}",
                active.len(),
                if active.len() == 1 { "" } else { "s" },
                waived_note
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: "hygiene.unwrap",
            file: "crates/core/src/wal.rs".into(),
            line: 405,
            message: "`.unwrap()` outside test code".into(),
            help: Some("handle the error".into()),
            suppressed: false,
        }
    }

    #[test]
    fn text_has_rule_location_and_suppression_note() {
        let text = finding().render_text();
        assert!(text.contains("error[hygiene.unwrap]"), "{text}");
        assert!(text.contains("--> crates/core/src/wal.rs:405"), "{text}");
        assert!(text.contains("= help: handle the error"), "{text}");
        assert!(text.contains("allow(hygiene.unwrap)"), "{text}");
    }

    #[test]
    fn json_schema_is_stable() {
        let json = finding().render_json();
        assert!(
            json.starts_with(
                "{\"rule\":\"hygiene.unwrap\",\"severity\":\"error\",\"file\":\"crates/core/src/wal.rs\",\"line\":405,\"suppressed\":false,\"message\":"
            ),
            "{json}"
        );
        let mut waived = finding();
        waived.suppressed = true;
        assert!(waived.render_json().contains("\"suppressed\":true"));
    }

    #[test]
    fn empty_report() {
        assert_eq!(render_report(&[], true), "[]\n");
        assert!(render_report(&[], false).contains("workspace clean"));
    }

    #[test]
    fn suppressed_findings_kept_in_json_counted_in_text() {
        let mut waived = finding();
        waived.suppressed = true;
        let report = render_report(std::slice::from_ref(&waived), true);
        assert!(report.contains("\"suppressed\":true"), "{report}");
        let text = render_report(std::slice::from_ref(&waived), false);
        assert!(text.contains("workspace clean (1 finding waived"), "{text}");
        assert!(!text.contains("error["), "{text}");
        assert_eq!(unsuppressed_count(std::slice::from_ref(&waived)), 0);
    }
}
