//! Findings and their two renderings: rustc-style text and JSON lines.

use simba_telemetry::escape_json;
use std::fmt::Write as _;

/// One finding: a rule violation at a location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Stable rule id (`hygiene.unwrap`, `telemetry.unknown-point`, ...).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// One-sentence statement of the problem.
    pub message: String,
    /// Optional fix hint (rendered as `= help:`).
    pub help: Option<String>,
}

impl Finding {
    /// rustc-style rendering:
    ///
    /// ```text
    /// error[hygiene.unwrap]: `.unwrap()` outside test code
    ///   --> crates/core/src/wal.rs:405
    ///   = help: handle the error, or suppress with
    ///           `// simba-analyze: allow(hygiene.unwrap): <reason>`
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "error[{}]: {}", self.rule, self.message);
        let _ = writeln!(out, "  --> {}:{}", self.file, self.line);
        if let Some(help) = &self.help {
            let _ = writeln!(out, "  = help: {help}");
        }
        let _ = writeln!(
            out,
            "  = note: suppress with `// simba-analyze: allow({}): <reason>`",
            self.rule
        );
        out
    }

    /// One JSON object (no trailing newline). Hand-rolled like the rest of
    /// the workspace — no serde offline.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"",
            escape_json(self.rule),
            escape_json(&self.file),
            self.line,
            escape_json(&self.message)
        );
        if let Some(help) = &self.help {
            let _ = write!(out, ",\"help\":\"{}\"", escape_json(help));
        }
        out.push('}');
        out
    }
}

/// Renders a full report in the requested format, returning the text and
/// whether the run is clean.
pub fn render_report(findings: &[Finding], json: bool) -> String {
    if json {
        let mut out = String::from("[");
        for (i, f) in findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            out.push_str(&f.render_json());
        }
        out.push_str(if findings.is_empty() { "]" } else { "\n]" });
        out.push('\n');
        out
    } else {
        let mut out = String::new();
        for f in findings {
            out.push_str(&f.render_text());
            out.push('\n');
        }
        if findings.is_empty() {
            out.push_str("simba-analyze: workspace clean\n");
        } else {
            let _ = writeln!(
                out,
                "simba-analyze: {} finding{}",
                findings.len(),
                if findings.len() == 1 { "" } else { "s" }
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: "hygiene.unwrap",
            file: "crates/core/src/wal.rs".into(),
            line: 405,
            message: "`.unwrap()` outside test code".into(),
            help: Some("handle the error".into()),
        }
    }

    #[test]
    fn text_has_rule_location_and_suppression_note() {
        let text = finding().render_text();
        assert!(text.contains("error[hygiene.unwrap]"), "{text}");
        assert!(text.contains("--> crates/core/src/wal.rs:405"), "{text}");
        assert!(text.contains("= help: handle the error"), "{text}");
        assert!(text.contains("allow(hygiene.unwrap)"), "{text}");
    }

    #[test]
    fn json_is_parseable_shape() {
        let json = finding().render_json();
        assert!(json.starts_with("{\"rule\":\"hygiene.unwrap\""), "{json}");
        assert!(json.contains("\"line\":405"), "{json}");
    }

    #[test]
    fn empty_report() {
        assert_eq!(render_report(&[], true), "[]\n");
        assert!(render_report(&[], false).contains("workspace clean"));
    }
}
