//! The rule set: turns per-file facts into findings, applies
//! suppressions, and runs the workspace-level contracts (registered but
//! never emitted, README table sync, `#![forbid(unsafe_code)]` on every
//! crate root).

use crate::diag::Finding;
use crate::scan::{ApiKind, FileFacts, Suppression};
use crate::workspace::SourceFile;
use simba_telemetry::points::{self, PointKind};
use std::collections::{BTreeMap, BTreeSet};

/// Every rule id the pass can emit, with a one-line description.
/// (Rendered into the README's rules table; `allow(...)` directives are
/// validated against this list.)
pub const RULES: &[(&str, &str)] = &[
    (
        "telemetry.unknown-point",
        "a telemetry name is not registered in crates/telemetry/src/points.rs",
    ),
    (
        "telemetry.misspelled-point",
        "a telemetry name is one edit away from a registered point",
    ),
    (
        "telemetry.unemitted-point",
        "a registered point is never referenced outside test code",
    ),
    (
        "telemetry.kind-mismatch",
        "a registered name is used through the wrong API (e.g. counter vs gauge)",
    ),
    (
        "telemetry.naming",
        "an emitted name is not dotted lowercase scope.snake_case, or its scope is not declared by the emitting crate",
    ),
    (
        "hygiene.unwrap",
        ".unwrap()/.expect() outside test code in core, runtime, gateway, net, or ledger",
    ),
    (
        "hygiene.sleep-in-async",
        "std::thread::sleep inside an async fn or async block",
    ),
    (
        "hygiene.unbounded-channel",
        "an unbounded channel constructor outside the sim crate",
    ),
    (
        "hygiene.shared-mutability",
        "Rc or RefCell outside test code in core, runtime, or ledger (shard and worker state must stay Send)",
    ),
    (
        "hygiene.forbid-unsafe",
        "a workspace crate root is missing #![forbid(unsafe_code)]",
    ),
    (
        "concurrency.lock-order",
        "a cycle in the workspace lock-order graph (two sites acquire the same locks in conflicting orders)",
    ),
    (
        "concurrency.blocking-under-guard",
        "blocking I/O, commit, thread::sleep, channel recv, or .await reached (directly or one call deep) while a Mutex/RwLock guard is live",
    ),
    (
        "durability.ack-before-commit",
        "an ack-classified call or construction on a path with no dominating commit-classified call (§4.2.1 durable-before-ack; registry in crates/analyze/src/contracts.rs)",
    ),
    (
        "docs.points-table",
        "the README Observability table is out of sync with points.rs",
    ),
    (
        "suppression.missing-reason",
        "a simba-analyze: allow(...) directive without a reason",
    ),
    (
        "suppression.unknown-rule",
        "a simba-analyze: allow(...) directive naming no known rule",
    ),
];

/// Crates whose non-test code must not call `.unwrap()` / `.expect()` —
/// the layers the paper's watchdog/self-stabilization stack depends on
/// staying up.
pub const HYGIENE_UNWRAP_CRATES: &[&str] = &["core", "runtime", "gateway", "net", "ledger"];

/// Crates exempt from every telemetry rule (the vocabulary itself).
pub const TELEMETRY_EXEMPT_CRATES: &[&str] = &["telemetry"];

/// Crates allowed to build unbounded channels (simulation decks model
/// infinite queues deliberately).
pub const UNBOUNDED_EXEMPT_CRATES: &[&str] = &["sim"];

/// Crates whose non-test code must not use `Rc` / `RefCell`: their
/// futures run on shard threads, so shared state must be `Send`
/// (`Arc`/`Mutex` or per-shard ownership). Single-threaded interior
/// mutability here reintroduces the !Send types the thread-per-shard
/// executor migration removed.
pub const SHARED_MUT_CRATES: &[&str] = &["core", "runtime", "ledger"];

fn is_known_rule(rule: &str) -> bool {
    RULES.iter().any(|(id, _)| *id == rule)
}

/// Levenshtein distance with early exit above `cap`.
pub fn edit_distance(a: &str, b: &str, cap: usize) -> usize {
    if a == b {
        return 0;
    }
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    if a.len().abs_diff(b.len()) > cap {
        return cap + 1;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        let mut row_min = cur[0];
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            row_min = row_min.min(cur[j + 1]);
        }
        if row_min > cap {
            return cap + 1;
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

fn nearest_registered(name: &str) -> Option<(&'static str, usize)> {
    points::POINTS
        .iter()
        .map(|def| (def.name, edit_distance(name, def.name, 2)))
        .min_by_key(|&(_, d)| d)
}

fn crate_scopes(crate_name: &str) -> Option<&'static [&'static str]> {
    points::CRATE_SCOPES
        .iter()
        .find(|(c, _)| *c == crate_name)
        .map(|(_, scopes)| *scopes)
}

fn api_matches_kind(api: ApiKind, kinds: &[PointKind]) -> bool {
    match api {
        ApiKind::Counter => kinds.contains(&PointKind::Counter),
        ApiKind::Gauge => kinds.contains(&PointKind::Gauge),
        ApiKind::Histogram => kinds.contains(&PointKind::Histogram),
        ApiKind::Span => kinds.contains(&PointKind::Span),
        ApiKind::Summary => kinds.contains(&PointKind::Summary),
        // Spans emit events under their own name, so an event read or
        // emission of a span name is consistent.
        ApiKind::Event | ApiKind::NameCmp => {
            kinds.contains(&PointKind::Event) || kinds.contains(&PointKind::Span)
        }
    }
}

fn name_shape_ok(name: &str) -> bool {
    let mut segments = name.split('.');
    let Some(first) = segments.next() else {
        return false;
    };
    let seg_ok = |s: &str| {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && s.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    };
    let mut rest = 0;
    for s in segments {
        if !seg_ok(s) {
            return false;
        }
        rest += 1;
    }
    seg_ok(first) && rest >= 1
}

/// Runs every per-file rule over `facts`, before suppression filtering.
pub fn file_findings(file: &SourceFile, facts: &FileFacts) -> Vec<Finding> {
    let mut findings = Vec::new();
    let crate_name = file.crate_name.as_str();
    let telemetry_checked = !TELEMETRY_EXEMPT_CRATES.contains(&crate_name);

    if telemetry_checked {
        for site in &facts.telemetry {
            if let Some(def) = points::find(&site.name) {
                if !api_matches_kind(site.api, def.kinds) {
                    let kinds: Vec<&str> = def.kinds.iter().map(|k| k.label()).collect();
                    findings.push(Finding {
                suppressed: false,
                        rule: "telemetry.kind-mismatch",
                        file: file.rel_path.clone(),
                        line: site.line,
                        message: format!(
                            "`{}` is registered as {} but used as a {} here",
                            site.name,
                            kinds.join("+"),
                            site.api.label()
                        ),
                        help: Some(
                            "use the registered kind, or widen the entry in crates/telemetry/src/points.rs".into(),
                        ),
                    });
                }
            } else {
                // Unregistered. Only names plausibly in our namespace are
                // findings: a declared (or near-declared) scope, or one
                // edit away from a registered point. Driver tests use
                // throwaway names like "x" — those are fine.
                let scope = site.name.split('.').next().unwrap_or_default();
                let dotted = site.name.contains('.');
                let scope_known = points::SCOPES.contains(&scope)
                    || points::SCOPES
                        .iter()
                        .any(|s| edit_distance(scope, s, 1) <= 1);
                let nearest = nearest_registered(&site.name);
                if let Some((suggestion, d)) = nearest {
                    if d <= 1 {
                        findings.push(Finding {
                suppressed: false,
                            rule: "telemetry.misspelled-point",
                            file: file.rel_path.clone(),
                            line: site.line,
                            message: format!(
                                "`{}` is not registered, but is one edit away from `{}`",
                                site.name, suggestion
                            ),
                            help: Some(format!("did you mean `{suggestion}`?")),
                        });
                        continue;
                    }
                }
                if dotted && scope_known {
                    findings.push(Finding {
                suppressed: false,
                        rule: "telemetry.unknown-point",
                        file: file.rel_path.clone(),
                        line: site.line,
                        message: format!(
                            "telemetry name `{}` is not in the registry",
                            site.name
                        ),
                        help: Some(
                            "register it in crates/telemetry/src/points.rs (name, kind, scope, doc)".into(),
                        ),
                    });
                } else if !site.in_test && site.api != ApiKind::NameCmp {
                    // A production emission outside every known scope is a
                    // naming violation even when we can't guess the intent.
                    findings.push(Finding {
                suppressed: false,
                        rule: "telemetry.naming",
                        file: file.rel_path.clone(),
                        line: site.line,
                        message: format!(
                            "emitted name `{}` has no declared scope (expected `scope.snake_case`)",
                            site.name
                        ),
                        help: Some(format!(
                            "declared scopes: {}",
                            points::SCOPES.join(", ")
                        )),
                    });
                }
            }

            // Shape + crate-scope convention for production emissions.
            if !site.in_test && site.api != ApiKind::NameCmp {
                if !name_shape_ok(&site.name) {
                    findings.push(Finding {
                suppressed: false,
                        rule: "telemetry.naming",
                        file: file.rel_path.clone(),
                        line: site.line,
                        message: format!(
                            "`{}` is not dotted lowercase `scope.snake_case`",
                            site.name
                        ),
                        help: None,
                    });
                } else if let Some(scopes) = crate_scopes(crate_name) {
                    let scope = site.name.split('.').next().unwrap_or_default();
                    if !scopes.contains(&scope) {
                        findings.push(Finding {
                suppressed: false,
                            rule: "telemetry.naming",
                            file: file.rel_path.clone(),
                            line: site.line,
                            message: format!(
                                "crate `{}` emits `{}`, but declares scope{} {}",
                                crate_name,
                                site.name,
                                if scopes.len() == 1 { "" } else { "s" },
                                if scopes.is_empty() {
                                    "none (it must not emit telemetry)".to_string()
                                } else {
                                    scopes
                                        .iter()
                                        .map(|s| format!("`{s}.`"))
                                        .collect::<Vec<_>>()
                                        .join(", ")
                                }
                            ),
                            help: Some(
                                "move the emission, or widen the crate's scopes in points.rs CRATE_SCOPES".into(),
                            ),
                        });
                    }
                }
            }
        }
    }

    for u in &facts.unwraps {
        if !u.in_test && HYGIENE_UNWRAP_CRATES.contains(&crate_name) {
            findings.push(Finding {
                suppressed: false,
                rule: "hygiene.unwrap",
                file: file.rel_path.clone(),
                line: u.line,
                message: format!(
                    "`.{}()` outside test code in dependability-critical crate `{}`",
                    u.method, crate_name
                ),
                help: Some(
                    "return a typed error, recover (e.g. PoisonError::into_inner), or suppress with a reason".into(),
                ),
            });
        }
    }

    for s in &facts.sleeps_in_async {
        findings.push(Finding {
                suppressed: false,
            rule: "hygiene.sleep-in-async",
            file: file.rel_path.clone(),
            line: s.line,
            message: "`thread::sleep` blocks the executor inside async code".into(),
            help: Some("use `tokio::time::sleep(..).await` instead".into()),
        });
    }

    for u in &facts.unbounded {
        if !u.in_test && !UNBOUNDED_EXEMPT_CRATES.contains(&crate_name) {
            findings.push(Finding {
                suppressed: false,
                rule: "hygiene.unbounded-channel",
                file: file.rel_path.clone(),
                line: u.line,
                message: format!("`{}` has no backpressure", u.what),
                help: Some(
                    "use a bounded channel and account for drops, like MabHost's notice stream".into(),
                ),
            });
        }
    }

    for s in &facts.shared_mut {
        if !s.in_test && SHARED_MUT_CRATES.contains(&crate_name) {
            findings.push(Finding {
                suppressed: false,
                rule: "hygiene.shared-mutability",
                file: file.rel_path.clone(),
                line: s.line,
                message: format!(
                    "`{}` outside test code in `{}` — shard futures must stay `Send`",
                    s.what, crate_name
                ),
                help: Some(
                    "use Arc/Mutex (or keep the state owned by one shard), or suppress with a reason".into(),
                ),
            });
        }
    }

    for s in &facts.suppressions {
        if s.rules.is_empty() || s.rules.iter().all(|r| !is_known_rule(r)) {
            findings.push(Finding {
                suppressed: false,
                rule: "suppression.unknown-rule",
                file: file.rel_path.clone(),
                line: s.line,
                message: format!(
                    "suppression names no known rule (got: {})",
                    if s.rules.is_empty() {
                        "nothing".to_string()
                    } else {
                        s.rules.join(", ")
                    }
                ),
                help: Some("rule ids are listed in the README's Static analysis section".into()),
            });
        } else if s.reason.is_empty() {
            findings.push(Finding {
                suppressed: false,
                rule: "suppression.missing-reason",
                file: file.rel_path.clone(),
                line: s.line,
                message: "suppression has no reason".into(),
                help: Some(
                    "write `// simba-analyze: allow(<rule>): <why this is safe here>`".into(),
                ),
            });
        }
    }

    findings
}

/// Marks findings covered by a well-formed suppression on the same line
/// or the line above. Suppression-rule findings are never suppressible.
/// (Marked findings stay in the report — the JSON keeps them with
/// `"suppressed":true` — but do not fail the run.)
pub fn mark_suppressed(findings: &mut [Finding], suppressions: &[Suppression]) {
    for f in findings {
        if f.rule.starts_with("suppression.") {
            continue;
        }
        f.suppressed = suppressions.iter().any(|s| {
            !s.reason.is_empty()
                && (s.line == f.line || s.line + 1 == f.line)
                && s.rules.iter().any(|r| r == f.rule)
        });
    }
}

/// Drops findings covered by a well-formed suppression on the same line
/// or the line above. Suppression-rule findings are never suppressible.
pub fn apply_suppressions(findings: Vec<Finding>, suppressions: &[Suppression]) -> Vec<Finding> {
    let mut findings = findings;
    mark_suppressed(&mut findings, suppressions);
    findings.retain(|f| !f.suppressed);
    findings
}

/// Workspace-level telemetry check: every registered point must be
/// referenced outside test code somewhere in the workspace. Span-implied
/// `<name>_ms` histograms count their span as the emitter.
pub fn unemitted_points(
    all_sites: &[(String, ApiKind, bool)],
    points_rs: Option<&FileFacts>,
    points_rs_path: &str,
) -> Vec<Finding> {
    let emitted: BTreeSet<&str> = all_sites
        .iter()
        .filter(|(_, api, in_test)| !in_test && *api != ApiKind::NameCmp)
        .map(|(name, _, _)| name.as_str())
        .collect();
    // Scopes whose production names are built at runtime (e.g.
    // `net.{channel}.{suffix}`) have no prod literal to find; any
    // reference at all — test assertions included — counts.
    let referenced: BTreeSet<&str> = all_sites.iter().map(|(name, _, _)| name.as_str()).collect();
    let line_of: BTreeMap<&str, u32> = points_rs
        .map(|facts| {
            facts
                .string_literals
                .iter()
                .map(|(s, line)| (s.as_str(), *line))
                .collect()
        })
        .unwrap_or_default();

    let mut findings = Vec::new();
    for def in points::POINTS {
        let scope = def.name.split('.').next().unwrap_or_default();
        let mut seen = if points::DYNAMIC_SCOPES.contains(&scope) {
            referenced.contains(def.name)
        } else {
            emitted.contains(def.name)
        };
        if !seen && def.name.ends_with("_ms") {
            // `t.span("x", ..)` implicitly records histogram `x_ms`.
            let base = &def.name[..def.name.len() - 3];
            seen = points::find(base)
                .is_some_and(|b| b.kinds.contains(&PointKind::Span))
                && emitted.contains(base);
        }
        if !seen {
            findings.push(Finding {
                suppressed: false,
                rule: "telemetry.unemitted-point",
                file: points_rs_path.to_string(),
                line: line_of.get(def.name).copied().unwrap_or(1),
                message: format!(
                    "`{}` is registered but never referenced outside test code",
                    def.name
                ),
                help: Some("emit it, or remove the registry entry".into()),
            });
        }
    }
    findings
}

/// Checks a crate root for `#![forbid(unsafe_code)]`.
pub fn forbid_unsafe_finding(file: &SourceFile, facts: &FileFacts) -> Option<Finding> {
    if file.is_crate_root && !facts.has_forbid_unsafe {
        Some(Finding {
            suppressed: false,
            rule: "hygiene.forbid-unsafe",
            file: file.rel_path.clone(),
            line: 1,
            message: format!(
                "crate `{}` root is missing `#![forbid(unsafe_code)]`",
                file.crate_name
            ),
            help: Some("every first-party crate builds without unsafe; forbid it".into()),
        })
    } else {
        None
    }
}

/// The marker lines the README table must sit between.
pub const TABLE_BEGIN: &str = "<!-- simba-analyze:points-table:begin (generated; run `cargo run -p simba-analyze -- points` and paste) -->";
/// Closing marker.
pub const TABLE_END: &str = "<!-- simba-analyze:points-table:end -->";

/// Verifies the README's generated Observability table matches
/// [`points::markdown_table`].
pub fn check_readme_table(readme: &str, readme_path: &str) -> Vec<Finding> {
    let expected = points::markdown_table();
    let begin = readme.find(TABLE_BEGIN);
    let end = readme.find(TABLE_END);
    let (Some(b), Some(e)) = (begin, end) else {
        return vec![Finding {
            suppressed: false,
            rule: "docs.points-table",
            file: readme_path.to_string(),
            line: 1,
            message: "README has no generated points-table markers".into(),
            help: Some(format!(
                "add `{TABLE_BEGIN}` and `{TABLE_END}` around the Observability table"
            )),
        }];
    };
    if e < b {
        return vec![Finding {
            suppressed: false,
            rule: "docs.points-table",
            file: readme_path.to_string(),
            line: 1,
            message: "README points-table markers are reversed".into(),
            help: None,
        }];
    }
    let body = readme[b + TABLE_BEGIN.len()..e].trim();
    if body != expected.trim() {
        let line = readme[..b].lines().count() as u32 + 1;
        return vec![Finding {
            suppressed: false,
            rule: "docs.points-table",
            file: readme_path.to_string(),
            line,
            message: "README Observability table is out of sync with points.rs".into(),
            help: Some("run `cargo run -p simba-analyze -- points` and paste the output between the markers".into()),
        }];
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("abc", "abc", 2), 0);
        assert_eq!(edit_distance("abc", "abd", 2), 1);
        assert_eq!(edit_distance("abc", "ab", 2), 1);
        assert_eq!(edit_distance("dialog_dismissed", "dialogs_dismissed", 2), 1);
        assert!(edit_distance("abc", "xyz", 2) > 2);
        assert!(edit_distance("a", "abcdef", 2) > 2);
    }

    #[test]
    fn name_shapes() {
        assert!(name_shape_ok("mab.routed"));
        assert!(name_shape_ok("net.im.latency_ms"));
        assert!(!name_shape_ok("mab"));
        assert!(!name_shape_ok("Mab.routed"));
        assert!(!name_shape_ok("mab.Routed"));
        assert!(!name_shape_ok("mab..x"));
        assert!(!name_shape_ok("mab.route-d"));
        assert!(!name_shape_ok("9mab.x"));
    }

    #[test]
    fn every_rule_id_is_kebab_dotted() {
        for (id, _) in RULES {
            assert!(id
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '.' || c == '-'));
        }
    }
}
