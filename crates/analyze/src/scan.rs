//! Per-file fact extraction: telemetry call sites, hygiene facts,
//! suppression directives, and `#[cfg(test)]` / `async fn` regions.
//!
//! The scanner reports *facts*; deciding which facts are findings (and
//! which crates each rule applies to) is `rules`' job.

use crate::lexer::{lex, Token, TokenKind};

/// Which telemetry API referenced a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiKind {
    /// `Event::new("...")` or the `.event("...")` builder helper.
    Event,
    /// `.counter("...")` — register or snapshot lookup.
    Counter,
    /// `.gauge("...")`.
    Gauge,
    /// `.histogram("...")`.
    Histogram,
    /// `.span("...")` — emits an event plus a `<name>_ms` histogram.
    Span,
    /// `.observe("...", v)` / `.observe_duration("...", d)` /
    /// `.summary("...")` — the sim-side `MetricSet` summary API.
    Summary,
    /// `.name == "..."` — an event-name comparison (read-only; common in
    /// test assertions, where misspellings silently never match).
    NameCmp,
}

impl ApiKind {
    /// Short label for diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            ApiKind::Event => "event",
            ApiKind::Counter => "counter",
            ApiKind::Gauge => "gauge",
            ApiKind::Histogram => "histogram",
            ApiKind::Span => "span",
            ApiKind::Summary => "summary",
            ApiKind::NameCmp => "event-name comparison",
        }
    }
}

/// One telemetry name reference.
#[derive(Debug, Clone)]
pub struct TelemetrySite {
    /// The string literal as written.
    pub name: String,
    /// 1-based line.
    pub line: u32,
    /// Which API shape referenced it.
    pub api: ApiKind,
    /// Inside `#[cfg(test)]` / `#[test]` code.
    pub in_test: bool,
}

/// A `.unwrap()` / `.expect(...)` call.
#[derive(Debug, Clone)]
pub struct UnwrapSite {
    /// 1-based line.
    pub line: u32,
    /// `"unwrap"` or `"expect"`.
    pub method: &'static str,
    /// Inside test code.
    pub in_test: bool,
}

/// A `thread::sleep` call lexically inside an `async fn` or async block.
#[derive(Debug, Clone)]
pub struct SleepSite {
    /// 1-based line.
    pub line: u32,
    /// Inside test code.
    pub in_test: bool,
}

/// An unbounded channel constructor.
#[derive(Debug, Clone)]
pub struct UnboundedSite {
    /// 1-based line.
    pub line: u32,
    /// What was called (for the message).
    pub what: &'static str,
    /// Inside test code.
    pub in_test: bool,
}

/// An `Rc<`/`RefCell<` (or `Rc::`/`RefCell::`) reference — single-thread
/// shared mutability, which pins the surrounding future to one thread.
#[derive(Debug, Clone)]
pub struct SharedMutSite {
    /// 1-based line.
    pub line: u32,
    /// `"Rc"` or `"RefCell"`.
    pub what: &'static str,
    /// Inside test code.
    pub in_test: bool,
}

/// A `// simba-analyze: allow(rule, ...): reason` directive. It covers
/// findings on its own line (trailing comment) and on the next line
/// (comment-above style).
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the comment is on.
    pub line: u32,
    /// Rule ids listed in `allow(...)`.
    pub rules: Vec<String>,
    /// The reason after the closing paren, if any.
    pub reason: String,
}

/// Everything extracted from one source file.
#[derive(Debug, Default)]
pub struct FileFacts {
    /// Telemetry name references.
    pub telemetry: Vec<TelemetrySite>,
    /// `.unwrap()` / `.expect()` calls.
    pub unwraps: Vec<UnwrapSite>,
    /// `thread::sleep` inside async code.
    pub sleeps_in_async: Vec<SleepSite>,
    /// Unbounded channel constructors.
    pub unbounded: Vec<UnboundedSite>,
    /// `Rc` / `RefCell` references.
    pub shared_mut: Vec<SharedMutSite>,
    /// Suppression directives.
    pub suppressions: Vec<Suppression>,
    /// The file carries `#![forbid(unsafe_code)]`.
    pub has_forbid_unsafe: bool,
    /// Every string literal in the file with its line (used to locate
    /// registry entries inside `points.rs` for unemitted-point reports).
    pub string_literals: Vec<(String, u32)>,
}

/// Scans one file. `whole_file_is_test` forces every fact to
/// `in_test = true` (integration-test files under `tests/`).
pub fn scan_source(source: &str, whole_file_is_test: bool) -> FileFacts {
    let tokens = lex(source);
    let in_test = test_regions(&tokens, whole_file_is_test);
    let in_async = async_regions(&tokens);

    let mut facts = FileFacts::default();

    for t in &tokens {
        if let TokenKind::LineComment(text) = &t.kind {
            if let Some(s) = parse_suppression(text, t.line) {
                facts.suppressions.push(s);
            }
        }
        if let TokenKind::Str(s) = &t.kind {
            facts.string_literals.push((s.clone(), t.line));
        }
    }

    // Comment-free view with back-pointers into the full stream.
    let code: Vec<(usize, &Token)> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment(_)))
        .collect();

    let ident_at = |i: usize| -> Option<&str> { code.get(i).and_then(|(_, t)| t.kind.ident()) };
    let punct_at =
        |i: usize, c: char| -> bool { code.get(i).is_some_and(|(_, t)| t.kind.is_punct(c)) };
    let str_at = |i: usize| -> Option<(&str, u32)> {
        code.get(i).and_then(|(_, t)| match &t.kind {
            TokenKind::Str(s) => Some((s.as_str(), t.line)),
            _ => None,
        })
    };

    for i in 0..code.len() {
        let (full_idx, tok) = code[i];
        let tested = in_test[full_idx];

        // `#![forbid(unsafe_code)]`
        if tok.kind.is_punct('#')
            && punct_at(i + 1, '!')
            && punct_at(i + 2, '[')
            && ident_at(i + 3) == Some("forbid")
            && punct_at(i + 4, '(')
            && ident_at(i + 5) == Some("unsafe_code")
        {
            facts.has_forbid_unsafe = true;
        }

        // `Event::new("...")`
        if tok.kind.ident() == Some("Event")
            && punct_at(i + 1, ':')
            && punct_at(i + 2, ':')
            && ident_at(i + 3) == Some("new")
            && punct_at(i + 4, '(')
        {
            if let Some((name, line)) = str_at(i + 5) {
                facts.telemetry.push(TelemetrySite {
                    name: name.to_string(),
                    line,
                    api: ApiKind::Event,
                    in_test: tested,
                });
            }
        }

        if tok.kind.is_punct('.') {
            // `.counter("...")` / `.gauge` / `.histogram` / `.span` / `.event`
            if let Some(method) = ident_at(i + 1) {
                let api = match method {
                    "counter" | "incr" | "add" => Some(ApiKind::Counter),
                    "gauge" => Some(ApiKind::Gauge),
                    "histogram" => Some(ApiKind::Histogram),
                    "span" => Some(ApiKind::Span),
                    "event" => Some(ApiKind::Event),
                    "observe" | "observe_duration" | "summary" | "summary_mut" => {
                        Some(ApiKind::Summary)
                    }
                    _ => None,
                };
                if let Some(api) = api {
                    if punct_at(i + 2, '(') {
                        if let Some((name, line)) = str_at(i + 3) {
                            facts.telemetry.push(TelemetrySite {
                                name: name.to_string(),
                                line,
                                api,
                                in_test: tested,
                            });
                        }
                    }
                }

                // `.name == "..."` event-name comparison.
                if method == "name"
                    && punct_at(i + 2, '=')
                    && punct_at(i + 3, '=')
                {
                    if let Some((name, line)) = str_at(i + 4) {
                        facts.telemetry.push(TelemetrySite {
                            name: name.to_string(),
                            line,
                            api: ApiKind::NameCmp,
                            in_test: tested,
                        });
                    }
                }

                // `.unwrap()` / `.expect(`
                if (method == "unwrap" || method == "expect") && punct_at(i + 2, '(') {
                    facts.unwraps.push(UnwrapSite {
                        line: code[i + 1].1.line,
                        method: if method == "unwrap" { "unwrap" } else { "expect" },
                        in_test: tested,
                    });
                }
            }
        }

        // `thread::sleep(` inside async code.
        if tok.kind.ident() == Some("thread")
            && punct_at(i + 1, ':')
            && punct_at(i + 2, ':')
            && ident_at(i + 3) == Some("sleep")
            && punct_at(i + 4, '(')
            && in_async[full_idx]
        {
            facts.sleeps_in_async.push(SleepSite {
                line: tok.line,
                in_test: tested,
            });
        }

        // `unbounded_channel(`
        if tok.kind.ident() == Some("unbounded_channel") && punct_at(i + 1, '(') {
            facts.unbounded.push(UnboundedSite {
                line: tok.line,
                what: "unbounded_channel()",
                in_test: tested,
            });
        }

        // `Rc<`, `Rc::`, `RefCell<`, `RefCell::` — both the type position
        // and the constructor path, so inferred `let x = Rc::new(..)`
        // bindings are caught too. (`use std::rc::Rc;` ends in `;` and
        // matches neither.)
        if let Some(what @ ("Rc" | "RefCell")) = tok.kind.ident() {
            let type_pos = punct_at(i + 1, '<');
            let path_pos = punct_at(i + 1, ':') && punct_at(i + 2, ':');
            if type_pos || path_pos {
                facts.shared_mut.push(SharedMutSite {
                    line: tok.line,
                    what: if what == "Rc" { "Rc" } else { "RefCell" },
                    in_test: tested,
                });
            }
        }

        // `mpsc::channel()` — std's zero-argument constructor is the
        // unbounded one (`sync_channel` and tokio's `channel(n)` take a
        // capacity).
        if tok.kind.ident() == Some("mpsc")
            && punct_at(i + 1, ':')
            && punct_at(i + 2, ':')
            && ident_at(i + 3) == Some("channel")
            && punct_at(i + 4, '(')
            && punct_at(i + 5, ')')
        {
            facts.unbounded.push(UnboundedSite {
                line: tok.line,
                what: "std::sync::mpsc::channel()",
                in_test: tested,
            });
        }
    }

    facts
}

/// Parses `simba-analyze: allow(rule-a, rule-b): reason` out of a line
/// comment's text. Returns `None` when the comment is not a directive at
/// all; a malformed directive still returns (with empty `rules` or
/// `reason`) so the rules layer can flag it rather than silently ignore.
fn parse_suppression(comment: &str, line: u32) -> Option<Suppression> {
    let text = comment.trim_start_matches(['/', '!']).trim();
    let rest = text.strip_prefix("simba-analyze:")?.trim();
    let rest = rest.strip_prefix("allow").unwrap_or(rest).trim();
    let (rules_part, after) = match rest.strip_prefix('(') {
        Some(r) => match r.split_once(')') {
            Some((inside, after)) => (inside, after),
            None => (r, ""),
        },
        None => ("", rest),
    };
    let rules: Vec<String> = rules_part
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let reason = after
        .trim()
        .trim_start_matches([':', '-', '—'])
        .trim()
        .to_string();
    Some(Suppression { line, rules, reason })
}

/// `in_test[i]`: token `i` is inside a `#[test]` / `#[cfg(test)]` item.
/// (Shared with `model`, which needs per-function test marks.)
pub(crate) fn test_regions(tokens: &[Token], whole_file: bool) -> Vec<bool> {
    let mut marks = vec![whole_file; tokens.len()];
    if whole_file {
        return marks;
    }
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment(_)))
        .map(|(i, _)| i)
        .collect();

    let mut k = 0usize;
    while k < code.len() {
        if tokens[code[k]].kind.is_punct('#')
            && code.get(k + 1).is_some_and(|&j| tokens[j].kind.is_punct('['))
        {
            // Collect the attribute's tokens up to the matching `]`.
            let mut depth = 0i32;
            let mut end = k + 1;
            let mut is_test = false;
            let mut negated = false;
            for (off, &j) in code[k + 1..].iter().enumerate() {
                match &tokens[j].kind {
                    TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            end = k + 1 + off;
                            break;
                        }
                    }
                    TokenKind::Ident(s) if s == "test" => is_test = true,
                    TokenKind::Ident(s) if s == "not" => negated = true,
                    _ => {}
                }
            }
            if is_test && !negated {
                // Skip any further attributes, then mark the item: through
                // the matching `}` of its first `{`, or to a `;` if one
                // comes first (e.g. `#[cfg(test)] mod tests;`).
                let mut p = end + 1;
                while p + 1 < code.len()
                    && tokens[code[p]].kind.is_punct('#')
                    && tokens[code[p + 1]].kind.is_punct('[')
                {
                    let mut d = 0i32;
                    let mut q = p + 1;
                    for (off, &j) in code[p + 1..].iter().enumerate() {
                        match &tokens[j].kind {
                            TokenKind::Punct('[') => d += 1,
                            TokenKind::Punct(']') => {
                                d -= 1;
                                if d == 0 {
                                    q = p + 1 + off;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    p = q + 1;
                }
                let mut brace = 0i32;
                let mut item_end = code.len().saturating_sub(1);
                for (off, &j) in code[p..].iter().enumerate() {
                    match &tokens[j].kind {
                        TokenKind::Punct(';') if brace == 0 => {
                            item_end = p + off;
                            break;
                        }
                        TokenKind::Punct('{') => brace += 1,
                        TokenKind::Punct('}') => {
                            brace -= 1;
                            if brace == 0 {
                                item_end = p + off;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                for &j in &code[k..=item_end.min(code.len() - 1)] {
                    marks[j] = true;
                }
                k = item_end + 1;
                continue;
            }
            k = end + 1;
            continue;
        }
        k += 1;
    }
    marks
}

/// `in_async[i]`: token `i` is lexically inside an `async fn` body or an
/// `async { }` / `async move { }` block.
fn async_regions(tokens: &[Token]) -> Vec<bool> {
    let mut marks = vec![false; tokens.len()];
    let code: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment(_)))
        .map(|(i, _)| i)
        .collect();

    for k in 0..code.len() {
        if tokens[code[k]].kind.ident() != Some("async") {
            continue;
        }
        // async fn …  /  async move { }  /  async { }
        let mut p = k + 1;
        if code.get(p).is_some_and(|&j| tokens[j].kind.ident() == Some("move")) {
            p += 1;
        }
        let is_fn = code.get(p).is_some_and(|&j| tokens[j].kind.ident() == Some("fn"));
        let is_block = code.get(p).is_some_and(|&j| tokens[j].kind.is_punct('{'));
        if !is_fn && !is_block {
            continue;
        }
        // Find the opening brace (for a block, `p` already is it).
        let mut open = None;
        for (off, &j) in code[p..].iter().enumerate() {
            if tokens[j].kind.is_punct('{') {
                open = Some(p + off);
                break;
            }
            if tokens[j].kind.is_punct(';') {
                break; // trait method signature without a body
            }
        }
        let Some(open) = open else { continue };
        let mut brace = 0i32;
        for &j in &code[open..] {
            match &tokens[j].kind {
                TokenKind::Punct('{') => brace += 1,
                TokenKind::Punct('}') => {
                    brace -= 1;
                    if brace == 0 {
                        marks[j] = true;
                        break;
                    }
                }
                _ => {}
            }
            marks[j] = true;
        }
    }
    marks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_event_and_metric_sites() {
        let src = r#"
            fn f(t: &Telemetry) {
                t.emit(Event::new("mab.received", 5));
                t.metrics().counter("mab.routed").incr();
                t.metrics().gauge("gateway.queue_depth").set(2);
                t.metrics().histogram("net.im.latency_ms").observe_ms(3);
                let s = t.span("mab.route", 0);
                self.event("delivery.acked", now);
            }
        "#;
        let facts = scan_source(src, false);
        let got: Vec<(&str, ApiKind)> = facts
            .telemetry
            .iter()
            .map(|s| (s.name.as_str(), s.api))
            .collect();
        assert_eq!(
            got,
            vec![
                ("mab.received", ApiKind::Event),
                ("mab.routed", ApiKind::Counter),
                ("gateway.queue_depth", ApiKind::Gauge),
                ("net.im.latency_ms", ApiKind::Histogram),
                ("mab.route", ApiKind::Span),
                ("delivery.acked", ApiKind::Event),
            ]
        );
        assert!(facts.telemetry.iter().all(|s| !s.in_test));
    }

    #[test]
    fn metric_set_sites() {
        let src = r#"
            fn f(world: &mut World) {
                world.metrics.incr("user.seen");
                world.metrics.add("monkey.dismissed", 3);
                world.metrics.observe_duration("im.one_way", d);
                world.metrics.observe("source.ack_rtt", 1.5);
                let s = world.metrics.summary("user.seen_latency");
                counter.incr();                 // no name: ignored
                summary.observe(0.5);           // no name: ignored
            }
        "#;
        let facts = scan_source(src, false);
        let got: Vec<(&str, ApiKind)> = facts
            .telemetry
            .iter()
            .map(|s| (s.name.as_str(), s.api))
            .collect();
        assert_eq!(
            got,
            vec![
                ("user.seen", ApiKind::Counter),
                ("monkey.dismissed", ApiKind::Counter),
                ("im.one_way", ApiKind::Summary),
                ("source.ack_rtt", ApiKind::Summary),
                ("user.seen_latency", ApiKind::Summary),
            ]
        );
    }

    #[test]
    fn multiline_call_still_matches() {
        let src = "fn f() {\n    t.emit(Event::new(\n        \"watchdog.service_down\",\n        now,\n    ));\n}";
        let facts = scan_source(src, false);
        assert_eq!(facts.telemetry.len(), 1);
        assert_eq!(facts.telemetry[0].name, "watchdog.service_down");
        assert_eq!(facts.telemetry[0].line, 3);
    }

    #[test]
    fn name_comparison_site() {
        let src = r#"fn f() { let x = events.iter().find(|e| e.name == "mab.routed"); }"#;
        let facts = scan_source(src, false);
        assert_eq!(facts.telemetry.len(), 1);
        assert_eq!(facts.telemetry[0].api, ApiKind::NameCmp);
    }

    #[test]
    fn test_region_marks_cfg_test_module() {
        let src = r#"
            fn prod() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { y.unwrap(); }
            }
        "#;
        let facts = scan_source(src, false);
        assert_eq!(facts.unwraps.len(), 2);
        assert!(!facts.unwraps[0].in_test);
        assert!(facts.unwraps[1].in_test);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }";
        let facts = scan_source(src, false);
        assert!(!facts.unwraps[0].in_test);
    }

    #[test]
    fn tokio_test_attribute_counts() {
        let src = "#[tokio::test(start_paused = true)]\nasync fn t() { y.expect(\"msg\"); }";
        let facts = scan_source(src, false);
        assert!(facts.unwraps[0].in_test);
        assert_eq!(facts.unwraps[0].method, "expect");
    }

    #[test]
    fn sleep_only_flagged_inside_async() {
        let src = r#"
            fn sync_fn() { std::thread::sleep(d); }
            async fn bad() { std::thread::sleep(d); }
            fn also_sync() { let f = async move { thread::sleep(d); }; }
        "#;
        let facts = scan_source(src, false);
        assert_eq!(facts.sleeps_in_async.len(), 2);
        assert_eq!(facts.sleeps_in_async[0].line, 3);
        assert_eq!(facts.sleeps_in_async[1].line, 4);
    }

    #[test]
    fn unbounded_channels() {
        let src = r#"
            fn f() {
                let (a, b) = mpsc::unbounded_channel();
                let (c, d) = std::sync::mpsc::channel();
                let (e, g) = mpsc::channel(64);
                let (h, i) = std::sync::mpsc::sync_channel(8);
            }
        "#;
        let facts = scan_source(src, false);
        assert_eq!(facts.unbounded.len(), 2);
        assert_eq!(facts.unbounded[0].what, "unbounded_channel()");
        assert_eq!(facts.unbounded[1].what, "std::sync::mpsc::channel()");
    }

    #[test]
    fn rc_and_refcell_sites() {
        let src = r#"
            use std::rc::Rc;
            struct S { log: Rc<RefCell<Log>> }
            fn f() { let x = Rc::new(1); }
            #[cfg(test)]
            mod tests {
                fn t() { let y = RefCell::new(2); }
            }
        "#;
        let facts = scan_source(src, false);
        let got: Vec<(&str, bool)> =
            facts.shared_mut.iter().map(|s| (s.what, s.in_test)).collect();
        // The `use` line matches neither `<` nor `::` after `Rc`.
        assert_eq!(
            got,
            vec![("Rc", false), ("RefCell", false), ("Rc", false), ("RefCell", true)]
        );
    }

    #[test]
    fn forbid_unsafe_detected() {
        assert!(scan_source("#![forbid(unsafe_code)]\nfn x() {}", false).has_forbid_unsafe);
        assert!(!scan_source("#![deny(missing_docs)]\nfn x() {}", false).has_forbid_unsafe);
    }

    #[test]
    fn suppression_with_reason() {
        let src = "fn f() { x.unwrap(); // simba-analyze: allow(hygiene.unwrap): startup, nothing to recover\n}";
        let facts = scan_source(src, false);
        let s = &facts.suppressions[0];
        assert_eq!(s.rules, vec!["hygiene.unwrap"]);
        assert_eq!(s.reason, "startup, nothing to recover");
        assert_eq!(s.line, 1);
    }

    #[test]
    fn suppression_without_reason_is_reported_not_dropped() {
        let facts = scan_source("// simba-analyze: allow(hygiene.unwrap)\n", false);
        assert_eq!(facts.suppressions[0].reason, "");
    }

    #[test]
    fn unrelated_comment_is_not_a_directive() {
        let facts = scan_source("// allow(hygiene.unwrap) but not ours\n", false);
        assert!(facts.suppressions.is_empty());
    }

    #[test]
    fn whole_file_test_marks_everything() {
        let facts = scan_source("fn helper() { x.unwrap(); }", true);
        assert!(facts.unwraps[0].in_test);
    }
}
