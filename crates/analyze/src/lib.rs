//! `simba-analyze` — workspace-aware static analysis for telemetry
//! contracts and dependability hygiene.
//!
//! SIMBA's dependability case rests on exception-handling *automation*
//! (paper §4): the system, not a human, must notice when a component
//! drifts out of spec. This crate applies the same principle to the
//! codebase itself. It walks every first-party `.rs` file with a
//! lightweight lexer (the `simba-xml` trade-off: hand-rolled, offline,
//! deliberately partial) and enforces:
//!
//! * **Telemetry contracts** — every point/metric name used through a
//!   telemetry API must be registered in
//!   `crates/telemetry/src/points.rs`; misspellings (edit distance 1)
//!   are called out with a suggestion; registered-but-never-emitted
//!   names and out-of-scope emissions are errors; the README table is
//!   generated from the registry and checked against it.
//! * **Dependability hygiene** — no `.unwrap()`/`.expect()` outside
//!   tests in `core`/`runtime`/`gateway`/`net`/`ledger`, no `thread::sleep`
//!   inside async code, no unbounded channels outside the sim crate,
//!   and `#![forbid(unsafe_code)]` on every crate root.
//! * **Concurrency & durability contracts** — a cross-file pass
//!   (`model` + `graph`) extracts per-function event streams (guard
//!   acquisitions and live-ranges, calls, `.await` points) and checks
//!   three invariants the type system cannot see: no cycle in the
//!   workspace lock-order graph (`concurrency.lock-order`), no blocking
//!   call or await while a guard is live
//!   (`concurrency.blocking-under-guard`), and no ack without a
//!   dominating durable commit (`durability.ack-before-commit`, seeded
//!   from the annotated registry in `contracts`).
//!
//! True positives that are genuinely fine carry an inline waiver with a
//! mandatory reason: `// simba-analyze: allow(<rule>): <reason>`.
//! Waived findings stay in the JSON report with `"suppressed":true`.
//!
//! Run as `cargo run -p simba-analyze -- check` (or `make analyze`);
//! exit status 0 means no unsuppressed findings.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod contracts;
pub mod diag;
pub mod graph;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod scan;
pub mod workspace;

use diag::Finding;
use scan::{ApiKind, FileFacts, Suppression};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// The path of the registry module, relative to the workspace root.
pub const POINTS_RS: &str = "crates/telemetry/src/points.rs";

/// A full workspace pass: every finding — waived ones included, with
/// [`Finding::suppressed`] set — sorted by file then line. The run is
/// passing when [`diag::unsuppressed_count`] is zero.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let files = workspace::discover(root)?;
    let mut findings = Vec::new();
    let mut all_sites: Vec<(String, ApiKind, bool)> = Vec::new();
    let mut points_rs_facts: Option<FileFacts> = None;
    let mut suppressions_by_file: BTreeMap<String, Vec<Suppression>> = BTreeMap::new();
    let mut models: Vec<graph::FileFunctions> = Vec::new();

    for file in &files {
        let source = std::fs::read_to_string(&file.abs_path)?;
        let facts = scan::scan_source(&source, file.is_test_file);

        let mut file_findings = rules::file_findings(file, &facts);
        file_findings.extend(rules::forbid_unsafe_finding(file, &facts));
        rules::mark_suppressed(&mut file_findings, &facts.suppressions);
        findings.extend(file_findings);

        models.push(graph::FileFunctions {
            crate_name: file.crate_name.clone(),
            rel_path: file.rel_path.clone(),
            functions: model::extract(&source, file.is_test_file),
        });

        if !rules::TELEMETRY_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
            all_sites.extend(
                facts
                    .telemetry
                    .iter()
                    .map(|s| (s.name.clone(), s.api, s.in_test)),
            );
        }
        suppressions_by_file.insert(file.rel_path.clone(), facts.suppressions.clone());
        if file.rel_path == POINTS_RS {
            points_rs_facts = Some(facts);
        }
    }

    // The cross-file concurrency/durability pass; its findings carry the
    // file the *site* is in, so waivers come from that file's directives.
    let mut graph_findings = graph::check(&models);
    for f in &mut graph_findings {
        if let Some(sups) = suppressions_by_file.get(&f.file) {
            rules::mark_suppressed(std::slice::from_mut(f), sups);
        }
    }
    findings.extend(graph_findings);

    findings.extend(rules::unemitted_points(
        &all_sites,
        points_rs_facts.as_ref(),
        POINTS_RS,
    ));

    let readme_path = root.join("README.md");
    if let Ok(readme) = std::fs::read_to_string(&readme_path) {
        findings.extend(rules::check_readme_table(&readme, "README.md"));
    }

    findings.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// One telemetry call site, as listed by `simba-analyze dump`.
#[derive(Debug, Clone)]
pub struct DumpSite {
    /// Short crate name (`core`, `runtime`, …).
    pub crate_name: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which API shape referenced the name.
    pub api: ApiKind,
    /// The name literal.
    pub name: String,
    /// The site is inside test code.
    pub in_test: bool,
}

/// Every telemetry site in the workspace, for `simba-analyze dump`.
pub fn dump_sites(root: &Path) -> io::Result<Vec<DumpSite>> {
    let files = workspace::discover(root)?;
    let mut out = Vec::new();
    for file in &files {
        let source = std::fs::read_to_string(&file.abs_path)?;
        let facts = scan::scan_source(&source, file.is_test_file);
        for s in facts.telemetry {
            out.push(DumpSite {
                crate_name: file.crate_name.clone(),
                file: file.rel_path.clone(),
                line: s.line,
                api: s.api,
                name: s.name,
                in_test: s.in_test,
            });
        }
    }
    Ok(out)
}
