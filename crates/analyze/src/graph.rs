//! The workspace-wide half of the concurrency/durability analysis: a
//! call graph and a lock-acquisition graph over every function `model`
//! extracted, and the three rules that read them.
//!
//! * `concurrency.lock-order` — a cycle in the static lock-order graph.
//!   An edge `a → b` is recorded whenever a function acquires `b`
//!   (directly, through a guard-returning helper, or one call deep)
//!   while a guard on `a` is live. Two threads walking a cycle in
//!   opposite directions deadlock; the finding names every acquisition
//!   site on the cycle.
//! * `concurrency.blocking-under-guard` — a blocking call (per
//!   `contracts::BLOCKING`), or an `.await` point, reached directly or
//!   one call deep while a guard is live. Locks on the delivery path
//!   must bound their hold time or every worker convoys behind them.
//! * `durability.ack-before-commit` — an ack-classified construction or
//!   call (per `contracts::CONTRACTS`) on a path with no *dominating*
//!   commit-classified call. Domination is approximated by conditional
//!   block paths: a commit dominates an ack when the commit's stack of
//!   enclosing conditional blocks is a prefix of the ack's and the
//!   commit comes first. That is exact for the workspace's shapes
//!   (commit in the scrutinee or a shared prefix block) and
//!   conservative for early-return shapes, which carry a waiver.
//!
//! Everything is a static approximation: one call deep, no closures, no
//! trait dispatch. The registries in `contracts` and the waivers in the
//! source are the escape hatches, and both require a written reason.

use crate::contracts;
use crate::diag::Finding;
use crate::model::{EventKind, FnFact};
use std::collections::{BTreeMap, BTreeSet};

/// One analyzed file: `model::extract`'s output plus its identity.
#[derive(Debug)]
pub struct FileFunctions {
    /// Short crate name (`core`, `runtime`, …).
    pub crate_name: String,
    /// Workspace-relative path.
    pub rel_path: String,
    /// Extracted functions.
    pub functions: Vec<FnFact>,
}

/// (file index, function index) — a function's identity.
type Key = (usize, usize);

/// One lock-order edge with its acquisition site.
#[derive(Debug, Clone)]
struct EdgeSite {
    /// File of the inner acquisition.
    file: String,
    /// Line of the inner acquisition.
    line: u32,
    /// Line the held (outer) guard was acquired on.
    held_line: u32,
}

struct Tables<'a> {
    files: &'a [FileFunctions],
    /// name → every function with that name.
    by_name: BTreeMap<&'a str, Vec<Key>>,
    /// Guard-returning helper name → the lock its body acquires.
    guard_helpers: BTreeMap<&'a str, String>,
    /// key → first blocking call in the body (description, line).
    direct_blocking: BTreeMap<Key, (String, u32)>,
    /// key → first direct guard acquisition (lock, line).
    first_acquire: BTreeMap<Key, (String, u32)>,
    /// Names of functions with an unconditional commit-classified call
    /// (count as commits at their call sites, one level deep).
    commit_like: BTreeSet<&'a str>,
}

impl<'a> Tables<'a> {
    fn build(files: &'a [FileFunctions]) -> Self {
        let mut by_name: BTreeMap<&str, Vec<Key>> = BTreeMap::new();
        let mut guard_helpers = BTreeMap::new();
        let mut direct_blocking = BTreeMap::new();
        let mut first_acquire = BTreeMap::new();
        let mut commit_like = BTreeSet::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                let key = (fi, gi);
                by_name.entry(f.name.as_str()).or_default().push(key);
                let mut cond_depth = 0i32;
                let mut open_kinds: Vec<bool> = Vec::new();
                for ev in &f.events {
                    match &ev.kind {
                        EventKind::Open { conditional } => {
                            open_kinds.push(*conditional);
                            cond_depth += i32::from(*conditional);
                        }
                        EventKind::Close => {
                            if let Some(c) = open_kinds.pop() {
                                cond_depth -= i32::from(c);
                            }
                        }
                        EventKind::Acquire { lock, .. } => {
                            first_acquire
                                .entry(key)
                                .or_insert_with(|| (lock.clone(), ev.line));
                            if f.returns_guard {
                                guard_helpers
                                    .entry(f.name.as_str())
                                    .or_insert_with(|| lock.clone());
                            }
                        }
                        EventKind::Call {
                            name,
                            qualifier,
                            empty_args,
                            in_pattern: false,
                            ..
                        } => {
                            if let Some(what) =
                                contracts::blocking_what(name, qualifier.as_deref(), *empty_args)
                            {
                                direct_blocking
                                    .entry(key)
                                    .or_insert_with(|| (format!("`{name}` ({what})"), ev.line));
                            }
                            if cond_depth == 0
                                && contracts::is_commit(name, qualifier.as_deref())
                            {
                                commit_like.insert(f.name.as_str());
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        Tables {
            files,
            by_name,
            guard_helpers,
            direct_blocking,
            first_acquire,
            commit_like,
        }
    }

    /// Resolves a call to a single function: the unique same-file match,
    /// else the unique same-crate match. Ambiguity or a cross-crate-only
    /// match resolves to nothing (the rules stay quiet rather than
    /// guess).
    fn resolve(&self, name: &str, from: Key) -> Option<Key> {
        let candidates = self.by_name.get(name)?;
        let same_file: Vec<Key> = candidates.iter().copied().filter(|k| k.0 == from.0).collect();
        if same_file.len() == 1 {
            return Some(same_file[0]);
        }
        if !same_file.is_empty() {
            return None;
        }
        let from_crate = &self.files[from.0].crate_name;
        let same_crate: Vec<Key> = candidates
            .iter()
            .copied()
            .filter(|k| &self.files[k.0].crate_name == from_crate)
            .collect();
        match same_crate.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }

    fn site_of(&self, key: Key) -> String {
        let file = &self.files[key.0];
        format!("{}:{}", file.rel_path, file.functions[key.1].line)
    }
}

/// A live guard during interpretation.
struct LiveGuard {
    lock: String,
    line: u32,
    binding: Option<String>,
    depth: i32,
}

/// Runs the three graph rules over the whole workspace model.
pub fn check(files: &[FileFunctions]) -> Vec<Finding> {
    let tables = Tables::build(files);
    let mut findings: Vec<Finding> = Vec::new();
    // (from, to) → first acquisition site witnessing the edge.
    let mut edges: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();

    for (fi, file) in files.iter().enumerate() {
        let concurrency = contracts::CONCURRENCY_CRATES.contains(&file.crate_name.as_str());
        let durability = contracts::DURABILITY_CRATES.contains(&file.crate_name.as_str());
        if !concurrency && !durability {
            continue;
        }
        for (gi, f) in file.functions.iter().enumerate() {
            if f.in_test {
                continue;
            }
            interpret(
                f,
                (fi, gi),
                &tables,
                concurrency,
                durability,
                &file.rel_path,
                &mut edges,
                &mut findings,
            );
        }
    }

    findings.extend(lock_order_cycles(&edges));
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    findings.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line);
    findings
}

#[allow(clippy::too_many_arguments)]
fn interpret(
    f: &FnFact,
    key: Key,
    tables: &Tables<'_>,
    concurrency: bool,
    durability: bool,
    rel_path: &str,
    edges: &mut BTreeMap<(String, String), EdgeSite>,
    findings: &mut Vec<Finding>,
) {
    let mut depth = 0i32;
    let mut open_kinds: Vec<bool> = Vec::new();
    let mut cond_path: Vec<u32> = Vec::new();
    let mut cond_id = 0u32;
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut commit_paths: Vec<Vec<u32>> = Vec::new();

    let acquire =
        |live: &mut Vec<LiveGuard>,
         edges: &mut BTreeMap<(String, String), EdgeSite>,
         lock: &str,
         line: u32,
         binding: Option<String>,
         depth: i32| {
            for g in live.iter() {
                if g.lock != lock {
                    edges
                        .entry((g.lock.clone(), lock.to_string()))
                        .or_insert_with(|| EdgeSite {
                            file: rel_path.to_string(),
                            line,
                            held_line: g.line,
                        });
                }
            }
            live.push(LiveGuard {
                lock: lock.to_string(),
                line,
                binding,
                depth,
            });
        };

    for ev in &f.events {
        match &ev.kind {
            EventKind::Open { conditional } => {
                depth += 1;
                open_kinds.push(*conditional);
                if *conditional {
                    cond_id += 1;
                    cond_path.push(cond_id);
                }
            }
            EventKind::Close => {
                if let Some(c) = open_kinds.pop() {
                    if c {
                        cond_path.pop();
                    }
                }
                depth -= 1;
                live.retain(|g| g.depth <= depth);
            }
            EventKind::StmtEnd => {
                live.retain(|g| g.binding.is_some() || g.depth < depth);
            }
            EventKind::DropGuard { binding } => {
                live.retain(|g| g.binding.as_deref() != Some(binding.as_str()));
            }
            EventKind::Await => {
                if concurrency && !live.is_empty() {
                    let g = &live[live.len() - 1];
                    findings.push(Finding::new(
                        "concurrency.blocking-under-guard",
                        rel_path,
                        ev.line,
                        format!(
                            "`.await` while the guard on `{}` (acquired line {}) is live — \
                             the future can park holding the lock",
                            g.lock, g.line
                        ),
                        Some("drop or scope the guard before awaiting".into()),
                    ));
                }
            }
            EventKind::Acquire { lock, binding, .. } => {
                if concurrency {
                    acquire(&mut live, edges, lock, ev.line, binding.clone(), depth);
                }
            }
            EventKind::Call {
                name,
                qualifier,
                empty_args,
                in_pattern,
                binding,
            } => {
                if *in_pattern {
                    continue;
                }
                let q = qualifier.as_deref();
                if durability {
                    if contracts::is_commit(name, q) || tables.commit_like.contains(name.as_str())
                    {
                        commit_paths.push(cond_path.clone());
                    } else if contracts::is_ack(name, q) {
                        let dominated = commit_paths.iter().any(|p| {
                            p.len() <= cond_path.len() && cond_path[..p.len()] == p[..]
                        });
                        if !dominated {
                            findings.push(Finding::new(
                                "durability.ack-before-commit",
                                rel_path,
                                ev.line,
                                format!(
                                    "`{}{}` is constructed in `{}` on a path with no dominating \
                                     commit-classified call",
                                    q.map(|q| format!("{q}::")).unwrap_or_default(),
                                    name,
                                    f.name
                                ),
                                Some(
                                    "make the work durable (commit/try_submit) before \
                                     acknowledging it — §4.2.1 durable-before-ack; the registry \
                                     lives in crates/analyze/src/contracts.rs"
                                        .into(),
                                ),
                            ));
                        }
                    }
                }
                if concurrency {
                    if let Some(what) = contracts::blocking_what(name, q, *empty_args) {
                        if let Some(g) = live.last() {
                            findings.push(Finding::new(
                                "concurrency.blocking-under-guard",
                                rel_path,
                                ev.line,
                                format!(
                                    "`{}` ({}) called while the guard on `{}` (acquired line {}) \
                                     is live",
                                    name, what, g.lock, g.line
                                ),
                                Some(
                                    "move the blocking work outside the guard's scope, or \
                                     suppress with the reason the hold is intended".into(),
                                ),
                            ));
                        }
                    } else if let Some(lock) = (*empty_args)
                        .then(|| tables.guard_helpers.get(name.as_str()))
                        .flatten()
                    {
                        // `let g = self.lock_log();` — the helper acquires
                        // for its caller.
                        let lock = lock.clone();
                        acquire(&mut live, edges, &lock, ev.line, binding.clone(), depth);
                    } else if let Some(callee) = tables.resolve(name, key) {
                        if let Some(g) = live.last() {
                            if let Some((what, bline)) = tables.direct_blocking.get(&callee) {
                                findings.push(Finding::new(
                                    "concurrency.blocking-under-guard",
                                    rel_path,
                                    ev.line,
                                    format!(
                                        "`{}` (defined at {}, blocks via {} at line {}) called \
                                         while the guard on `{}` (acquired line {}) is live",
                                        name,
                                        tables.site_of(callee),
                                        what,
                                        bline,
                                        g.lock,
                                        g.line
                                    ),
                                    Some(
                                        "move the call outside the guard's scope, or suppress \
                                         with the reason the hold is intended".into(),
                                    ),
                                ));
                            }
                        }
                        if !live.is_empty() {
                            if let Some((lock, _)) = tables.first_acquire.get(&callee) {
                                let lock = lock.clone();
                                for g in &live {
                                    if g.lock != lock {
                                        edges
                                            .entry((g.lock.clone(), lock.clone()))
                                            .or_insert_with(|| EdgeSite {
                                                file: rel_path.to_string(),
                                                line: ev.line,
                                                held_line: g.line,
                                            });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Finds every elementary cycle (as a canonical lock set) in the
/// lock-order graph and reports one finding per cycle, anchored at its
/// lexically-first edge, naming every acquisition site.
fn lock_order_cycles(edges: &BTreeMap<(String, String), EdgeSite>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }
    let mut seen: BTreeSet<Vec<&str>> = BTreeSet::new();
    let mut findings = Vec::new();

    for ((from, to), _) in edges.iter() {
        // BFS from `to` back to `from`: a path closes the cycle.
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<&str> = [to.as_str()].into();
        let mut reached = false;
        while let Some(n) = queue.pop_front() {
            if n == from.as_str() {
                reached = true;
                break;
            }
            for &m in adj.get(n).map(|v| v.as_slice()).unwrap_or_default() {
                if m != to.as_str() && !parent.contains_key(m) {
                    parent.insert(m, n);
                    queue.push_back(m);
                }
            }
        }
        if !reached {
            continue;
        }
        // Reconstruct to → … → from, then close with the from → to edge.
        let mut path = vec![from.as_str()];
        let mut n = from.as_str();
        while n != to.as_str() {
            n = parent.get(n).copied().unwrap_or(to.as_str());
            path.push(n);
        }
        path.reverse(); // from, …, to (acquisition order)
        let mut canon: Vec<&str> = path.clone();
        canon.sort_unstable();
        canon.dedup();
        if !seen.insert(canon) {
            continue;
        }
        let mut sites = Vec::new();
        for w in path.windows(2) {
            if let Some(site) = edges.get(&(w[0].to_string(), w[1].to_string())) {
                sites.push(format!(
                    "`{}` acquired at {}:{} while holding `{}` (line {})",
                    w[1], site.file, site.line, w[0], site.held_line
                ));
            }
        }
        let closing = edges
            .get(&(path[path.len() - 1].to_string(), path[0].to_string()))
            .map(|site| {
                format!(
                    "`{}` acquired at {}:{} while holding `{}` (line {})",
                    path[0],
                    site.file,
                    site.line,
                    path[path.len() - 1],
                    site.held_line
                )
            });
        sites.extend(closing);
        let anchor = &edges[&(from.clone(), to.clone())];
        findings.push(Finding::new(
            "concurrency.lock-order",
            anchor.file.clone(),
            anchor.line,
            format!(
                "lock-order cycle through {}: {}",
                path.iter()
                    .map(|l| format!("`{l}`"))
                    .collect::<Vec<_>>()
                    .join(" → "),
                sites.join("; ")
            ),
            Some(
                "acquire these locks in one canonical order everywhere, or suppress with the \
                 reason the orders can never interleave"
                    .into(),
            ),
        ));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model;

    fn files_of(sources: &[(&str, &str, &str)]) -> Vec<FileFunctions> {
        sources
            .iter()
            .map(|(krate, path, src)| FileFunctions {
                crate_name: krate.to_string(),
                rel_path: path.to_string(),
                functions: model::extract(src, false),
            })
            .collect()
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn lock_order_cycle_detected_with_both_sites() {
        let src = r#"
            impl S {
                fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); b.touch(); }
                fn ba(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); a.touch(); }
            }
        "#;
        let findings = check(&files_of(&[("runtime", "crates/runtime/src/x.rs", src)]));
        assert_eq!(rules_of(&findings), vec!["concurrency.lock-order"]);
        let msg = &findings[0].message;
        assert!(msg.contains("alpha") && msg.contains("beta"), "{msg}");
        // Both acquisition sites present.
        assert_eq!(msg.matches("crates/runtime/src/x.rs:").count(), 2, "{msg}");
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let src = r#"
            impl S {
                fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); b.touch(); }
                fn also_ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); a.touch(); }
            }
        "#;
        let findings = check(&files_of(&[("runtime", "crates/runtime/src/x.rs", src)]));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn one_call_deep_lock_edge_closes_a_cycle() {
        let src = r#"
            impl S {
                fn grab_beta(&self) { let b = self.beta.lock(); b.touch(); }
                fn ab(&self) { let a = self.alpha.lock(); self.grab_beta(); }
                fn ba(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); a.touch(); }
            }
        "#;
        let findings = check(&files_of(&[("runtime", "crates/runtime/src/x.rs", src)]));
        assert_eq!(rules_of(&findings), vec!["concurrency.lock-order"]);
    }
}
