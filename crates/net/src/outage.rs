//! Service up/down schedules.
//!
//! The paper's one-month log (§5) recorded "five extended IM downtimes
//! lasting from 4 to 103 minutes". [`OutageSchedule`] reproduces that class
//! of failure: downtime windows, either fixed (for unit tests) or generated
//! by a Poisson process with log-uniform durations (for the fault-injection
//! campaign, experiment E5).

use simba_sim::{SimDuration, SimRng, SimTime};

/// A set of half-open downtime windows `[start, end)` over the simulation
/// horizon. Windows are non-overlapping and sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutageSchedule {
    windows: Vec<(SimTime, SimTime)>,
}

impl OutageSchedule {
    /// A schedule with no outages.
    pub fn always_up() -> Self {
        OutageSchedule::default()
    }

    /// Builds a schedule from explicit windows.
    ///
    /// Overlapping or touching windows are merged; zero-length windows are
    /// dropped.
    pub fn from_windows(mut windows: Vec<(SimTime, SimTime)>) -> Self {
        windows.retain(|(s, e)| e > s);
        windows.sort();
        let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(windows.len());
        for (s, e) in windows {
            match merged.last_mut() {
                Some((_, last_end)) if s <= *last_end => {
                    if e > *last_end {
                        *last_end = e;
                    }
                }
                _ => merged.push((s, e)),
            }
        }
        OutageSchedule { windows: merged }
    }

    /// Generates outages over `[0, horizon)` by a Poisson process.
    ///
    /// * `mean_between` — mean up-time between outage starts,
    /// * `min_len ..= max_len` — outage durations, drawn log-uniformly so
    ///   short outages dominate but long ones occur (4–103 min in §5).
    pub fn generate(
        horizon: SimTime,
        mean_between: SimDuration,
        min_len: SimDuration,
        max_len: SimDuration,
        rng: &mut SimRng,
    ) -> Self {
        assert!(min_len <= max_len, "min_len must not exceed max_len");
        assert!(min_len > SimDuration::ZERO, "outages must have positive length");
        let mut windows = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            let gap = SimDuration::from_secs_f64(rng.exponential(mean_between.as_secs_f64()));
            let start = t + gap;
            if start >= horizon {
                break;
            }
            // Log-uniform duration in [min_len, max_len].
            let ln_lo = (min_len.as_millis() as f64).ln();
            let ln_hi = (max_len.as_millis() as f64).ln();
            let len_ms = rng.range_f64(ln_lo, ln_hi.max(ln_lo + f64::EPSILON)).exp();
            let len = SimDuration::from_millis(len_ms.round() as u64).max(min_len);
            let end = start + len;
            t = end;
            windows.push((start, end));
        }
        OutageSchedule::from_windows(windows)
    }

    /// Whether the service is down at `at`.
    pub fn is_down(&self, at: SimTime) -> bool {
        self.windows.iter().any(|&(s, e)| s <= at && at < e)
    }

    /// The end of the outage containing `at`, if any.
    pub fn outage_end(&self, at: SimTime) -> Option<SimTime> {
        self.windows
            .iter()
            .find(|&&(s, e)| s <= at && at < e)
            .map(|&(_, e)| e)
    }

    /// The start of the first outage at or after `at`, if any.
    pub fn next_outage_start(&self, at: SimTime) -> Option<SimTime> {
        self.windows.iter().map(|&(s, _)| s).find(|&s| s >= at)
    }

    /// All windows, sorted.
    pub fn windows(&self) -> &[(SimTime, SimTime)] {
        &self.windows
    }

    /// Number of outage windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the schedule has no outages.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total downtime across all windows.
    pub fn total_downtime(&self) -> SimDuration {
        self.windows
            .iter()
            .fold(SimDuration::ZERO, |acc, &(s, e)| acc + (e - s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn always_up_is_never_down() {
        let s = OutageSchedule::always_up();
        assert!(!s.is_down(SimTime::ZERO));
        assert!(!s.is_down(SimTime::from_days(30)));
        assert!(s.is_empty());
    }

    #[test]
    fn window_membership_is_half_open() {
        let s = OutageSchedule::from_windows(vec![(t(10), t(20))]);
        assert!(!s.is_down(t(9)));
        assert!(s.is_down(t(10)));
        assert!(s.is_down(t(19)));
        assert!(!s.is_down(t(20)));
    }

    #[test]
    fn windows_merge_and_sort() {
        let s = OutageSchedule::from_windows(vec![
            (t(30), t(40)),
            (t(10), t(20)),
            (t(15), t(25)), // overlaps the second
            (t(25), t(26)), // touches the merged window
            (t(50), t(50)), // zero-length, dropped
        ]);
        assert_eq!(s.windows(), &[(t(10), t(26)), (t(30), t(40))]);
        assert_eq!(s.total_downtime(), SimDuration::from_secs(26));
    }

    #[test]
    fn outage_end_and_next_start() {
        let s = OutageSchedule::from_windows(vec![(t(10), t(20)), (t(40), t(45))]);
        assert_eq!(s.outage_end(t(15)), Some(t(20)));
        assert_eq!(s.outage_end(t(5)), None);
        assert_eq!(s.next_outage_start(t(0)), Some(t(10)));
        assert_eq!(s.next_outage_start(t(25)), Some(t(40)));
        assert_eq!(s.next_outage_start(t(46)), None);
    }

    #[test]
    fn generate_respects_bounds_and_horizon() {
        let mut rng = SimRng::new(42);
        let horizon = SimTime::from_days(30);
        let s = OutageSchedule::generate(
            horizon,
            SimDuration::from_days(6),
            SimDuration::from_mins(4),
            SimDuration::from_mins(103),
            &mut rng,
        );
        for &(start, end) in s.windows() {
            assert!(start < horizon);
            let len = end - start;
            assert!(len >= SimDuration::from_mins(4), "too short: {len}");
            // Merging can exceed max_len only if windows collided; with a
            // 6-day gap mean that is effectively impossible at this seed.
            assert!(len <= SimDuration::from_mins(104), "too long: {len}");
        }
        // Roughly monthly cadence with 6-day mean gap: expect ~5 outages.
        assert!((2..=9).contains(&s.len()), "got {} outages", s.len());
    }

    #[test]
    fn generate_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut rng = SimRng::new(seed);
            OutageSchedule::generate(
                SimTime::from_days(30),
                SimDuration::from_days(3),
                SimDuration::from_mins(4),
                SimDuration::from_mins(103),
                &mut rng,
            )
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }
}
