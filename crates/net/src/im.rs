//! A simulated Instant Messaging service.
//!
//! Models the observable contract SIMBA relies on (§3.1):
//!
//! * **accounts and logon sessions** — a handle must be registered and
//!   logged on to send or receive; the MAB "is always logged on";
//! * **presence** — senders can check whether the recipient is logged on
//!   before attempting synchronous delivery;
//! * **sub-second delivery** with a mild tail ([`LatencyModel::consumer_im`]);
//! * **per-(sender, recipient) sequence numbers** — the paper tags
//!   acknowledgements "with IM message sequence numbers";
//! * **outages and forced logouts** — the service can go down; when it
//!   recovers, every session is force-logged-out ("logged out due to, for
//!   example, server recovery"), which is exactly the anomaly the IM
//!   Manager's sanity check must detect and repair.
//!
//! The service is a pure state machine: [`ImService::send`] returns either
//! a failure or a [`Transit`] instruction (`deliver after d`), and the
//! harness schedules the arrival event, then calls [`ImService::deliver`].

use crate::latency::LatencyModel;
use crate::loss::LossModel;
use crate::observe::ChannelScope;
use crate::outage::OutageSchedule;
use simba_sim::{SimDuration, SimRng, SimTime};
use simba_telemetry::Telemetry;
use std::collections::{BTreeMap, BTreeSet};

/// An IM account handle (e.g. `"mab-alice"`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ImHandle(pub String);

impl ImHandle {
    /// Convenience constructor.
    pub fn new(s: impl Into<String>) -> Self {
        ImHandle(s.into())
    }
}

impl std::fmt::Display for ImHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Unique id of one IM message instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ImMessageId(pub u64);

/// An instant message in flight or delivered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImMessage {
    /// Unique message instance id.
    pub id: ImMessageId,
    /// Sending handle.
    pub from: ImHandle,
    /// Receiving handle.
    pub to: ImHandle,
    /// Per-(from, to) sequence number, starting at 1.
    pub seq: u64,
    /// Message body.
    pub body: String,
    /// When the service accepted the message.
    pub sent_at: SimTime,
}

/// Why a send failed synchronously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImSendError {
    /// The IM service is inside an outage window.
    ServiceDown,
    /// The sender has no active session (never logged on, or was force-logged-out).
    SenderNotLoggedOn,
    /// The recipient is not logged on; 2001-era IM had no offline queue.
    RecipientOffline,
    /// The sender handle was never registered.
    UnknownSender,
    /// The recipient handle was never registered.
    UnknownRecipient,
}

impl std::fmt::Display for ImSendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ImSendError::ServiceDown => "IM service unavailable",
            ImSendError::SenderNotLoggedOn => "sender not logged on",
            ImSendError::RecipientOffline => "recipient offline",
            ImSendError::UnknownSender => "unknown sender handle",
            ImSendError::UnknownRecipient => "unknown recipient handle",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ImSendError {}

/// A successfully accepted message: deliver `message` after `delay`, unless
/// `lost` (dropped in transit — the recipient never sees it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transit {
    /// The accepted message.
    pub message: ImMessage,
    /// Transit delay to the recipient.
    pub delay: SimDuration,
    /// Whether the message is silently dropped in transit.
    pub lost: bool,
}

/// The simulated IM service.
#[derive(Debug)]
pub struct ImService {
    registered: BTreeSet<ImHandle>,
    logged_on: BTreeSet<ImHandle>,
    buddy_lists: BTreeMap<ImHandle, BTreeSet<ImHandle>>,
    inboxes: BTreeMap<ImHandle, Vec<ImMessage>>,
    seqs: BTreeMap<(ImHandle, ImHandle), u64>,
    latency: LatencyModel,
    loss: LossModel,
    outages: OutageSchedule,
    /// End of the last outage that already forced logouts, to make
    /// recovery processing idempotent.
    last_recovery_processed: Option<SimTime>,
    next_id: u64,
    rng: SimRng,
    scope: ChannelScope,
    health: Option<crate::health::HealthReporter>,
}

impl ImService {
    /// Creates a service with consumer-grade latency, light random loss,
    /// and no scheduled outages.
    pub fn new(rng: SimRng) -> Self {
        ImService {
            registered: BTreeSet::new(),
            logged_on: BTreeSet::new(),
            buddy_lists: BTreeMap::new(),
            inboxes: BTreeMap::new(),
            seqs: BTreeMap::new(),
            latency: LatencyModel::consumer_im(),
            loss: LossModel::Bernoulli(0.001),
            outages: OutageSchedule::always_up(),
            last_recovery_processed: None,
            next_id: 0,
            rng,
            scope: ChannelScope::disabled("im"),
            health: None,
        }
    }

    /// Overrides the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the loss model.
    #[must_use]
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Installs an outage schedule.
    #[must_use]
    pub fn with_outages(mut self, outages: OutageSchedule) -> Self {
        self.outages = outages;
        self
    }

    /// Records sends, rejections, losses, and transit latency through
    /// `telemetry` under the `net.im.*` namespace.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.scope = ChannelScope::new("im", telemetry);
        self
    }

    /// Publishes `chanhealth/im` facts through `reporter`: every accepted
    /// send refreshes `healthy`, every outage rejection publishes
    /// `outage`. Health is observation-driven — a silent service decays
    /// to "unknown" when the fact's TTL runs out.
    #[must_use]
    pub fn with_health_reporter(mut self, reporter: crate::health::HealthReporter) -> Self {
        self.health = Some(reporter);
        self
    }

    /// Registers an account. Idempotent.
    pub fn register(&mut self, handle: ImHandle) {
        self.inboxes.entry(handle.clone()).or_default();
        self.registered.insert(handle);
    }

    /// Whether the service is inside an outage window at `now`.
    ///
    /// Calling any operation implicitly processes pending recovery: if an
    /// outage ended since the last call, all sessions are force-logged-out.
    pub fn is_down(&mut self, now: SimTime) -> bool {
        self.process_recovery(now);
        self.outages.is_down(now)
    }

    fn process_recovery(&mut self, now: SimTime) {
        // Find the latest outage that has fully ended by `now`.
        let ended = self
            .outages
            .windows()
            .iter()
            .filter(|&&(_, e)| e <= now)
            .map(|&(_, e)| e)
            .next_back();
        if let Some(end) = ended {
            if self.last_recovery_processed != Some(end) {
                self.last_recovery_processed = Some(end);
                // Server recovery drops every session (§4.1.1).
                self.logged_on.clear();
            }
        }
    }

    /// Attempts to log `handle` on.
    ///
    /// # Errors
    ///
    /// Fails if the handle is unregistered or the service is down.
    pub fn logon(&mut self, handle: &ImHandle, now: SimTime) -> Result<(), ImSendError> {
        self.process_recovery(now);
        if !self.registered.contains(handle) {
            return Err(ImSendError::UnknownSender);
        }
        if self.outages.is_down(now) {
            return Err(ImSendError::ServiceDown);
        }
        self.logged_on.insert(handle.clone());
        Ok(())
    }

    /// Logs `handle` off. Idempotent.
    pub fn logoff(&mut self, handle: &ImHandle, now: SimTime) {
        self.process_recovery(now);
        self.logged_on.remove(handle);
    }

    /// Force-logs-out a specific handle (fault injection: "logged out due
    /// to ... network disconnection").
    pub fn force_logout(&mut self, handle: &ImHandle) {
        self.logged_on.remove(handle);
    }

    /// Whether `handle` currently has a session.
    pub fn is_logged_on(&mut self, handle: &ImHandle, now: SimTime) -> bool {
        self.process_recovery(now);
        !self.outages.is_down(now) && self.logged_on.contains(handle)
    }

    /// Presence check as another user would see it.
    pub fn presence(&mut self, handle: &ImHandle, now: SimTime) -> bool {
        self.is_logged_on(handle, now)
    }

    /// Adds `buddy` to `owner`'s buddy list. Both must be registered.
    ///
    /// # Errors
    ///
    /// Fails with the corresponding unknown-handle error.
    pub fn add_buddy(&mut self, owner: &ImHandle, buddy: &ImHandle) -> Result<(), ImSendError> {
        if !self.registered.contains(owner) {
            return Err(ImSendError::UnknownSender);
        }
        if !self.registered.contains(buddy) {
            return Err(ImSendError::UnknownRecipient);
        }
        self.buddy_lists.entry(owner.clone()).or_default().insert(buddy.clone());
        Ok(())
    }

    /// The status of every buddy on `owner`'s list: `(handle, online)`.
    /// Requires an active session (and the service up) — "obtain the
    /// status of the buddies" is one of the IM Manager's sanity probes.
    ///
    /// # Errors
    ///
    /// Fails if the service is down or `owner` is not logged on.
    pub fn buddy_status(
        &mut self,
        owner: &ImHandle,
        now: SimTime,
    ) -> Result<Vec<(ImHandle, bool)>, ImSendError> {
        self.process_recovery(now);
        if self.outages.is_down(now) {
            return Err(ImSendError::ServiceDown);
        }
        if !self.logged_on.contains(owner) {
            return Err(ImSendError::SenderNotLoggedOn);
        }
        let list = self.buddy_lists.get(owner).cloned().unwrap_or_default();
        Ok(list
            .into_iter()
            .map(|b| {
                let online = self.logged_on.contains(&b);
                (b, online)
            })
            .collect())
    }

    /// Sends an instant message.
    ///
    /// On success the caller must schedule delivery: after `transit.delay`,
    /// call [`ImService::deliver`] with `transit.message` unless
    /// `transit.lost`.
    ///
    /// # Errors
    ///
    /// See [`ImSendError`]; all failures are synchronous, mirroring how an
    /// IM client surfaces "could not deliver" immediately — this is what
    /// makes IM suitable for the ack-based delivery mode (§3.1).
    pub fn send(
        &mut self,
        from: &ImHandle,
        to: &ImHandle,
        body: impl Into<String>,
        now: SimTime,
    ) -> Result<Transit, ImSendError> {
        let result = self.send_inner(from, to, body.into(), now);
        match &result {
            Ok(transit) => {
                self.scope.sent(now, transit.delay, transit.lost);
                if let Some(health) = &self.health {
                    health.report_healthy(now);
                }
            }
            Err(e) => {
                let outage = matches!(e, ImSendError::ServiceDown);
                self.scope.rejected(now, &e.to_string(), outage);
                // Only service-level failures are channel health; a bad
                // sender or recipient says nothing about the substrate.
                if outage {
                    if let Some(health) = &self.health {
                        health.report_unhealthy("outage", now);
                    }
                }
            }
        }
        result
    }

    fn send_inner(
        &mut self,
        from: &ImHandle,
        to: &ImHandle,
        body: String,
        now: SimTime,
    ) -> Result<Transit, ImSendError> {
        self.process_recovery(now);
        if !self.registered.contains(from) {
            return Err(ImSendError::UnknownSender);
        }
        if !self.registered.contains(to) {
            return Err(ImSendError::UnknownRecipient);
        }
        if self.outages.is_down(now) {
            return Err(ImSendError::ServiceDown);
        }
        if !self.logged_on.contains(from) {
            return Err(ImSendError::SenderNotLoggedOn);
        }
        if !self.logged_on.contains(to) {
            return Err(ImSendError::RecipientOffline);
        }
        let seq = self
            .seqs
            .entry((from.clone(), to.clone()))
            .and_modify(|s| *s += 1)
            .or_insert(1);
        let id = ImMessageId(self.next_id);
        self.next_id += 1;
        let message = ImMessage {
            id,
            from: from.clone(),
            to: to.clone(),
            seq: *seq,
            body,
            sent_at: now,
        };
        let delay = self.latency.sample(&mut self.rng);
        let lost = self.loss.roll(&mut self.rng);
        Ok(Transit { message, delay, lost })
    }

    /// Completes delivery of an in-transit message into the recipient's
    /// inbox. If the recipient lost their session while the message was in
    /// flight, the message is dropped (returns `false`).
    pub fn deliver(&mut self, message: ImMessage, now: SimTime) -> bool {
        self.process_recovery(now);
        let ok = self.logged_on.contains(&message.to) && !self.outages.is_down(now);
        if ok {
            self.inboxes
                .entry(message.to.clone())
                .or_default()
                .push(message);
        }
        self.scope.delivered(ok);
        ok
    }

    /// Drains and returns all messages waiting in `handle`'s inbox.
    pub fn take_inbox(&mut self, handle: &ImHandle) -> Vec<ImMessage> {
        self.inboxes.get_mut(handle).map(std::mem::take).unwrap_or_default()
    }

    /// Number of messages waiting in `handle`'s inbox.
    pub fn inbox_len(&self, handle: &ImHandle) -> usize {
        self.inboxes.get(handle).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> ImService {
        ImService::new(SimRng::new(1))
            .with_latency(LatencyModel::Constant(SimDuration::from_millis(400)))
            .with_loss(LossModel::None)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn send_requires_registration_and_sessions() {
        let mut s = svc();
        let a = ImHandle::new("a");
        let b = ImHandle::new("b");
        assert_eq!(s.send(&a, &b, "x", t(0)), Err(ImSendError::UnknownSender));
        s.register(a.clone());
        assert_eq!(s.send(&a, &b, "x", t(0)), Err(ImSendError::UnknownRecipient));
        s.register(b.clone());
        assert_eq!(s.send(&a, &b, "x", t(0)), Err(ImSendError::SenderNotLoggedOn));
        s.logon(&a, t(0)).unwrap();
        assert_eq!(s.send(&a, &b, "x", t(0)), Err(ImSendError::RecipientOffline));
        s.logon(&b, t(0)).unwrap();
        let transit = s.send(&a, &b, "x", t(0)).unwrap();
        assert_eq!(transit.delay, SimDuration::from_millis(400));
        assert!(!transit.lost);
    }

    #[test]
    fn sequence_numbers_are_per_pair_and_monotonic() {
        let mut s = svc();
        for h in ["a", "b", "c"] {
            s.register(ImHandle::new(h));
            s.logon(&ImHandle::new(h), t(0)).unwrap();
        }
        let a = ImHandle::new("a");
        let b = ImHandle::new("b");
        let c = ImHandle::new("c");
        assert_eq!(s.send(&a, &b, "1", t(0)).unwrap().message.seq, 1);
        assert_eq!(s.send(&a, &b, "2", t(0)).unwrap().message.seq, 2);
        assert_eq!(s.send(&a, &c, "1", t(0)).unwrap().message.seq, 1);
        assert_eq!(s.send(&b, &a, "1", t(0)).unwrap().message.seq, 1);
        assert_eq!(s.send(&a, &b, "3", t(0)).unwrap().message.seq, 3);
    }

    #[test]
    fn deliver_puts_message_in_inbox() {
        let mut s = svc();
        let a = ImHandle::new("a");
        let b = ImHandle::new("b");
        s.register(a.clone());
        s.register(b.clone());
        s.logon(&a, t(0)).unwrap();
        s.logon(&b, t(0)).unwrap();
        let transit = s.send(&a, &b, "hello", t(0)).unwrap();
        assert!(s.deliver(transit.message.clone(), t(1)));
        assert_eq!(s.inbox_len(&b), 1);
        let msgs = s.take_inbox(&b);
        assert_eq!(msgs[0].body, "hello");
        assert_eq!(s.inbox_len(&b), 0);
    }

    #[test]
    fn delivery_fails_if_recipient_logged_off_mid_flight() {
        let mut s = svc();
        let a = ImHandle::new("a");
        let b = ImHandle::new("b");
        s.register(a.clone());
        s.register(b.clone());
        s.logon(&a, t(0)).unwrap();
        s.logon(&b, t(0)).unwrap();
        let transit = s.send(&a, &b, "hello", t(0)).unwrap();
        s.logoff(&b, t(0));
        assert!(!s.deliver(transit.message, t(1)));
        assert_eq!(s.inbox_len(&b), 0);
    }

    #[test]
    fn outage_blocks_sends_and_logons() {
        let mut s = svc().with_outages(OutageSchedule::from_windows(vec![(t(100), t(200))]));
        let a = ImHandle::new("a");
        let b = ImHandle::new("b");
        s.register(a.clone());
        s.register(b.clone());
        s.logon(&a, t(0)).unwrap();
        s.logon(&b, t(0)).unwrap();
        assert!(s.send(&a, &b, "x", t(99)).is_ok());
        assert_eq!(s.send(&a, &b, "x", t(150)), Err(ImSendError::ServiceDown));
        assert_eq!(s.logon(&a, t(150)), Err(ImSendError::ServiceDown));
        assert!(s.is_down(t(150)));
    }

    #[test]
    fn server_recovery_forces_logout_of_all_sessions() {
        // The exact §4.1.1 anomaly the IM Manager's sanity check must fix.
        let mut s = svc().with_outages(OutageSchedule::from_windows(vec![(t(100), t(200))]));
        let a = ImHandle::new("a");
        s.register(a.clone());
        s.logon(&a, t(0)).unwrap();
        assert!(s.is_logged_on(&a, t(50)));
        // During the outage the session is unusable.
        assert!(!s.is_logged_on(&a, t(150)));
        // After recovery the session is *gone* — not restored.
        assert!(!s.is_logged_on(&a, t(250)));
        // A fresh logon works again.
        s.logon(&a, t(250)).unwrap();
        assert!(s.is_logged_on(&a, t(251)));
    }

    #[test]
    fn recovery_processing_is_idempotent() {
        let mut s = svc().with_outages(OutageSchedule::from_windows(vec![(t(100), t(200))]));
        let a = ImHandle::new("a");
        s.register(a.clone());
        assert!(!s.is_down(t(300)));
        s.logon(&a, t(300)).unwrap();
        // Re-querying after recovery must not clear the new session.
        assert!(!s.is_down(t(301)));
        assert!(s.is_logged_on(&a, t(302)));
    }

    #[test]
    fn force_logout_targets_one_handle() {
        let mut s = svc();
        let a = ImHandle::new("a");
        let b = ImHandle::new("b");
        s.register(a.clone());
        s.register(b.clone());
        s.logon(&a, t(0)).unwrap();
        s.logon(&b, t(0)).unwrap();
        s.force_logout(&a);
        assert!(!s.is_logged_on(&a, t(1)));
        assert!(s.is_logged_on(&b, t(1)));
    }

    #[test]
    fn loss_model_marks_messages_lost() {
        let mut s = ImService::new(SimRng::new(2))
            .with_latency(LatencyModel::Constant(SimDuration::from_millis(1)))
            .with_loss(LossModel::Bernoulli(1.0));
        let a = ImHandle::new("a");
        let b = ImHandle::new("b");
        s.register(a.clone());
        s.register(b.clone());
        s.logon(&a, t(0)).unwrap();
        s.logon(&b, t(0)).unwrap();
        assert!(s.send(&a, &b, "x", t(0)).unwrap().lost);
    }

    #[test]
    fn buddy_lists_and_status() {
        let mut s = svc();
        let a = ImHandle::new("a");
        let b = ImHandle::new("b");
        let c = ImHandle::new("c");
        s.register(a.clone());
        s.register(b.clone());
        s.register(c.clone());
        assert_eq!(s.add_buddy(&a, &ImHandle::new("ghost")), Err(ImSendError::UnknownRecipient));
        s.add_buddy(&a, &b).unwrap();
        s.add_buddy(&a, &c).unwrap();
        s.add_buddy(&a, &c).unwrap(); // idempotent

        // Not logged on: cannot query.
        assert_eq!(s.buddy_status(&a, t(0)), Err(ImSendError::SenderNotLoggedOn));
        s.logon(&a, t(0)).unwrap();
        s.logon(&b, t(0)).unwrap();
        let status = s.buddy_status(&a, t(1)).unwrap();
        assert_eq!(status.len(), 2);
        assert!(status.contains(&(b.clone(), true)));
        assert!(status.contains(&(c.clone(), false)));
    }

    #[test]
    fn buddy_status_fails_during_outage() {
        let mut s = svc().with_outages(OutageSchedule::from_windows(vec![(t(10), t(20))]));
        let a = ImHandle::new("a");
        s.register(a.clone());
        s.logon(&a, t(0)).unwrap();
        assert_eq!(s.buddy_status(&a, t(15)), Err(ImSendError::ServiceDown));
    }

    #[test]
    fn message_ids_are_unique() {
        let mut s = svc();
        let a = ImHandle::new("a");
        let b = ImHandle::new("b");
        s.register(a.clone());
        s.register(b.clone());
        s.logon(&a, t(0)).unwrap();
        s.logon(&b, t(0)).unwrap();
        let id1 = s.send(&a, &b, "1", t(0)).unwrap().message.id;
        let id2 = s.send(&a, &b, "2", t(0)).unwrap().message.id;
        assert_ne!(id1, id2);
    }

    #[test]
    fn health_reporter_tracks_outages_through_the_store() {
        use crate::health::HealthReporter;
        use simba_store::{SoftStateStore, StoreConfig, CHANHEALTH_SCOPE, HEALTHY_VALUE};

        let store = SoftStateStore::new(StoreConfig::default(), simba_telemetry::Telemetry::disabled());
        let mut s = svc()
            .with_outages(OutageSchedule::from_windows(vec![(t(100), t(200))]))
            .with_health_reporter(HealthReporter::new(
                store.clone(),
                "im",
                SimDuration::from_secs(30),
            ));
        let a = ImHandle::new("a");
        let b = ImHandle::new("b");
        s.register(a.clone());
        s.register(b.clone());
        s.logon(&a, t(0)).unwrap();
        s.logon(&b, t(0)).unwrap();

        // A working send publishes the healthy fact.
        s.send(&a, &b, "x", t(1)).unwrap();
        let fact = store.get(CHANHEALTH_SCOPE, "im", t(2)).unwrap();
        assert_eq!(fact.value, HEALTHY_VALUE);

        // An outage rejection overwrites it with the failure verdict...
        assert_eq!(s.send(&a, &b, "x", t(150)), Err(ImSendError::ServiceDown));
        let fact = store.get(CHANHEALTH_SCOPE, "im", t(151)).unwrap();
        assert_eq!(fact.value, "outage");

        // ...but a *caller* error during the outage is not channel health.
        let gen_before = fact.generation;
        let ghost = ImHandle::new("ghost");
        assert_eq!(s.send(&ghost, &b, "x", t(152)), Err(ImSendError::UnknownSender));
        let fact = store.get(CHANHEALTH_SCOPE, "im", t(153)).unwrap();
        assert_eq!(fact.generation, gen_before, "caller errors publish nothing");

        // After recovery the next send flips the fact back to healthy;
        // with no traffic at all it would simply have decayed at t+30s.
        s.logon(&a, t(201)).unwrap();
        s.logon(&b, t(201)).unwrap();
        s.send(&a, &b, "x", t(202)).unwrap();
        let fact = store.get(CHANHEALTH_SCOPE, "im", t(203)).unwrap();
        assert_eq!(fact.value, HEALTHY_VALUE);
    }
}
