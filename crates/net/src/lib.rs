//! `simba-net` — simulated communication substrates for SIMBA.
//!
//! The paper's delivery channels were real services: MSN Instant Messenger,
//! corporate SMTP email, and a cell carrier's SMS gateway. This crate
//! provides their synthetic equivalents (DESIGN.md §2), modelling exactly
//! the *observable* properties SIMBA depends on:
//!
//! * [`im`] — an IM service with accounts, logon sessions, presence,
//!   per-pair message sequence numbers, sub-second delivery latency,
//!   scheduled outages, and forced logouts on server recovery (§3.1, §5).
//! * [`email`] — a store-and-forward email service whose delivery time
//!   "can range from seconds to days" (§3.1): Pareto-tailed latency plus
//!   outright loss.
//! * [`sms`] — an SMS gateway with carrier queueing delay, coverage areas,
//!   and phone battery state (§2.3, §3.3).
//! * [`presence`] — where the user is and whether a message that reached a
//!   device is actually *seen and acknowledged* by the human, which is what
//!   end-to-end dependability means in this paper.
//!
//! Shared building blocks: [`latency`] (delay distributions), [`loss`]
//! (drop processes including a Gilbert–Elliott burst model), [`outage`]
//! (service up/down schedules), and [`dedupe`] (bounded idempotency-key
//! filtering so the delivery ledger's at-least-once redeliveries stay
//! exactly-once in visible effect). Each service optionally records per-channel
//! sends, rejections, losses, and transit latency through an
//! [`observe::ChannelScope`] (install one with `with_telemetry`).
//!
//! All types are pure state machines over virtual time: a `send` returns
//! either a failure or a "deliver after `d`" instruction; the simulation
//! harness owns the event queue and schedules the arrival.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dedupe;
pub mod email;
pub mod health;
pub mod im;
pub mod latency;
pub mod loss;
pub mod outage;
pub mod observe;
pub mod presence;
pub mod sms;

pub use dedupe::IdempotencyFilter;
pub use health::HealthReporter;
pub use latency::LatencyModel;
pub use loss::LossModel;
pub use observe::ChannelScope;
pub use outage::OutageSchedule;
