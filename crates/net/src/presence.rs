//! Where the user is, and whether a message that reached a device is
//! actually *seen and acknowledged* by the human.
//!
//! The paper defines dependability as the end-to-end user experience, and
//! its delivery modes exist precisely because the user moves between
//! contexts — at the desk (sees IM), mobile inside coverage (sees SMS),
//! mobile outside coverage, or away from everything (§3.3). This module
//! provides a semi-Markov timeline over those contexts plus a human
//! reaction model, so experiments can measure "time until a human actually
//! saw the alert", not just "time until some queue accepted it".

use simba_sim::{SimDuration, SimRng, SimTime};

/// The user's context at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UserContext {
    /// At the primary desktop: IM popups are seen quickly.
    AtDesk,
    /// Away from the desk, phone in coverage: SMS reaches the user.
    MobileCovered,
    /// Away from the desk, phone out of coverage or off.
    MobileUncovered,
    /// Asleep / unreachable by any device.
    Away,
}

impl UserContext {
    /// Whether an IM that popped up on the desktop would be seen.
    pub fn sees_im(self) -> bool {
        matches!(self, UserContext::AtDesk)
    }

    /// Whether an SMS that reached the handset would be seen.
    pub fn sees_sms(self) -> bool {
        matches!(self, UserContext::AtDesk | UserContext::MobileCovered)
    }

    /// Whether the user is reading email (only at the desk, and lazily).
    pub fn sees_email(self) -> bool {
        matches!(self, UserContext::AtDesk)
    }
}

/// Mean dwell times per context, the knobs of the timeline generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DwellProfile {
    /// Mean time spent at the desk per visit.
    pub at_desk: SimDuration,
    /// Mean time mobile-with-coverage per excursion.
    pub mobile_covered: SimDuration,
    /// Mean time mobile-without-coverage per excursion.
    pub mobile_uncovered: SimDuration,
    /// Mean time fully away (nights, meetings-without-phone).
    pub away: SimDuration,
}

impl Default for DwellProfile {
    /// An office-worker profile: hours at the desk, short excursions,
    /// nightly absence.
    fn default() -> Self {
        DwellProfile {
            at_desk: SimDuration::from_mins(90),
            mobile_covered: SimDuration::from_mins(45),
            mobile_uncovered: SimDuration::from_mins(10),
            away: SimDuration::from_hours(8),
        }
    }
}

/// A precomputed, deterministic timeline of user contexts over a horizon.
#[derive(Debug, Clone)]
pub struct PresenceTimeline {
    /// `(start, context)`, sorted by start; first entry starts at t = 0.
    segments: Vec<(SimTime, UserContext)>,
    horizon: SimTime,
}

impl PresenceTimeline {
    /// A user pinned to one context forever (unit-test helper).
    pub fn constant(context: UserContext, horizon: SimTime) -> Self {
        PresenceTimeline {
            segments: vec![(SimTime::ZERO, context)],
            horizon,
        }
    }

    /// Builds a timeline from explicit segments. The first segment must
    /// start at t = 0 and starts must be strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics if the segment list is empty or malformed — timelines are
    /// experiment fixtures, so malformed input is a programming error.
    pub fn from_segments(segments: Vec<(SimTime, UserContext)>, horizon: SimTime) -> Self {
        assert!(!segments.is_empty(), "timeline needs at least one segment");
        assert_eq!(segments[0].0, SimTime::ZERO, "first segment must start at 0");
        assert!(
            segments.windows(2).all(|w| w[0].0 < w[1].0),
            "segment starts must be strictly increasing"
        );
        PresenceTimeline { segments, horizon }
    }

    /// Generates a semi-Markov timeline: exponential dwell in each context,
    /// then a transition weighted toward the realistic day pattern
    /// (desk ↔ mobile, with occasional full absence).
    pub fn generate(horizon: SimTime, profile: DwellProfile, rng: &mut SimRng) -> Self {
        let mut segments = Vec::new();
        let mut t = SimTime::ZERO;
        let mut ctx = UserContext::AtDesk;
        while t < horizon {
            segments.push((t, ctx));
            let mean = match ctx {
                UserContext::AtDesk => profile.at_desk,
                UserContext::MobileCovered => profile.mobile_covered,
                UserContext::MobileUncovered => profile.mobile_uncovered,
                UserContext::Away => profile.away,
            };
            let dwell = SimDuration::from_secs_f64(rng.exponential(mean.as_secs_f64()))
                .max(SimDuration::from_secs(30));
            t += dwell;
            ctx = match ctx {
                UserContext::AtDesk => {
                    if rng.chance(0.6) {
                        UserContext::MobileCovered
                    } else if rng.chance(0.5) {
                        UserContext::Away
                    } else {
                        UserContext::MobileUncovered
                    }
                }
                UserContext::MobileCovered => {
                    if rng.chance(0.65) {
                        UserContext::AtDesk
                    } else if rng.chance(0.5) {
                        UserContext::MobileUncovered
                    } else {
                        UserContext::Away
                    }
                }
                UserContext::MobileUncovered => {
                    if rng.chance(0.7) {
                        UserContext::MobileCovered
                    } else {
                        UserContext::AtDesk
                    }
                }
                UserContext::Away => {
                    if rng.chance(0.8) {
                        UserContext::AtDesk
                    } else {
                        UserContext::MobileCovered
                    }
                }
            };
        }
        PresenceTimeline { segments, horizon }
    }

    /// The context at instant `at` (clamped to the last segment beyond the
    /// horizon).
    pub fn context_at(&self, at: SimTime) -> UserContext {
        match self.segments.binary_search_by(|(s, _)| s.cmp(&at)) {
            Ok(i) => self.segments[i].1,
            Err(0) => self.segments[0].1,
            Err(i) => self.segments[i - 1].1,
        }
    }

    /// The next instant at or after `at` when the context changes, if any.
    pub fn next_change(&self, at: SimTime) -> Option<SimTime> {
        self.segments.iter().map(|&(s, _)| s).find(|&s| s > at)
    }

    /// The generation horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// All segments (for reporting).
    pub fn segments(&self) -> &[(SimTime, UserContext)] {
        &self.segments
    }

    /// Fraction of `[0, horizon)` spent in `context`.
    pub fn fraction_in(&self, context: UserContext) -> f64 {
        if self.horizon == SimTime::ZERO {
            return 0.0;
        }
        let mut total = SimDuration::ZERO;
        for (i, &(start, ctx)) in self.segments.iter().enumerate() {
            if ctx != context {
                continue;
            }
            let end = self
                .segments
                .get(i + 1)
                .map(|&(s, _)| s)
                .unwrap_or(self.horizon)
                .min(self.horizon);
            total += end - start;
        }
        total.as_secs_f64() / self.horizon.as_secs_f64()
    }
}

/// Human reaction-time model: once a message is *visible*, how long until
/// the user reads and (for IM) acknowledges it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HumanModel {
    /// Median reaction to an IM popup at the desk.
    pub im_reaction_median_secs: f64,
    /// Median reaction to an SMS buzz while mobile.
    pub sms_reaction_median_secs: f64,
    /// Median until the user next polls email at the desk.
    pub email_poll_median_secs: f64,
    /// Log-space sigma shared by all three.
    pub sigma: f64,
}

impl Default for HumanModel {
    fn default() -> Self {
        HumanModel {
            im_reaction_median_secs: 8.0,
            sms_reaction_median_secs: 40.0,
            email_poll_median_secs: 900.0,
            sigma: 0.6,
        }
    }
}

impl HumanModel {
    /// Reaction delay to a visible IM popup.
    pub fn im_reaction(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.lognormal(self.im_reaction_median_secs, self.sigma))
    }

    /// Reaction delay to a visible SMS.
    pub fn sms_reaction(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.lognormal(self.sms_reaction_median_secs, self.sigma))
    }

    /// Delay until the next email poll.
    pub fn email_poll(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.lognormal(self.email_poll_median_secs, self.sigma))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn context_visibility_matrix() {
        assert!(UserContext::AtDesk.sees_im());
        assert!(UserContext::AtDesk.sees_sms());
        assert!(UserContext::AtDesk.sees_email());
        assert!(!UserContext::MobileCovered.sees_im());
        assert!(UserContext::MobileCovered.sees_sms());
        assert!(!UserContext::MobileUncovered.sees_sms());
        assert!(!UserContext::Away.sees_im());
        assert!(!UserContext::Away.sees_sms());
        assert!(!UserContext::Away.sees_email());
    }

    #[test]
    fn constant_timeline() {
        let tl = PresenceTimeline::constant(UserContext::AtDesk, t(1_000));
        assert_eq!(tl.context_at(t(0)), UserContext::AtDesk);
        assert_eq!(tl.context_at(t(999_999)), UserContext::AtDesk);
        assert_eq!(tl.next_change(t(0)), None);
        assert!((tl.fraction_in(UserContext::AtDesk) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segment_lookup() {
        let tl = PresenceTimeline::from_segments(
            vec![
                (t(0), UserContext::AtDesk),
                (t(100), UserContext::MobileCovered),
                (t(200), UserContext::Away),
            ],
            t(300),
        );
        assert_eq!(tl.context_at(t(0)), UserContext::AtDesk);
        assert_eq!(tl.context_at(t(99)), UserContext::AtDesk);
        assert_eq!(tl.context_at(t(100)), UserContext::MobileCovered);
        assert_eq!(tl.context_at(t(150)), UserContext::MobileCovered);
        assert_eq!(tl.context_at(t(250)), UserContext::Away);
        assert_eq!(tl.next_change(t(0)), Some(t(100)));
        assert_eq!(tl.next_change(t(100)), Some(t(200)));
        assert_eq!(tl.next_change(t(200)), None);
    }

    #[test]
    fn fractions_sum_to_one() {
        let tl = PresenceTimeline::from_segments(
            vec![
                (t(0), UserContext::AtDesk),
                (t(100), UserContext::MobileCovered),
                (t(200), UserContext::Away),
            ],
            t(400),
        );
        let sum = tl.fraction_in(UserContext::AtDesk)
            + tl.fraction_in(UserContext::MobileCovered)
            + tl.fraction_in(UserContext::MobileUncovered)
            + tl.fraction_in(UserContext::Away);
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        assert!((tl.fraction_in(UserContext::Away) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "first segment must start at 0")]
    fn from_segments_validates_start() {
        PresenceTimeline::from_segments(vec![(t(10), UserContext::AtDesk)], t(100));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_segments_validates_order() {
        PresenceTimeline::from_segments(
            vec![(t(0), UserContext::AtDesk), (t(0), UserContext::Away)],
            t(100),
        );
    }

    #[test]
    fn generated_timeline_covers_horizon_and_visits_contexts() {
        let mut rng = SimRng::new(99);
        let tl = PresenceTimeline::generate(SimTime::from_days(7), DwellProfile::default(), &mut rng);
        assert_eq!(tl.segments()[0].0, SimTime::ZERO);
        // A week of office life should include all four contexts.
        for ctx in [
            UserContext::AtDesk,
            UserContext::MobileCovered,
            UserContext::MobileUncovered,
            UserContext::Away,
        ] {
            assert!(tl.fraction_in(ctx) > 0.0, "never visited {ctx:?}");
        }
        // Desk and away should dominate for the default profile.
        assert!(tl.fraction_in(UserContext::AtDesk) > 0.15);
        assert!(tl.fraction_in(UserContext::Away) > 0.15);
    }

    #[test]
    fn generated_timeline_is_deterministic() {
        let mk = |seed| {
            let mut rng = SimRng::new(seed);
            PresenceTimeline::generate(SimTime::from_days(3), DwellProfile::default(), &mut rng)
                .segments()
                .to_vec()
        };
        assert_eq!(mk(5), mk(5));
        assert_ne!(mk(5), mk(6));
    }

    #[test]
    fn human_model_draws_positive_ordered_medians() {
        let hm = HumanModel::default();
        let mut rng = SimRng::new(3);
        let im: f64 = (0..500).map(|_| hm.im_reaction(&mut rng).as_secs_f64()).sum::<f64>() / 500.0;
        let sms: f64 = (0..500).map(|_| hm.sms_reaction(&mut rng).as_secs_f64()).sum::<f64>() / 500.0;
        let email: f64 = (0..500).map(|_| hm.email_poll(&mut rng).as_secs_f64()).sum::<f64>() / 500.0;
        assert!(im > 0.0 && im < sms && sms < email, "im={im} sms={sms} email={email}");
    }
}
