//! Channel-level telemetry: one [`ChannelScope`] per simulated service.
//!
//! The paper's evaluation (§5) is ultimately a statement about *channel
//! behavior* — IM latency under outages, email's seconds-to-days tail, SMS
//! coverage gaps. A `ChannelScope` gives each simulated substrate a uniform
//! way to record that behavior: `net.<channel>.sent` / `net.<channel>.rejected`
//! events, send/reject/loss counters, and a `net.<channel>.latency_ms`
//! histogram of sampled transit delays. Like everything in the telemetry
//! spine, timestamps are caller-supplied virtual time — a disabled scope
//! emits nothing and the services behave identically with or without one.

use simba_sim::{SimDuration, SimTime};
use simba_telemetry::{Event, Telemetry};

/// Telemetry for one named channel (`"im"`, `"email"`, `"sms"`).
#[derive(Debug, Clone)]
pub struct ChannelScope {
    telemetry: Telemetry,
    channel: &'static str,
}

impl ChannelScope {
    /// A scope that records nothing (the default for every service).
    pub fn disabled(channel: &'static str) -> Self {
        ChannelScope {
            telemetry: Telemetry::disabled(),
            channel,
        }
    }

    /// A scope recording through `telemetry` under the `net.<channel>.*`
    /// namespace.
    pub fn new(channel: &'static str, telemetry: Telemetry) -> Self {
        ChannelScope { telemetry, channel }
    }

    /// The channel name this scope tags its records with.
    pub fn channel(&self) -> &'static str {
        self.channel
    }

    fn metric(&self, suffix: &str) -> String {
        format!("net.{}.{suffix}", self.channel)
    }

    /// Records an accepted send: the sampled transit `delay` goes into the
    /// `net.<channel>.latency_ms` histogram, and silently `lost` messages
    /// bump the loss counter (the sender cannot see this — telemetry can).
    pub fn sent(&self, now: SimTime, delay: SimDuration, lost: bool) {
        if !self.telemetry.enabled() {
            return;
        }
        self.telemetry.metrics().counter(&self.metric("sends")).incr();
        self.telemetry
            .metrics()
            .histogram(&self.metric("latency_ms"))
            .observe_ms(delay.as_millis());
        if lost {
            self.telemetry.metrics().counter(&self.metric("lost")).incr();
        }
        self.telemetry.emit(
            Event::new(self.metric("sent"), now.as_millis())
                .with("delay_ms", delay.as_millis())
                .with("lost", lost),
        );
    }

    /// Records a synchronous send rejection; `outage` marks rejections
    /// caused by a service-wide outage window rather than per-recipient
    /// state.
    pub fn rejected(&self, now: SimTime, reason: &str, outage: bool) {
        if !self.telemetry.enabled() {
            return;
        }
        self.telemetry.metrics().counter(&self.metric("rejects")).incr();
        if outage {
            self.telemetry.metrics().counter(&self.metric("outage_rejects")).incr();
        }
        self.telemetry.emit(
            Event::new(self.metric("rejected"), now.as_millis())
                .with("reason", reason)
                .with("outage", outage),
        );
    }

    /// Records the terminal hop: `ok` is whether the message actually
    /// reached the endpoint (inbox deposit, handset in coverage, ...).
    /// Counter-only — some substrates complete delivery without a clock in
    /// hand, and counters carry no timestamps.
    pub fn delivered(&self, ok: bool) {
        if !self.telemetry.enabled() {
            return;
        }
        let suffix = if ok { "delivered" } else { "dropped" };
        self.telemetry.metrics().counter(&self.metric(suffix)).incr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::im::{ImHandle, ImService};
    use crate::latency::LatencyModel;
    use crate::loss::LossModel;
    use crate::outage::OutageSchedule;
    use crate::sms::SmsNumber;
    use simba_sim::SimRng;
    use simba_telemetry::RingBufferSink;
    use std::sync::Arc;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn im_sends_rejects_and_outages_are_counted() {
        let sink = Arc::new(RingBufferSink::new(64));
        let telemetry = Telemetry::with_sink(sink.clone());
        let mut s = ImService::new(SimRng::new(1))
            .with_latency(LatencyModel::Constant(SimDuration::from_millis(400)))
            .with_loss(LossModel::None)
            .with_outages(OutageSchedule::from_windows(vec![(t(100), t(200))]))
            .with_telemetry(telemetry.clone());
        let a = ImHandle::new("a");
        let b = ImHandle::new("b");
        s.register(a.clone());
        s.register(b.clone());
        s.logon(&a, t(0)).unwrap();
        s.logon(&b, t(0)).unwrap();

        let transit = s.send(&a, &b, "x", t(1)).unwrap();
        assert!(s.deliver(transit.message, t(2)));
        // Outage window: rejected with the outage flag.
        assert!(s.send(&a, &b, "x", t(150)).is_err());

        let snap = telemetry.metrics().snapshot();
        assert_eq!(snap.counter("net.im.sends"), 1);
        assert_eq!(snap.counter("net.im.rejects"), 1);
        assert_eq!(snap.counter("net.im.outage_rejects"), 1);
        assert_eq!(snap.counter("net.im.delivered"), 1);
        assert_eq!(snap.histogram("net.im.latency_ms").unwrap().sum_ms, 400);

        let events = sink.events();
        assert!(events.iter().any(|e| e.name == "net.im.sent"));
        let rejected = events.iter().find(|e| e.name == "net.im.rejected").unwrap();
        assert_eq!(rejected.time_ms, 150_000);
    }

    #[test]
    fn email_records_tail_latency_and_silent_loss() {
        let telemetry = Telemetry::with_sink(Arc::new(RingBufferSink::new(16)));
        let mut s = crate::email::EmailService::new(SimRng::new(2))
            .with_latency(LatencyModel::Constant(SimDuration::from_secs(30)))
            .with_loss(LossModel::Bernoulli(1.0))
            .with_telemetry(telemetry.clone());
        let from = crate::email::EmailAddr::new("a");
        let to = crate::email::EmailAddr::new("b");
        let transit = s.send(&from, &to, "n", "s", "b", t(5));
        assert!(transit.lost);
        s.deposit(transit.message);

        let snap = telemetry.metrics().snapshot();
        assert_eq!(snap.counter("net.email.sends"), 1);
        assert_eq!(snap.counter("net.email.lost"), 1);
        assert_eq!(snap.counter("net.email.delivered"), 1);
        assert_eq!(snap.histogram("net.email.latency_ms").unwrap().sum_ms, 30_000);
    }

    #[test]
    fn sms_delivery_outcome_depends_on_phone_state() {
        let telemetry = Telemetry::with_sink(Arc::new(RingBufferSink::new(16)));
        let mut g = crate::sms::SmsGateway::new(SimRng::new(3))
            .with_latency(LatencyModel::Constant(SimDuration::from_secs(6)))
            .with_loss(LossModel::None)
            .with_telemetry(telemetry.clone());
        let n = SmsNumber::new("+1-555-0100");
        // Unregistered phone: queued fine, dropped at the handset.
        let transit = g.send(&n, "x", t(0));
        assert!(!g.deliver(&transit.message));
        g.register(n.clone(), crate::sms::PhoneState::reachable());
        assert!(g.deliver(&transit.message));

        let snap = telemetry.metrics().snapshot();
        assert_eq!(snap.counter("net.sms.sends"), 1);
        assert_eq!(snap.counter("net.sms.dropped"), 1);
        assert_eq!(snap.counter("net.sms.delivered"), 1);
    }

    #[test]
    fn disabled_scope_records_nothing() {
        let scope = ChannelScope::disabled("im");
        scope.sent(t(1), SimDuration::from_millis(5), false);
        scope.rejected(t(1), "down", true);
        scope.delivered(true);
        // Nothing observable: the scope's private registry stays empty.
        assert_eq!(scope.channel(), "im");
    }
}
