//! Message-drop processes.

use simba_sim::SimRng;

/// A (possibly stateful) message-loss process. `roll` returns `true` when
/// the message is lost.
#[derive(Debug, Clone, PartialEq)]
pub enum LossModel {
    /// Never loses messages.
    None,
    /// Independent loss with probability `p` per message.
    Bernoulli(
        /// Per-message loss probability.
        f64,
    ),
    /// Gilbert–Elliott two-state burst loss: long good periods with rare
    /// loss, punctuated by bad bursts where most messages drop. Models the
    /// "corporate proxy server unavailability, network connection problems"
    /// the paper's fault log attributes downtime to (§5).
    Burst {
        /// Probability of entering the bad state per message while good.
        p_enter: f64,
        /// Probability of leaving the bad state per message while bad.
        p_exit: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
        /// Current state.
        bad: bool,
    },
}

impl LossModel {
    /// A fresh Gilbert–Elliott model starting in the good state.
    pub fn burst(p_enter: f64, p_exit: f64, loss_good: f64, loss_bad: f64) -> Self {
        LossModel::Burst {
            p_enter,
            p_exit,
            loss_good,
            loss_bad,
            bad: false,
        }
    }

    /// Rolls the process for one message; `true` means the message is lost.
    pub fn roll(&mut self, rng: &mut SimRng) -> bool {
        match self {
            LossModel::None => false,
            LossModel::Bernoulli(p) => rng.chance(*p),
            LossModel::Burst {
                p_enter,
                p_exit,
                loss_good,
                loss_bad,
                bad,
            } => {
                // Transition first, then roll loss in the (new) state.
                if *bad {
                    if rng.chance(*p_exit) {
                        *bad = false;
                    }
                } else if rng.chance(*p_enter) {
                    *bad = true;
                }
                let p = if *bad { *loss_bad } else { *loss_good };
                rng.chance(p)
            }
        }
    }

    /// Whether a burst model is currently in its bad state (always `false`
    /// for stateless models). Exposed for tests and trace annotations.
    pub fn in_burst(&self) -> bool {
        matches!(self, LossModel::Burst { bad: true, .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_loses() {
        let mut m = LossModel::None;
        let mut r = SimRng::new(1);
        assert!((0..1_000).all(|_| !m.roll(&mut r)));
    }

    #[test]
    fn bernoulli_rate_is_calibrated() {
        let mut m = LossModel::Bernoulli(0.1);
        let mut r = SimRng::new(2);
        let losses = (0..20_000).filter(|_| m.roll(&mut r)).count();
        assert!((1_800..2_200).contains(&losses), "losses = {losses}");
    }

    #[test]
    fn burst_clusters_losses() {
        let mut m = LossModel::burst(0.002, 0.05, 0.001, 0.9);
        let mut r = SimRng::new(3);
        let rolls: Vec<bool> = (0..50_000).map(|_| m.roll(&mut r)).collect();
        let total = rolls.iter().filter(|&&l| l).count();
        assert!(total > 100, "expected bursty losses, got {total}");

        // Losses must be clustered: the probability that a loss directly
        // follows another loss should far exceed the base rate.
        let pairs = rolls.windows(2).filter(|w| w[0] && w[1]).count();
        let p_loss = total as f64 / rolls.len() as f64;
        let p_loss_after_loss = pairs as f64 / total as f64;
        assert!(
            p_loss_after_loss > 5.0 * p_loss,
            "no clustering: {p_loss_after_loss} vs {p_loss}"
        );
    }

    #[test]
    fn burst_state_transitions_are_visible() {
        let mut m = LossModel::burst(1.0, 0.0, 0.0, 1.0);
        let mut r = SimRng::new(4);
        assert!(!m.in_burst());
        assert!(m.roll(&mut r)); // enters bad immediately, loses everything
        assert!(m.in_burst());
    }
}
