//! A simulated store-and-forward email service.
//!
//! "It is well understood that email delivery is not guaranteed to be
//! reliable, and the unpredictable delivery time can range from seconds to
//! days" (§3.1). That sentence is this module's specification: Pareto-tailed
//! transit times, outright loss, and asynchronous mailbox deposit. Email is
//! SIMBA's *fallback* channel, so the model also exposes the new-mail
//! notification event that client software can miss ("potential loss of
//! new-email events", §4.2.1).

use crate::latency::LatencyModel;
use crate::loss::LossModel;
use crate::observe::ChannelScope;
use simba_sim::{SimDuration, SimRng, SimTime};
use simba_telemetry::Telemetry;
use std::collections::BTreeMap;

/// An email address.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EmailAddr(pub String);

impl EmailAddr {
    /// Convenience constructor.
    pub fn new(s: impl Into<String>) -> Self {
        EmailAddr(s.into())
    }
}

impl std::fmt::Display for EmailAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Unique id of one email message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EmailId(pub u64);

/// An email message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Email {
    /// Unique message id.
    pub id: EmailId,
    /// Sender address.
    pub from: EmailAddr,
    /// Recipient address.
    pub to: EmailAddr,
    /// Sender display name — alert keyword extraction reads this field for
    /// Yahoo!/Alerts.com-style alerts (§4.2 "Alert classification").
    pub sender_name: String,
    /// Subject line — MSN Mobile / desktop-assistant alerts carry keywords here.
    pub subject: String,
    /// Body text.
    pub body: String,
    /// When the message was submitted.
    pub sent_at: SimTime,
}

/// Result of submitting an email: it will arrive after `delay`, or it is
/// silently `lost` (the sender gets no bounce — worst-case email).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmailTransit {
    /// The accepted message.
    pub message: Email,
    /// Transit delay until mailbox deposit.
    pub delay: SimDuration,
    /// Whether the message is silently dropped in transit.
    pub lost: bool,
}

/// The simulated email service.
#[derive(Debug)]
pub struct EmailService {
    mailboxes: BTreeMap<EmailAddr, Vec<Email>>,
    latency: LatencyModel,
    loss: LossModel,
    /// Probability that the new-mail notification event is lost even though
    /// the message was deposited (the client then only notices the mail on
    /// its next full mailbox poll — a §4.2.1 self-stabilization target).
    notify_loss: f64,
    next_id: u64,
    rng: SimRng,
    scope: ChannelScope,
}

impl EmailService {
    /// Creates a service with the paper-calibrated heavy-tail latency,
    /// 0.5 % silent loss, and 2 % new-mail-event loss.
    pub fn new(rng: SimRng) -> Self {
        EmailService {
            mailboxes: BTreeMap::new(),
            latency: LatencyModel::store_and_forward_email(),
            loss: LossModel::Bernoulli(0.005),
            notify_loss: 0.02,
            next_id: 0,
            rng,
            scope: ChannelScope::disabled("email"),
        }
    }

    /// Overrides the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the loss model.
    #[must_use]
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Overrides the new-mail notification loss probability.
    #[must_use]
    pub fn with_notify_loss(mut self, p: f64) -> Self {
        self.notify_loss = p;
        self
    }

    /// Records sends, losses, and transit latency through `telemetry` under
    /// the `net.email.*` namespace.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.scope = ChannelScope::new("email", telemetry);
        self
    }

    /// Submits an email. Never fails synchronously — SMTP accepts and then
    /// loses/delays messages downstream, which is exactly why the paper
    /// rules email out for time-critical alerts.
    pub fn send(
        &mut self,
        from: &EmailAddr,
        to: &EmailAddr,
        sender_name: impl Into<String>,
        subject: impl Into<String>,
        body: impl Into<String>,
        now: SimTime,
    ) -> EmailTransit {
        let id = EmailId(self.next_id);
        self.next_id += 1;
        let message = Email {
            id,
            from: from.clone(),
            to: to.clone(),
            sender_name: sender_name.into(),
            subject: subject.into(),
            body: body.into(),
            sent_at: now,
        };
        let delay = self.latency.sample(&mut self.rng);
        let lost = self.loss.roll(&mut self.rng);
        self.scope.sent(now, delay, lost);
        EmailTransit { message, delay, lost }
    }

    /// Deposits an in-transit message into the recipient mailbox. Returns
    /// `true` if the new-mail notification event fires (the common case) or
    /// `false` if the deposit was silent (notification lost).
    pub fn deposit(&mut self, message: Email) -> bool {
        self.mailboxes
            .entry(message.to.clone())
            .or_default()
            .push(message);
        self.scope.delivered(true);
        !self.rng.chance(self.notify_loss)
    }

    /// Drains and returns all mail waiting for `addr` (a full mailbox poll).
    pub fn take_mailbox(&mut self, addr: &EmailAddr) -> Vec<Email> {
        self.mailboxes.get_mut(addr).map(std::mem::take).unwrap_or_default()
    }

    /// Number of messages waiting for `addr`.
    pub fn mailbox_len(&self, addr: &EmailAddr) -> usize {
        self.mailboxes.get(addr).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc() -> EmailService {
        EmailService::new(SimRng::new(1))
            .with_latency(LatencyModel::Constant(SimDuration::from_secs(10)))
            .with_loss(LossModel::None)
            .with_notify_loss(0.0)
    }

    fn addr(s: &str) -> EmailAddr {
        EmailAddr::new(s)
    }

    #[test]
    fn send_and_deposit_round_trip() {
        let mut s = svc();
        let transit = s.send(
            &addr("yahoo-alerts@alerts"),
            &addr("mab@home"),
            "Yahoo! Stocks",
            "MSFT crossed 80",
            "body",
            SimTime::ZERO,
        );
        assert!(!transit.lost);
        assert_eq!(transit.delay, SimDuration::from_secs(10));
        assert!(s.deposit(transit.message.clone()));
        assert_eq!(s.mailbox_len(&addr("mab@home")), 1);
        let mail = s.take_mailbox(&addr("mab@home"));
        assert_eq!(mail[0].sender_name, "Yahoo! Stocks");
        assert_eq!(mail[0].subject, "MSFT crossed 80");
        assert_eq!(s.mailbox_len(&addr("mab@home")), 0);
    }

    #[test]
    fn unknown_mailbox_is_empty_not_error() {
        let mut s = svc();
        assert!(s.take_mailbox(&addr("nobody@nowhere")).is_empty());
        assert_eq!(s.mailbox_len(&addr("nobody@nowhere")), 0);
    }

    #[test]
    fn loss_marks_transit_lost() {
        let mut s = svc().with_loss(LossModel::Bernoulli(1.0));
        let t = s.send(&addr("a"), &addr("b"), "n", "s", "b", SimTime::ZERO);
        assert!(t.lost);
    }

    #[test]
    fn notify_loss_suppresses_notification_but_not_deposit() {
        let mut s = svc().with_notify_loss(1.0);
        let t = s.send(&addr("a"), &addr("b"), "n", "s", "b", SimTime::ZERO);
        assert!(!s.deposit(t.message)); // notification lost...
        assert_eq!(s.mailbox_len(&addr("b")), 1); // ...but mail is there
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut s = svc();
        let a = s.send(&addr("a"), &addr("b"), "n", "s", "b", SimTime::ZERO);
        let b = s.send(&addr("a"), &addr("b"), "n", "s", "b", SimTime::ZERO);
        assert!(b.message.id > a.message.id);
    }

    #[test]
    fn default_latency_is_heavy_tailed() {
        let mut s = EmailService::new(SimRng::new(7)).with_loss(LossModel::None);
        let delays: Vec<SimDuration> = (0..5_000)
            .map(|_| s.send(&addr("a"), &addr("b"), "n", "s", "b", SimTime::ZERO).delay)
            .collect();
        assert!(delays.iter().all(|d| d.as_secs() >= 8));
        assert!(delays.iter().any(|d| d.as_mins() >= 10), "no tail observed");
    }
}
