//! Channel-health publication into the soft-state store.
//!
//! The paper's §5 integration has the delivery channels themselves feed
//! the Soft-State Store: a channel that is visibly failing publishes a
//! short-lived `chanhealth/<channel>` fact, MyAlertBuddy demotes that
//! channel's delivery blocks while the fact is live, and — because soft
//! state decays on its own — a channel that simply goes silent reverts
//! to "unknown" and the static profile takes over. [`HealthReporter`] is
//! the publishing half: each observation refreshes the fact's TTL, so
//! health is only ever as stale as the reporting channel's last send.

use simba_sim::{SimDuration, SimTime};
use simba_store::{SoftStateStore, CHANHEALTH_SCOPE, HEALTHY_VALUE};

/// Publishes `chanhealth/<channel>` facts for one channel. Cheap to
/// clone; like every substrate in this crate it never reads a wall
/// clock — the owner supplies `now`.
#[derive(Debug, Clone)]
pub struct HealthReporter {
    store: SoftStateStore,
    channel: &'static str,
    ttl: SimDuration,
}

impl HealthReporter {
    /// A reporter publishing under `chanhealth/<channel>` with `ttl` per
    /// fact. Pick the TTL against the channel's traffic cadence: it must
    /// outlive the gap between sends or health flaps to "unknown".
    pub fn new(store: SoftStateStore, channel: &'static str, ttl: SimDuration) -> Self {
        HealthReporter { store, channel, ttl }
    }

    /// The `chanhealth` key this reporter publishes under.
    pub fn channel(&self) -> &'static str {
        self.channel
    }

    /// Publishes (or refreshes) the healthy fact; returns its generation.
    pub fn report_healthy(&self, now: SimTime) -> u64 {
        self.put(HEALTHY_VALUE, now)
    }

    /// Publishes (or refreshes) an unhealthy fact — `reason` is the
    /// stored value (`"outage"`, `"degraded"`, ...); anything other than
    /// the healthy value demotes the channel's blocks.
    pub fn report_unhealthy(&self, reason: &str, now: SimTime) -> u64 {
        debug_assert_ne!(reason, HEALTHY_VALUE, "use report_healthy");
        self.put(reason, now)
    }

    fn put(&self, value: &str, now: SimTime) -> u64 {
        self.store
            .put(CHANHEALTH_SCOPE, self.channel, value, self.ttl, self.channel, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simba_store::StoreConfig;
    use simba_telemetry::Telemetry;

    fn store() -> SoftStateStore {
        SoftStateStore::new(StoreConfig::default(), Telemetry::disabled())
    }

    #[test]
    fn reports_publish_and_decay() {
        let store = store();
        let reporter = HealthReporter::new(store.clone(), "im", SimDuration::from_secs(10));
        assert_eq!(reporter.channel(), "im");

        let g1 = reporter.report_unhealthy("outage", SimTime::ZERO);
        let fact = store.get(CHANHEALTH_SCOPE, "im", SimTime::from_secs(1)).unwrap();
        assert_eq!(fact.value, "outage");
        assert_eq!(fact.generation, g1);

        // Recovery overwrites with a newer generation...
        let g2 = reporter.report_healthy(SimTime::from_secs(2));
        assert!(g2 > g1);
        let fact = store.get(CHANHEALTH_SCOPE, "im", SimTime::from_secs(3)).unwrap();
        assert_eq!(fact.value, HEALTHY_VALUE);

        // ...and silence decays to absence (unknown), not to a stale verdict.
        assert!(store.get(CHANHEALTH_SCOPE, "im", SimTime::from_secs(13)).is_none());
    }
}
