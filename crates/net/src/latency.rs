//! Delay distributions for message transit times.

use simba_sim::{SimDuration, SimRng};

/// A distribution over transit delays.
///
/// Calibration targets come from the paper (§3.1, §5): IM is sub-second
/// with a mild tail; email and SMS range "from seconds to days".
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Always exactly this long.
    Constant(SimDuration),
    /// Uniform between the two bounds (inclusive of `lo`, exclusive of `hi`).
    Uniform {
        /// Lower bound.
        lo: SimDuration,
        /// Upper bound.
        hi: SimDuration,
    },
    /// Log-normal, parameterized by median seconds and log-space sigma.
    /// The workhorse for IM delivery ("typically less than one second").
    LogNormal {
        /// Median delay in seconds.
        median_secs: f64,
        /// Log-space standard deviation (≈ tail weight).
        sigma: f64,
    },
    /// A minimum transit time plus a Pareto tail, capped. The email/SMS
    /// shape: most messages arrive in seconds, some take hours.
    ParetoTail {
        /// Minimum transit time in seconds (also the Pareto scale).
        min_secs: f64,
        /// Pareto shape; smaller = heavier tail.
        alpha: f64,
        /// Hard cap in seconds (a mail server's retry give-up horizon).
        cap_secs: f64,
    },
}

impl LatencyModel {
    /// The paper's IM channel: median ≈ 0.4 s, overwhelmingly under 1 s.
    pub fn consumer_im() -> Self {
        LatencyModel::LogNormal {
            median_secs: 0.4,
            sigma: 0.35,
        }
    }

    /// The paper's email channel: seconds to hours, heavy-tailed.
    pub fn store_and_forward_email() -> Self {
        LatencyModel::ParetoTail {
            min_secs: 8.0,
            alpha: 1.1,
            cap_secs: 2.0 * 86_400.0, // give up after two days
        }
    }

    /// The paper's cell SMS channel: "a similar range of unpredictability"
    /// to email (§3.1), slightly faster body.
    pub fn carrier_sms() -> Self {
        LatencyModel::ParetoTail {
            min_secs: 5.0,
            alpha: 1.3,
            cap_secs: 86_400.0,
        }
    }

    /// Draws one transit delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    SimDuration::from_millis(rng.range(lo.as_millis(), hi.as_millis()))
                }
            }
            LatencyModel::LogNormal { median_secs, sigma } => {
                SimDuration::from_secs_f64(rng.lognormal(median_secs, sigma))
            }
            LatencyModel::ParetoTail {
                min_secs,
                alpha,
                cap_secs,
            } => SimDuration::from_secs_f64(rng.pareto(min_secs, alpha).min(cap_secs)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xFEED)
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant(SimDuration::from_millis(250));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), SimDuration::from_millis(250));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform {
            lo: SimDuration::from_millis(100),
            hi: SimDuration::from_millis(200),
        };
        let mut r = rng();
        for _ in 0..1_000 {
            let d = m.sample(&mut r);
            assert!((100..=200).contains(&d.as_millis()));
        }
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let m = LatencyModel::Uniform {
            lo: SimDuration::from_secs(5),
            hi: SimDuration::from_secs(5),
        };
        assert_eq!(m.sample(&mut rng()), SimDuration::from_secs(5));
    }

    #[test]
    fn consumer_im_is_mostly_subsecond() {
        // Reproduces the calibration behind experiment E1: "one-way IM
        // delivery time ... is typically less than one second".
        let m = LatencyModel::consumer_im();
        let mut r = rng();
        let n = 10_000;
        let subsecond = (0..n)
            .filter(|_| m.sample(&mut r) < SimDuration::from_secs(1))
            .count();
        assert!(
            subsecond as f64 / n as f64 > 0.95,
            "only {subsecond}/{n} under 1 s"
        );
    }

    #[test]
    fn email_tail_reaches_minutes_but_respects_cap() {
        let m = LatencyModel::store_and_forward_email();
        let mut r = rng();
        let draws: Vec<SimDuration> = (0..20_000).map(|_| m.sample(&mut r)).collect();
        assert!(draws.iter().all(|d| d.as_secs() >= 8));
        assert!(draws.iter().all(|d| d.as_secs() <= 2 * 86_400));
        // Heavy tail: some deliveries take more than 10 minutes.
        assert!(draws.iter().any(|d| d.as_mins() > 10));
        // But the median stays in tens of seconds.
        let mut sorted = draws.clone();
        sorted.sort();
        assert!(sorted[draws.len() / 2].as_secs() < 60);
    }

    #[test]
    fn sms_slower_than_im_faster_body_than_email() {
        let mut r = rng();
        let sms = LatencyModel::carrier_sms();
        let mean_sms: f64 = (0..5_000).map(|_| sms.sample(&mut r).as_secs_f64()).sum::<f64>() / 5_000.0;
        let im = LatencyModel::consumer_im();
        let mean_im: f64 = (0..5_000).map(|_| im.sample(&mut r).as_secs_f64()).sum::<f64>() / 5_000.0;
        assert!(mean_sms > 5.0 * mean_im, "sms {mean_sms} vs im {mean_im}");
    }
}
