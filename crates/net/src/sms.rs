//! A simulated SMS gateway.
//!
//! Models the §3.3 failure scenarios that motivate address enable/disable
//! and delivery-mode fallback: "When the user's cell phone runs out of
//! battery power or when the carrier does not cover the area of the user's
//! location" — plus the §3.1 observation that SMS delivery time from a
//! large carrier shows the same seconds-to-days unpredictability as email.

use crate::latency::LatencyModel;
use crate::loss::LossModel;
use crate::observe::ChannelScope;
use simba_sim::{SimDuration, SimRng, SimTime};
use simba_telemetry::Telemetry;
use std::collections::BTreeMap;

/// A phone number addressable by SMS. The paper notes the SMS email address
/// "typically contains the corresponding cell phone number" — the privacy
/// leak MyAlertBuddy exists to prevent.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SmsNumber(pub String);

impl SmsNumber {
    /// Convenience constructor.
    pub fn new(s: impl Into<String>) -> Self {
        SmsNumber(s.into())
    }
}

impl std::fmt::Display for SmsNumber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Unique id of one SMS message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SmsId(pub u64);

/// A short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmsMessage {
    /// Unique message id.
    pub id: SmsId,
    /// Destination number.
    pub to: SmsNumber,
    /// Message text (truncated to 160 characters by the gateway).
    pub text: String,
    /// Submission time.
    pub sent_at: SimTime,
}

/// State of a phone as the gateway sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhoneState {
    /// Whether the phone is inside carrier coverage.
    pub in_coverage: bool,
    /// Whether the phone has battery.
    pub battery_ok: bool,
}

impl PhoneState {
    /// A reachable phone.
    pub fn reachable() -> Self {
        PhoneState { in_coverage: true, battery_ok: true }
    }

    /// Whether a message delivered now would reach the handset.
    pub fn can_receive(self) -> bool {
        self.in_coverage && self.battery_ok
    }
}

/// Result of an SMS submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmsTransit {
    /// The accepted message.
    pub message: SmsMessage,
    /// Carrier queueing + radio delay.
    pub delay: SimDuration,
    /// Whether the carrier silently dropped the message.
    pub lost: bool,
}

/// The simulated SMS gateway.
///
/// Note the asymmetry with IM: submission almost always succeeds (the
/// carrier happily queues messages for unreachable phones) and failures are
/// discovered only by the *absence* of a human response — which is why SMS
/// cannot serve as the synchronous, acknowledged channel (§3.1).
#[derive(Debug)]
pub struct SmsGateway {
    phones: BTreeMap<SmsNumber, PhoneState>,
    latency: LatencyModel,
    loss: LossModel,
    next_id: u64,
    rng: SimRng,
    scope: ChannelScope,
}

impl SmsGateway {
    /// Creates a gateway with carrier-calibrated latency and 1 % silent loss.
    pub fn new(rng: SimRng) -> Self {
        SmsGateway {
            phones: BTreeMap::new(),
            latency: LatencyModel::carrier_sms(),
            loss: LossModel::Bernoulli(0.01),
            next_id: 0,
            rng,
            scope: ChannelScope::disabled("sms"),
        }
    }

    /// Overrides the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Overrides the loss model.
    #[must_use]
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Records sends, losses, and carrier latency through `telemetry` under
    /// the `net.sms.*` namespace.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.scope = ChannelScope::new("sms", telemetry);
        self
    }

    /// Registers a phone in the given state.
    pub fn register(&mut self, number: SmsNumber, state: PhoneState) {
        self.phones.insert(number, state);
    }

    /// Updates a phone's reachability (mobility / battery events).
    pub fn set_state(&mut self, number: &SmsNumber, state: PhoneState) {
        self.phones.insert(number.clone(), state);
    }

    /// Current state of `number` (unregistered phones are unreachable).
    pub fn state(&self, number: &SmsNumber) -> PhoneState {
        self.phones.get(number).copied().unwrap_or_default()
    }

    /// Submits a message. The gateway truncates to 160 characters.
    pub fn send(&mut self, to: &SmsNumber, text: &str, now: SimTime) -> SmsTransit {
        let id = SmsId(self.next_id);
        self.next_id += 1;
        let text: String = text.chars().take(160).collect();
        let message = SmsMessage {
            id,
            to: to.clone(),
            text,
            sent_at: now,
        };
        let delay = self.latency.sample(&mut self.rng);
        let lost = self.loss.roll(&mut self.rng);
        self.scope.sent(now, delay, lost);
        SmsTransit { message, delay, lost }
    }

    /// Attempts final delivery to the handset. Returns `true` if the phone
    /// could receive at this moment.
    pub fn deliver(&mut self, message: &SmsMessage) -> bool {
        let ok = self.state(&message.to).can_receive();
        self.scope.delivered(ok);
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gw() -> SmsGateway {
        SmsGateway::new(SimRng::new(1))
            .with_latency(LatencyModel::Constant(SimDuration::from_secs(6)))
            .with_loss(LossModel::None)
    }

    #[test]
    fn submission_always_succeeds_even_for_unreachable_phone() {
        let mut g = gw();
        let n = SmsNumber::new("+1-555-0100");
        // Never registered — the carrier still queues it.
        let transit = g.send(&n, "basement water sensor ON", SimTime::ZERO);
        assert!(!transit.lost);
        // ...but final delivery fails.
        assert!(!g.deliver(&transit.message));
    }

    #[test]
    fn delivery_depends_on_coverage_and_battery() {
        let mut g = gw();
        let n = SmsNumber::new("+1-555-0100");
        g.register(n.clone(), PhoneState::reachable());
        let t = g.send(&n, "x", SimTime::ZERO);
        assert!(g.deliver(&t.message));

        g.set_state(&n, PhoneState { in_coverage: false, battery_ok: true });
        assert!(!g.deliver(&t.message));

        g.set_state(&n, PhoneState { in_coverage: true, battery_ok: false });
        assert!(!g.deliver(&t.message));

        g.set_state(&n, PhoneState::reachable());
        assert!(g.deliver(&t.message));
    }

    #[test]
    fn text_truncated_to_160_chars() {
        let mut g = gw();
        let long = "x".repeat(500);
        let t = g.send(&SmsNumber::new("+1"), &long, SimTime::ZERO);
        assert_eq!(t.message.text.chars().count(), 160);
    }

    #[test]
    fn loss_model_applies() {
        let mut g = gw().with_loss(LossModel::Bernoulli(1.0));
        let t = g.send(&SmsNumber::new("+1"), "x", SimTime::ZERO);
        assert!(t.lost);
    }

    #[test]
    fn ids_unique() {
        let mut g = gw();
        let n = SmsNumber::new("+1");
        let a = g.send(&n, "1", SimTime::ZERO);
        let b = g.send(&n, "2", SimTime::ZERO);
        assert_ne!(a.message.id, b.message.id);
    }
}
