//! Idempotent-send filtering for channel adapters.
//!
//! The delivery ledger (`simba-ledger`) is at-least-once internally: a
//! worker that dies between performing a send and recording it leaves a
//! lease that expires, and another worker re-sends. Every outbound send
//! carries the record's stable idempotency key (`user/delivery/channel`),
//! and the adapter in front of a channel service passes it through an
//! [`IdempotencyFilter`]: the first occurrence proceeds, every later one
//! is reported as a duplicate and suppressed — so the *visible* effect of
//! an alert on a channel is exactly-once.
//!
//! The filter's memory is bounded: keys are retired FIFO once `capacity`
//! is exceeded. Size it above the worst-case redelivery window (keys
//! stop arriving once the ledger marks the record sent), not above the
//! total send volume.

use std::collections::{HashSet, VecDeque};

/// Bounded first-seen filter over idempotency keys.
#[derive(Debug)]
pub struct IdempotencyFilter {
    capacity: usize,
    seen: HashSet<String>,
    order: VecDeque<String>,
    deduped: u64,
    evicted: u64,
}

impl IdempotencyFilter {
    /// A filter remembering at most `capacity` keys (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        IdempotencyFilter {
            capacity,
            seen: HashSet::new(),
            order: VecDeque::new(),
            deduped: 0,
            evicted: 0,
        }
    }

    /// Whether `key` is fresh. The first call for a key returns `true`
    /// (and remembers it); every later call returns `false` until the
    /// key ages out of the bounded window.
    pub fn first_seen(&mut self, key: &str) -> bool {
        if self.seen.contains(key) {
            self.deduped += 1;
            return false;
        }
        self.seen.insert(key.to_string());
        self.order.push_back(key.to_string());
        while self.order.len() > self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
                self.evicted += 1;
            }
        }
        true
    }

    /// Whether `key` has been seen, without recording anything.
    pub fn contains(&self, key: &str) -> bool {
        self.seen.contains(key)
    }

    /// Keys currently remembered.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no keys are remembered.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Duplicates suppressed so far.
    pub fn deduped(&self) -> u64 {
        self.deduped
    }

    /// Keys retired by the capacity bound so far.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_occurrence_passes_later_ones_dedupe() {
        let mut filter = IdempotencyFilter::new(16);
        assert!(filter.first_seen("alice/1/IM"));
        assert!(!filter.first_seen("alice/1/IM"));
        assert!(!filter.first_seen("alice/1/IM"));
        assert!(filter.first_seen("alice/1/SMS"), "another channel is another key");
        assert_eq!(filter.deduped(), 2);
    }

    #[test]
    fn capacity_bound_retires_oldest_keys() {
        let mut filter = IdempotencyFilter::new(2);
        assert!(filter.first_seen("a"));
        assert!(filter.first_seen("b"));
        assert!(filter.first_seen("c"), "capacity 2: inserting c retires a");
        assert_eq!(filter.len(), 2);
        assert_eq!(filter.evicted(), 1);
        assert!(!filter.contains("a"));
        assert!(filter.first_seen("a"), "a aged out, so it reads as fresh again");
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut filter = IdempotencyFilter::new(0);
        assert!(filter.first_seen("x"));
        assert!(!filter.first_seen("x"), "the most recent key is always remembered");
    }
}
