//! Structured events: the unit of record of the telemetry spine.
//!
//! An [`Event`] is a name, a virtual-time stamp in milliseconds, and an
//! ordered list of typed fields. Events are plain data — emitting one never
//! reads the wall clock, so the same seeded simulation always produces the
//! identical event stream (the determinism invariant in `DESIGN.md`).

use std::fmt;

/// A typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s:?}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// One structured telemetry event.
///
/// Build with [`Event::new`] and chain [`Event::with`]:
///
/// ```
/// use simba_telemetry::Event;
///
/// let ev = Event::new("wal.append", 1_500).with("wal_id", 7u64).with("source", "aladdin-gw");
/// assert_eq!(ev.name, "wal.append");
/// assert_eq!(ev.time_ms, 1_500);
/// assert_eq!(ev.fields.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name, dot-separated by subsystem (`wal.append`,
    /// `delivery.fallback`, `watchdog.probe`, ...).
    pub name: String,
    /// Timestamp in milliseconds. On simulation paths this is
    /// `SimTime::as_millis()` — never a wall-clock read; on live-runtime
    /// paths it is milliseconds since the runtime clock's epoch.
    pub time_ms: u64,
    /// Ordered `(key, value)` pairs.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Creates an event with no fields.
    pub fn new(name: impl Into<String>, time_ms: u64) -> Self {
        Event {
            name: name.into(),
            time_ms,
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Looks a field up by key (first match).
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Serializes the event as one line of JSON (no trailing newline):
    /// `{"t":1500,"name":"wal.append","fields":{"wal_id":7}}`.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"t\":");
        out.push_str(&self.time_ms.to_string());
        out.push_str(",\"name\":\"");
        escape_json_into(&self.name, &mut out);
        out.push_str("\",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json_into(k, &mut out);
            out.push_str("\":");
            match v {
                Value::Str(s) => {
                    out.push('"');
                    escape_json_into(s, &mut out);
                    out.push('"');
                }
                Value::U64(n) => out.push_str(&n.to_string()),
                Value::I64(n) => out.push_str(&n.to_string()),
                // `{:?}` is Rust's shortest round-trip float format.
                Value::F64(n) => out.push_str(&format!("{n:?}")),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push_str("}}");
        out
    }

    /// Parses one line produced by [`Event::to_json_line`].
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the line is not in the emitted grammar.
    pub fn from_json_line(line: &str) -> Result<Event, JsonError> {
        Parser::new(line).event()
    }
}

impl fmt::Display for Event {
    /// The human-readable one-line rendering used by `simba-cli telemetry`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10.3}s] {}",
            self.time_ms as f64 / 1000.0,
            self.name
        )?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// Escapes `s` per the JSON string rules (the same discipline as
/// `simba-xml`'s writer: every reserved character has exactly one escape,
/// so escape ∘ unescape is the identity — property-tested below).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_json_into(s, &mut out);
    out
}

fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// A parse failure from [`Event::from_json_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was expected or wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// A recursive-descent parser for the exact subset `to_json_line` emits
/// (an object with `t`, `name`, and a flat `fields` object). Hand-rolled
/// because the workspace builds offline with no serde.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, reason: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            at: self.pos,
            reason: reason.into(),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn event(&mut self) -> Result<Event, JsonError> {
        self.expect(b'{')?;
        let mut time_ms: Option<u64> = None;
        let mut name: Option<String> = None;
        let mut fields: Option<Vec<(String, Value)>> = None;
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "t" => match self.value()? {
                    Value::U64(n) => time_ms = Some(n),
                    _ => return self.err("\"t\" must be an unsigned integer"),
                },
                "name" => match self.value()? {
                    Value::Str(s) => name = Some(s),
                    _ => return self.err("\"name\" must be a string"),
                },
                "fields" => fields = Some(self.fields_object()?),
                other => return self.err(format!("unknown key {other:?}")),
            }
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return self.err("trailing content after event");
        }
        match (time_ms, name) {
            (Some(time_ms), Some(name)) => Ok(Event {
                name,
                time_ms,
                fields: fields.unwrap_or_default(),
            }),
            _ => self.err("missing \"t\" or \"name\""),
        }
    }

    fn fields_object(&mut self) -> Result<Vec<(String, Value)>, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(_) => self.number(),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected {lit}"))
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError {
                at: start,
                reason: "invalid utf-8 in number".into(),
            })?;
        if text.is_empty() {
            return self.err("expected a value");
        }
        let float_like = text.contains(['.', 'e', 'E']);
        if !float_like {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::F64(n)),
            Err(_) => Err(JsonError {
                at: start,
                reason: format!("bad number {text:?}"),
            }),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        // Work on chars from here: contents can be any unicode.
        let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
            at: self.pos,
            reason: "invalid utf-8".into(),
        })?;
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += i + 1;
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some((_, h)) = chars.next() else {
                                return self.err("truncated \\u escape");
                            };
                            let Some(d) = h.to_digit(16) else {
                                return self.err("bad hex digit in \\u escape");
                            };
                            code = code * 16 + d;
                        }
                        match char::from_u32(code) {
                            Some(c) => out.push(c),
                            None => return self.err("\\u escape is not a scalar value"),
                        }
                    }
                    _ => return self.err("bad escape"),
                },
                c => out.push(c),
            }
        }
        self.err("unterminated string")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let ev = Event::new("x", 5).with("a", 1u64).with("b", "two");
        assert_eq!(ev.field("a"), Some(&Value::U64(1)));
        assert_eq!(ev.field("b"), Some(&Value::Str("two".into())));
        assert_eq!(ev.field("c"), None);
    }

    #[test]
    fn json_round_trip_simple() {
        let ev = Event::new("wal.append", 1500)
            .with("wal_id", 7u64)
            .with("source", "aladdin-gw")
            .with("delta", -3i64)
            .with("rate", 0.25f64)
            .with("ok", true);
        let line = ev.to_json_line();
        assert_eq!(Event::from_json_line(&line).unwrap(), ev);
    }

    #[test]
    fn json_round_trip_awkward_strings() {
        // The same escaping discipline as the simba-xml writer: every
        // reserved character round-trips, including controls.
        for s in [
            "plain",
            "quote \" backslash \\",
            "tab\tnewline\ncarriage\r",
            "nul-adjacent \u{1} \u{1f} bell \u{7}",
            "unicode ünïcødé ✓",
            "",
        ] {
            let ev = Event::new(s, 0).with("k", s);
            let parsed = Event::from_json_line(&ev.to_json_line()).unwrap();
            assert_eq!(parsed, ev, "for {s:?}");
        }
    }

    #[test]
    fn json_round_trip_float_shapes() {
        for v in [0.0, 1.5, -2.25, 1e300, 4.9e-10, f64::MAX] {
            let ev = Event::new("f", 1).with("v", v);
            let parsed = Event::from_json_line(&ev.to_json_line()).unwrap();
            assert_eq!(parsed.field("v"), Some(&Value::F64(v)), "for {v}");
        }
    }

    #[test]
    fn escape_is_injective_on_reserved_chars() {
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("a\\b"), "a\\\\b");
        assert_eq!(escape_json("\n"), "\\n");
        assert_eq!(escape_json("\u{2}"), "\\u0002");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Event::from_json_line("").is_err());
        assert!(Event::from_json_line("{}").is_err());
        assert!(Event::from_json_line("{\"t\":1}").is_err());
        assert!(Event::from_json_line("{\"t\":\"x\",\"name\":\"y\",\"fields\":{}}").is_err());
        assert!(Event::from_json_line("{\"t\":1,\"name\":\"y\",\"fields\":{}}extra").is_err());
        assert!(Event::from_json_line("{\"t\":1,\"name\":\"y\",\"bogus\":{}}").is_err());
    }

    #[test]
    fn display_is_one_line() {
        let ev = Event::new("mab.routed", 2500).with("category", "Home.Security").with("subs", 2u64);
        let s = ev.to_string();
        assert!(s.contains("2.500s"), "{s}");
        assert!(s.contains("mab.routed"), "{s}");
        assert!(s.contains("category=\"Home.Security\""), "{s}");
        assert!(!s.contains('\n'));
    }
}
